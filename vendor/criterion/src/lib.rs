//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! No statistics engine: each benchmark is warmed up briefly, then timed
//! over an adaptive number of iterations and reported as mean
//! nanoseconds/iteration (plus throughput when configured). Good enough to
//! spot order-of-magnitude regressions offline; swap for the real crate by
//! editing `[workspace.dependencies]` once a registry is reachable.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped; only a hint in this stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates in the report.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, &mut f);
        self
    }

    /// Finishes the group (no-op in this stub).
    pub fn finish(self) {}
}

/// Passed to every benchmark closure; measures the routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, f: &mut F) {
    // Calibration pass: find an iteration count that runs ~50ms.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(50);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean_ns = bencher.elapsed.as_nanos() as f64 / iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(
            " ({:.1} MiB/s)",
            n as f64 / (1024.0 * 1024.0) / (mean_ns / 1e9)
        ),
        Throughput::Elements(n) => format!(" ({:.0} elem/s)", n as f64 / (mean_ns / 1e9)),
    });
    println!(
        "bench {id:<48} {mean_ns:>14.1} ns/iter over {iters} iters{}",
        rate.unwrap_or_default()
    );
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_run_batched_routines() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(4096));
        let mut total = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |v| total += v, BatchSize::SmallInput)
        });
        group.finish();
        assert!(total > 0);
    }
}
