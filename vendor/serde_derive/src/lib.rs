//! `#[derive(Serialize, Deserialize)]` for the offline serde stub.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly the shapes this
//! workspace derives:
//!
//! * structs with named fields (serialized as objects in declaration
//!   order),
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * unit structs (serialized as `null`),
//! * enums in serde's default externally-tagged representation
//!   (`"Variant"`, `{"Variant": value}`, `{"Variant": [..]}`,
//!   `{"Variant": {..}}`).
//!
//! Generics, `where` clauses and `#[serde(...)]` attributes are not
//! supported and fail the build with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------- parsing

fn is_punct(tok: &TokenTree, c: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tok: &TokenTree, name: &str) -> bool {
    matches!(tok, TokenTree::Ident(i) if i.to_string() == name)
}

/// Advances past leading `#[...]` attributes (including doc comments, which
/// arrive in attribute form) and visibility modifiers.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < toks.len() && is_punct(&toks[i], '#') {
            i += 1; // '#'
            assert!(
                matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket),
                "expected [...] after '#'"
            );
            i += 1;
            continue;
        }
        if i < toks.len() && is_ident(&toks[i], "pub") {
            i += 1;
            if i < toks.len() {
                if let TokenTree::Group(g) = &toks[i] {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            continue;
        }
        return i;
    }
}

/// Skips a type (or other) token run until a top-level `,`, tracking angle
/// brackets, which are ordinary puncts in `proc_macro`. Returns the index
/// *after* the comma (or the end).
fn skip_past_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < toks.len() {
        if is_punct(&toks[i], '<') {
            angle += 1;
        } else if is_punct(&toks[i], '>') {
            angle -= 1;
        } else if is_punct(&toks[i], ',') && angle == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("expected field name, found {:?}", toks[i]);
        };
        fields.push(name.to_string());
        i += 1;
        assert!(is_punct(&toks[i], ':'), "expected ':' after field name");
        i = skip_past_comma(&toks, i + 1);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        count += 1;
        i = skip_past_comma(&toks, i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("expected variant name, found {:?}", toks[i]);
        };
        let name = name.to_string();
        i += 1;
        let fields = if i < toks.len() {
            match &toks[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    i += 1;
                    Fields::Named(parse_named_fields(g.stream()))
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    i += 1;
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            }
        } else {
            Fields::Unit
        };
        if i < toks.len() {
            assert!(
                is_punct(&toks[i], ','),
                "explicit enum discriminants are not supported by the serde stub"
            );
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let is_enum = if is_ident(&toks[i], "struct") {
        false
    } else if is_ident(&toks[i], "enum") {
        true
    } else {
        panic!("serde stub derive supports only structs and enums");
    };
    i += 1;
    let TokenTree::Ident(name) = &toks[i] else {
        panic!("expected type name");
    };
    let name = name.to_string();
    i += 1;
    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("the serde stub derive does not support generic types ({name})");
    }
    if is_enum {
        let TokenTree::Group(g) = &toks[i] else {
            panic!("expected enum body");
        };
        Item::Enum {
            name,
            variants: parse_variants(g.stream()),
        }
    } else {
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(t) if is_punct(t, ';') => Fields::Unit,
            other => panic!("unexpected struct body: {other:?}"),
        };
        Item::Struct { name, fields }
    }
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => named_to_value(names, "self."),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),\n"
                        ));
                    }
                    Fields::Named(field_names) => {
                        let bindings = field_names.join(", ");
                        let inner = named_to_value(field_names, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {bindings} }} => ::serde::Value::Object(vec![(String::from(\"{vn}\"), {inner})]),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let bindings: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = bindings
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), {inner})]),\n",
                            bindings.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

/// `Value::Object` construction for a named-field set. `prefix` is `self.`
/// for structs and empty for destructured enum variants.
fn named_to_value(names: &[String], prefix: &str) -> String {
    let entries: Vec<String> = names
        .iter()
        .map(|f| format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&{prefix}{f}))"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
}

fn named_from_value(type_path: &str, names: &[String], obj_expr: &str) -> String {
    let fields: Vec<String> = names
        .iter()
        .map(|f| {
            format!("{f}: ::serde::Deserialize::from_value(::serde::obj_get({obj_expr}, \"{f}\"))?")
        })
        .collect();
    format!("{type_path} {{ {} }}", fields.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let construct = named_from_value(name, names, "__obj");
                    format!(
                        "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                         Ok({construct})"
                    )
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                        .collect();
                    format!(
                        "let __arr = __v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                         if __arr.len() != {n} {{ return Err(::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\n\
                         Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Unit => format!("Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    Fields::Named(field_names) => {
                        let construct =
                            named_from_value(&format!("{name}::{vn}"), field_names, "__obj");
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __obj = __inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for variant {vn}\"))?;\n\
                                 Ok({construct})\n\
                             }}\n"
                        ));
                    }
                    Fields::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __arr = __inner.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for variant {vn}\"))?;\n\
                                 if __arr.len() != {n} {{ return Err(::serde::Error::custom(\"wrong arity for variant {vn}\")); }}\n\
                                 Ok({name}::{vn}({}))\n\
                             }}\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => Err(::serde::Error::custom(format!(\"unknown variant '{{__other}}' of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     __other => Err(::serde::Error::custom(format!(\"unknown variant '{{__other}}' of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::Error::custom(\"expected string or single-key object for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
