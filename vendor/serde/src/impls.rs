//! [`Serialize`]/[`Deserialize`] implementations for std types.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

use crate::{parse_json, Deserialize, Error, Serialize, Value};

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::Str(s) => s,
        other => other.to_string(),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_owned())) {
        return Ok(k);
    }
    K::from_value(&parse_json(key)?)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort entries so serialization is deterministic even though the
        // map iteration order is not.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_none_is_null_and_back() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::U64(3));
    }

    #[test]
    fn fixed_arrays_enforce_length() {
        let arr = [1u8, 2, 3];
        let v = arr.to_value();
        assert_eq!(<[u8; 3]>::from_value(&v).unwrap(), arr);
        assert!(<[u8; 4]>::from_value(&v).is_err());
    }

    #[test]
    fn maps_with_numeric_keys_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert(5u32, "five".to_string());
        m.insert(7u32, "seven".to_string());
        let v = m.to_value();
        assert_eq!(BTreeMap::<u32, String>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn hashmap_serialization_is_deterministic() {
        let mut m = HashMap::new();
        for i in 0..20u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.to_value().to_string(), m.clone().to_value().to_string());
        assert_eq!(HashMap::<u32, u32>::from_value(&m.to_value()).unwrap(), m);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert_eq!(i8::from_value(&Value::I64(-5)).unwrap(), -5);
    }
}
