//! The JSON value model: construction, compact/pretty printing and parsing.

use std::fmt;

use crate::Error;

/// A JSON value.
///
/// Objects preserve insertion order (like real serde's streaming serializer
/// does for struct fields) rather than sorting keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered entry list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entry list, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric contents as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric contents as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(v) => u64::try_from(v).ok(),
            Value::U64(v) => Some(v),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric contents as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => {
                use fmt::Write as _;
                let _ = write!(out, "{other}");
            }
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest representation that parses
                    // back exactly; add ".0" so integral floats stay floats,
                    // mirroring serde_json.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no NaN/Infinity; serde_json errors here, we
                    // degrade to null.
                    f.write_str("null")
                }
            }
            Value::Str(s) => {
                let mut buf = String::new();
                write_json_string(&mut buf, s);
                f.write_str(&buf)
            }
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::new();
                    write_json_string(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
/// Returns an [`Error`] describing the first syntax problem.
pub fn parse_json(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our own
                            // writer; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number '{text}'")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' at {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip_through_text() {
        for (text, value) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("-42", Value::I64(-42)),
            ("3.5", Value::F64(3.5)),
            ("\"hi\"", Value::Str("hi".into())),
        ] {
            assert_eq!(parse_json(text).unwrap(), value);
            assert_eq!(value.to_string(), text);
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::I64(1), Value::Null])),
            ("b".into(), Value::Str("x\"y\n".into())),
        ]);
        let text = v.to_string();
        assert_eq!(parse_json(&text).unwrap(), v);
        let pretty = v.to_string_pretty();
        assert_eq!(parse_json(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn float_formatting_keeps_floats_floats() {
        assert_eq!(Value::F64(1.0).to_string(), "1.0");
        assert_eq!(Value::F64(0.25).to_string(), "0.25");
        assert_eq!(parse_json("1.0").unwrap(), Value::F64(1.0));
    }

    #[test]
    fn large_u64_survives() {
        let v = Value::U64(u64::MAX);
        assert_eq!(parse_json(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("tru").is_err());
        assert!(parse_json("1 2").is_err());
    }
}
