//! Offline stand-in for the subset of `serde` (+`serde_derive`) this
//! workspace uses.
//!
//! The build environment has no registry access, so instead of the real
//! serde data model the workspace ships a small value-based one:
//!
//! * [`Serialize`] converts a value into a JSON [`Value`];
//! * [`Deserialize`] reconstructs a value from a [`Value`];
//! * `#[derive(Serialize, Deserialize)]` (from the sibling `serde_derive`
//!   stub) generates both impls for plain structs, tuple structs and
//!   externally-tagged enums — the only shapes this workspace derives.
//!
//! Struct fields serialize in declaration order (matching real
//! `serde_json`'s streaming serializer) and enums use the externally-tagged
//! representation, so the JSON this produces is shape-compatible with real
//! serde for every type in the tree. Swap for the real crates by editing
//! `[workspace.dependencies]` once a registry is reachable.

#![forbid(unsafe_code)]
// This vendored stub must mirror real serde's API surface, which
// includes impls for the hash containers the workspace's determinism
// policy (clippy.toml `disallowed-types`, detlint D001) bans from its
// own crates. The impls serialize through an Ord-sorted detour, so they
// are order-stable; allow them here rather than shrink the API.
#![allow(clippy::disallowed_types)]

mod impls;
mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{parse_json, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted to a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`].
    ///
    /// # Errors
    /// Returns an [`Error`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

static NULL_VALUE: Value = Value::Null;

/// Looks up `key` in an object's entry list, yielding `Null` for missing
/// keys (so `Option` fields deserialize to `None`). Used by derived code.
pub fn obj_get<'a>(entries: &'a [(String, Value)], key: &str) -> &'a Value {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map_or(&NULL_VALUE, |(_, v)| v)
}
