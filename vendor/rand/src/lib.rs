//! Offline stand-in for the subset of the `rand 0.8` API this workspace
//! uses.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors a minimal, deterministic implementation of the traits
//! and types it needs: [`RngCore`], [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the [`Standard`]
//! distribution behind [`Rng::gen`], uniform range sampling behind
//! [`Rng::gen_range`], and [`seq::SliceRandom`].
//!
//! The generator is *not* bit-compatible with the real `StdRng` (which is
//! ChaCha12); all in-tree tests assert statistical or structural properties
//! rather than exact streams, so any good 64-bit generator works. Swap this
//! crate for the real `rand` by editing `[workspace.dependencies]` once a
//! registry is reachable.
//!
//! [`Standard`]: distributions::Standard

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, SampleRange, SampleUniform, Standard};

/// The core of a random number generator: raw integer and byte output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (including `&mut R`, which is what makes `rng.gen()` work on
/// `R: Rng + ?Sized` receivers).
pub trait Rng: RngCore {
    /// Returns a value sampled from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Returns a value uniformly distributed over `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be filled with random data via [`Rng::fill`].
pub trait Fill {
    /// Fills `self` from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 so
    /// that nearby seeds yield unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u8..=255);
            assert!(w >= 1);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits} hits");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
    }

    #[test]
    fn fill_populates_every_byte_eventually() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 64];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_works_through_unsized_receivers() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let a = sample(&mut rng);
        let b = sample(&mut rng);
        assert_ne!(a, b);
    }
}
