//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++.
///
/// Not stream-compatible with the real `rand::rngs::StdRng` (ChaCha12), but
/// deterministic, fast and statistically strong, which is all the
/// simulation needs.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // xoshiro must not start from the all-zero state; expand a
            // fixed constant instead so every state word is mixed.
            let mut sm = crate::SplitMix64 {
                state: 0x9E37_79B9_7F4A_7C15,
            };
            for word in &mut s {
                *word = sm.next();
            }
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_escaped() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
