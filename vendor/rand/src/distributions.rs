//! The [`Standard`] distribution behind [`Rng::gen`](crate::Rng::gen) and
//! uniform range sampling behind [`Rng::gen_range`](crate::Rng::gen_range).

use std::ops::{Range, RangeInclusive};

use crate::{unit_f64, RngCore};

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution: uniform over all values of the type (and
/// `[0, 1)` for floats).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        let v: u128 = Standard.sample(rng);
        v as i128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T, const N: usize> Distribution<[T; N]> for Standard
where
    Standard: Distribution<T>,
{
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [T; N] {
        std::array::from_fn(|_| Standard.sample(rng))
    }
}

/// Types that support uniform sampling over a sub-range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)` (`high` inclusive when
    /// `inclusive` is set).
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`](crate::Rng::gen_range).
pub trait SampleRange<T> {
    /// Samples one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample from an empty range");
        T::sample_uniform(start, end, true, rng)
    }
}

/// Draws a `u64` below `span` (`span == 0` means the full 64-bit range)
/// using the multiply-shift reduction.
fn u64_below<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                // Work in u64 offset space; spans here always fit in u64
                // (the workspace never samples 128-bit ranges).
                let span = (high as i128 - low as i128) as u64;
                let span = if inclusive { span.wrapping_add(1) } else { span };
                let offset = u64_below(span, rng);
                ((low as i128) + offset as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self {
        let span = high - low + u128::from(inclusive);
        let raw: u128 = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        if span == 0 {
            raw
        } else {
            low + raw % span
        }
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        low + unit_f64(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        low + (unit_f64(rng) as f32) * (high - low)
    }
}

#[cfg(test)]
mod tests {

    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn integer_ranges_cover_their_support() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 appear");
    }

    #[test]
    fn inclusive_range_reaches_upper_bound() {
        let mut rng = StdRng::seed_from_u64(12);
        let got_max = (0..2000).any(|_| rng.gen_range(0u8..=3) == 3);
        assert!(got_max);
    }

    #[test]
    fn signed_ranges_handle_negative_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..200 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(14);
        let _: u32 = rng.gen_range(5..5);
    }
}
