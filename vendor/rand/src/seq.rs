//! Sequence-related helpers: [`SliceRandom`].

use crate::distributions::SampleUniform;
use crate::RngCore;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Returns a uniformly chosen reference, or `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Returns `amount` distinct elements (fewer if the slice is shorter),
    /// in random order.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = usize::sample_uniform(0, self.len(), false, rng);
            Some(&self[i])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        let mut indices: Vec<usize> = (0..self.len()).collect();
        // Partial Fisher–Yates: only the first `amount` positions matter.
        for i in 0..amount {
            let j = usize::sample_uniform(i, indices.len(), false, rng);
            indices.swap(i, j);
        }
        indices
            .into_iter()
            .take(amount)
            .map(|i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_uniform(0, i + 1, false, rng);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_is_none_on_empty_and_in_bounds_otherwise() {
        let mut rng = StdRng::seed_from_u64(21);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle permuted");
    }

    #[test]
    fn choose_multiple_yields_distinct_elements() {
        let mut rng = StdRng::seed_from_u64(23);
        let v: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        // Oversized requests are capped at the slice length.
        assert_eq!(v.choose_multiple(&mut rng, 500).count(), 50);
    }
}
