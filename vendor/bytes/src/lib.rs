//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses: an immutable, cheaply clonable byte container.
//!
//! Backed by `Arc<[u8]>` so clones are O(1), like the real `Bytes`.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn conversions() {
        assert_eq!(&Bytes::from(vec![1u8, 2])[..], &[1, 2]);
        assert_eq!(&Bytes::from("ab")[..], b"ab");
        let arr: &[u8; 3] = b"xyz";
        assert_eq!(&Bytes::from(arr)[..], b"xyz");
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::copy_from_slice(&[9u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref(), b.as_ref()));
    }
}
