//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Vec`s with lengths drawn from `size` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates `BTreeSet`s with target sizes drawn from `size` and elements
/// from `element`. May yield fewer elements when the element space is too
/// small to reach the target.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target.saturating_mul(20) + 20 {
            out.insert(self.element.sample(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn vec_lengths_follow_the_size_range() {
        let mut rng = TestRng::for_case("vec", 0);
        let strat = vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_elements_are_distinct() {
        let mut rng = TestRng::for_case("set", 0);
        let strat = btree_set(any::<u8>(), 1..40);
        for _ in 0..100 {
            let s = strat.sample(&mut rng);
            assert!(!s.is_empty() && s.len() < 40);
        }
    }
}
