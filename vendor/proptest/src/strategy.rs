//! The [`Strategy`] trait, primitive strategies and combinators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generates any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                ((self.start as i128) + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                let off = if span == 0 { rng.next_u64() } else { rng.below(span) };
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u8..=255).sample(&mut rng);
            assert!(w >= 1);
            let f = (0.25f64..0.5).sample(&mut rng);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn prop_map_transforms_samples() {
        let mut rng = TestRng::for_case("map", 0);
        let doubled = (1u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = doubled.sample(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut rng = TestRng::for_case("tuple", 0);
        let (a, b, c) = (0usize..5, 10usize..15, any::<bool>()).sample(&mut rng);
        assert!(a < 5 && (10..15).contains(&b));
        let _ = c;
    }
}
