//! Boolean strategies (`prop::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for unbiased booleans.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

/// Generates `true` or `false` with equal probability.
pub const ANY: AnyBool = AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_values_appear() {
        let mut rng = TestRng::for_case("bool", 0);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[usize::from(ANY.sample(&mut rng))] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
