//! The deterministic RNG behind strategy sampling.

/// SplitMix64-based sampling RNG: every `(test name, case index)` pair
/// yields the same stream on every run, so failures are reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for one case of a named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("mod::test", 3);
        let mut b = TestRng::for_case("mod::test", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("mod::test", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_case("below", 0);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }
}
