//! Fixed-size array strategies (`uniform10`, `uniform12`, ...).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `[S::Value; N]` from `N` independent samples.
#[derive(Debug, Clone)]
pub struct UniformArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
    type Value = [S::Value; N];

    fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.sample(rng))
    }
}

macro_rules! uniform_fn {
    ($($name:ident => $n:literal),*) => {$(
        /// Generates arrays of the size in the function name.
        pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
            UniformArrayStrategy { element }
        }
    )*};
}

uniform_fn!(
    uniform4 => 4,
    uniform8 => 8,
    uniform10 => 10,
    uniform12 => 12,
    uniform16 => 16,
    uniform20 => 20,
    uniform32 => 32
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn arrays_have_the_right_size_and_vary() {
        let mut rng = TestRng::for_case("array", 0);
        let strat = uniform32(any::<u8>());
        let a = strat.sample(&mut rng);
        let b = strat.sample(&mut rng);
        assert_eq!(a.len(), 32);
        assert_ne!(a, b, "two samples differ");
    }
}
