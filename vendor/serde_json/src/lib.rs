//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_vec`], [`from_str`],
//! [`from_slice`] and the [`json!`] macro.
//!
//! Built on the value model of the sibling `serde` stub. Struct fields
//! keep declaration order and enums use the externally-tagged form, so the
//! emitted JSON is shape-compatible with the real crate for every type in
//! this tree.

#![forbid(unsafe_code)]

pub use serde::{parse_json, Error, Value};

use serde::{Deserialize, Serialize};

/// Serializes a value to compact JSON.
///
/// # Errors
/// Infallible in this stub; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
/// Infallible in this stub; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string_pretty())
}

/// Serializes a value to compact JSON bytes.
///
/// # Errors
/// Infallible in this stub; the `Result` mirrors the real API.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
/// Returns an [`Error`] on syntax errors or shape mismatches.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse_json(s)?)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
/// Returns an [`Error`] on invalid UTF-8, syntax errors or shape
/// mismatches.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::custom("invalid UTF-8"))?;
    from_str(s)
}

/// Converts any serializable value into a [`Value`] (used by [`json!`]).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from a JSON-like literal. Supports objects with
/// string-literal keys and expression values, arrays, `null`, and plain
/// expressions of serializable types — the shapes this workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: f64,
        label: String,
        tags: Vec<u32>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Empty,
        Dot { at: Point },
        Pair(u32, u32),
        Wrapped(String),
    }

    fn point() -> Point {
        Point {
            x: 1.5,
            label: "origin \"quoted\"".to_string(),
            tags: vec![1, 2, 3],
        }
    }

    #[test]
    fn derived_struct_roundtrips_and_keeps_field_order() {
        let p = point();
        let json = to_string(&p).unwrap();
        assert!(
            json.starts_with("{\"x\":1.5,\"label\""),
            "order kept: {json}"
        );
        assert_eq!(from_str::<Point>(&json).unwrap(), p);
        let pretty = to_string_pretty(&p).unwrap();
        assert_eq!(from_str::<Point>(&pretty).unwrap(), p);
    }

    #[test]
    fn derived_enum_uses_external_tagging() {
        assert_eq!(to_string(&Shape::Empty).unwrap(), "\"Empty\"");
        let dot = Shape::Dot { at: point() };
        let json = to_string(&dot).unwrap();
        assert!(json.starts_with("{\"Dot\":{\"at\""), "got {json}");
        assert_eq!(from_str::<Shape>(&json).unwrap(), dot);
        let pair = Shape::Pair(3, 4);
        assert_eq!(to_string(&pair).unwrap(), "{\"Pair\":[3,4]}");
        assert_eq!(from_str::<Shape>("{\"Pair\":[3,4]}").unwrap(), pair);
        let wrapped = Shape::Wrapped("w".into());
        assert_eq!(to_string(&wrapped).unwrap(), "{\"Wrapped\":\"w\"}");
        assert_eq!(from_str::<Shape>("{\"Wrapped\":\"w\"}").unwrap(), wrapped);
    }

    #[test]
    fn unknown_variant_is_an_error() {
        assert!(from_str::<Shape>("\"Nope\"").is_err());
        assert!(from_str::<Shape>("{\"Nope\":3}").is_err());
    }

    #[test]
    fn json_macro_builds_objects_in_order() {
        let token: Option<u32> = None;
        let v = json!({
            "command": "ping",
            "sequence": 7u64,
            "token": token,
        });
        assert_eq!(
            v.to_string(),
            "{\"command\":\"ping\",\"sequence\":7,\"token\":null}"
        );
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1u8, 2u8]).to_string(), "[1,2]");
    }

    #[test]
    fn from_slice_matches_from_str() {
        let p = point();
        let bytes = to_vec(&p).unwrap();
        assert_eq!(from_slice::<Point>(&bytes).unwrap(), p);
    }
}
