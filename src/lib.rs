//! # onionbots
//!
//! Umbrella crate for the **OnionBots (DSN 2015)** defensive research
//! simulator — a from-scratch Rust reproduction of *OnionBots: Subverting
//! Privacy Infrastructure for Cyber Attacks* (Sanatinia & Noubir).
//!
//! The workspace is split into focused crates, all re-exported here:
//!
//! * [`crypto`] (`onion-crypto`) — bignum, RSA, SHA-1/256, HMAC, ChaCha20,
//!   base32, the `generateKey(PK_CC, H(K_B, i_p))` KDF and uniform message
//!   encoding.
//! * [`graph`] (`onion-graph`) — graphs, k-regular generators, centrality
//!   and component metrics.
//! * [`tor`] (`tor-sim`) — the simulated Tor substrate: relays, consensus,
//!   HSDir ring, descriptors, circuits, cells and the [`tor::TorNetwork`].
//! * [`core`] (`onionbots-core`) — the DDSR self-healing overlay (the
//!   paper's contribution), maintenance protocol, address rotation and
//!   routing.
//! * [`botnet`] — bot life cycle, botmaster, signed commands, bootstrap
//!   strategies, rental tokens and the end-to-end
//!   [`botnet::BotnetSimulation`].
//! * [`mitigation`] — SOAP, HSDir positioning, proof-of-work / rate-limit
//!   defenses and the SuperOnion extension.
//! * [`sim`] — the experiment layer: takedown primitives, the
//!   [`sim::scenario_api::Scenario`] trait + registry, the parallel
//!   [`sim::Runner`], and report rendering/sinks.
//!
//! ## Reproducing the evaluation
//!
//! Every paper figure/table/ablation is a registered scenario in
//! `onionbots-bench`; the `run_experiments` binary lists and executes
//! them:
//!
//! ```text
//! run_experiments --list
//! run_experiments --only fig4,fig7 --scale full --jobs 8 --out results/
//! ```
//!
//! Scenarios split into independent parts that fan out across worker
//! threads with per-part deterministic seeds, so reports (and their JSON)
//! are byte-identical for any `--jobs` value. The per-figure binaries
//! (`fig4`, `fig7_soap`, ...) remain as thin wrappers over the same
//! registry. See `examples/custom_scenario.rs` for registering your own
//! workload.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.
//!
//! ```
//! use onionbots::core::{DdsrConfig, DdsrOverlay};
//! use onionbots::graph::components::is_connected;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2015);
//! let (mut overlay, ids) = DdsrOverlay::new_regular(100, 10, DdsrConfig::for_degree(10), &mut rng);
//! for id in ids.iter().take(60) {
//!     overlay.remove_node_with_repair(*id, &mut rng);
//! }
//! assert!(is_connected(overlay.graph()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Re-export of the `botnet` crate (bot life cycle and C&C layer).
pub use botnet;
/// Re-export of the `mitigation` crate (SOAP, defenses, SuperOnion).
pub use mitigation;
/// Re-export of the `sim` crate (scenarios and experiment reports).
pub use sim;

/// Re-export of the `onion-crypto` crate.
pub use onion_crypto as crypto;
/// Re-export of the `onion-graph` crate.
pub use onion_graph as graph;
/// Re-export of the `onionbots-core` crate (the DDSR overlay).
pub use onionbots_core as core;
/// Re-export of the `tor-sim` crate (simulated Tor).
pub use tor_sim as tor;
