//! # onionbots
//!
//! Umbrella crate for the **OnionBots (DSN 2015)** defensive research
//! simulator — a from-scratch Rust reproduction of *OnionBots: Subverting
//! Privacy Infrastructure for Cyber Attacks* (Sanatinia & Noubir).
//!
//! The workspace is split into focused crates, all re-exported here:
//!
//! * [`crypto`] (`onion-crypto`) — bignum, RSA, SHA-1/256, HMAC, ChaCha20,
//!   base32, the `generateKey(PK_CC, H(K_B, i_p))` KDF and uniform message
//!   encoding.
//! * [`graph`] (`onion-graph`) — graphs, k-regular generators, centrality
//!   and component metrics.
//! * [`tor`] (`tor-sim`) — the simulated Tor substrate: relays, consensus,
//!   HSDir ring, descriptors, circuits, cells and the [`tor::TorNetwork`].
//! * [`core`] (`onionbots-core`) — the DDSR self-healing overlay (the
//!   paper's contribution), maintenance protocol, address rotation and
//!   routing.
//! * [`botnet`] — bot life cycle, botmaster, signed commands, bootstrap
//!   strategies, rental tokens and the end-to-end
//!   [`botnet::BotnetSimulation`].
//! * [`mitigation`] — SOAP, HSDir positioning, proof-of-work / rate-limit
//!   defenses and the SuperOnion extension.
//! * [`sim`] — takedown scenarios, experiment series and reporting.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.
//!
//! ```
//! use onionbots::core::{DdsrConfig, DdsrOverlay};
//! use onionbots::graph::components::is_connected;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2015);
//! let (mut overlay, ids) = DdsrOverlay::new_regular(100, 10, DdsrConfig::for_degree(10), &mut rng);
//! for id in ids.iter().take(60) {
//!     overlay.remove_node_with_repair(*id, &mut rng);
//! }
//! assert!(is_connected(overlay.graph()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Re-export of the `botnet` crate (bot life cycle and C&C layer).
pub use botnet;
/// Re-export of the `mitigation` crate (SOAP, defenses, SuperOnion).
pub use mitigation;
/// Re-export of the `sim` crate (scenarios and experiment reports).
pub use sim;

/// Re-export of the `onion-crypto` crate.
pub use onion_crypto as crypto;
/// Re-export of the `onion-graph` crate.
pub use onion_graph as graph;
/// Re-export of the `onionbots-core` crate (the DDSR overlay).
pub use onionbots_core as core;
/// Re-export of the `tor-sim` crate (simulated Tor).
pub use tor_sim as tor;
