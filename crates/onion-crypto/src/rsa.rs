//! Textbook RSA key generation, signatures and encryption.
//!
//! The paper relies on RSA in three places:
//!
//! * Tor hidden services derive their `.onion` identifier from the SHA-1
//!   fingerprint of an RSA public key (§III).
//! * Every bot is hard-coded with the botmaster's public key `PK_CC` and
//!   reports its symmetric key as `{K_B}_{PK_CC}` (§IV-D).
//! * Botnet-for-rent tokens are certificates: the botmaster signs the
//!   renter's public key, an expiration time and a command whitelist (§IV-E).
//!
//! This is a *simulation-grade* RSA: deterministic-free textbook padding with
//! a random prefix, SHA-256 message hashing for signatures, and small keys by
//! default so tests stay fast. It must not be used outside the simulator.
//!
//! ```
//! use onion_crypto::rsa::RsaKeyPair;
//! use rand::SeedableRng;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let keypair = RsaKeyPair::generate(512, &mut rng);
//! let signature = keypair.sign(b"DDoS example.com at noon");
//! assert!(keypair.public().verify(b"DDoS example.com at noon", &signature));
//! assert!(!keypair.public().verify(b"different message", &signature));
//! ```

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bignum::BigUint;
use crate::digest::Digest;
use crate::error::CryptoError;
use crate::prime::gen_prime;
use crate::sha1::Sha1;
use crate::sha256::Sha256;

/// The public half of an RSA key pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

/// A full RSA key pair (public modulus/exponent plus the private exponent).
#[derive(Debug, Clone)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: BigUint,
}

/// Serializable form of a public key (hex-encoded), used in descriptors and
/// experiment reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedPublicKey {
    /// Hex encoding of the modulus `n`.
    pub n_hex: String,
    /// Hex encoding of the public exponent `e`.
    pub e_hex: String,
}

impl RsaPublicKey {
    /// Constructs a public key from raw modulus and exponent.
    pub fn from_parts(n: BigUint, e: BigUint) -> Self {
        RsaPublicKey { n, e }
    }

    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent `e`.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// The modulus size in whole bytes.
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Canonical byte encoding of the key: `len(n) || n || len(e) || e`
    /// (big-endian, 4-byte length prefixes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n_bytes = self.n.to_bytes_be();
        let e_bytes = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(8 + n_bytes.len() + e_bytes.len());
        out.extend_from_slice(&(n_bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(&n_bytes);
        out.extend_from_slice(&(e_bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(&e_bytes);
        out
    }

    /// Parses the canonical byte encoding produced by [`Self::to_bytes`].
    ///
    /// # Errors
    /// Returns [`CryptoError::InvalidEncoding`] on truncated input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        fn read_chunk(bytes: &[u8]) -> Result<(BigUint, &[u8]), CryptoError> {
            if bytes.len() < 4 {
                return Err(CryptoError::InvalidEncoding(
                    "truncated rsa key encoding".to_string(),
                ));
            }
            let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
            if bytes.len() < 4 + len {
                return Err(CryptoError::InvalidEncoding(
                    "truncated rsa key body".to_string(),
                ));
            }
            Ok((
                BigUint::from_bytes_be(&bytes[4..4 + len]),
                &bytes[4 + len..],
            ))
        }
        let (n, rest) = read_chunk(bytes)?;
        let (e, _) = read_chunk(rest)?;
        Ok(RsaPublicKey { n, e })
    }

    /// Tor-style fingerprint: the full SHA-1 digest of the key encoding.
    pub fn fingerprint(&self) -> [u8; 20] {
        let digest = Sha1::digest(&self.to_bytes());
        let mut out = [0u8; 20];
        out.copy_from_slice(&digest);
        out
    }

    /// The 80-bit (10-byte) hidden-service identifier: the truncated SHA-1
    /// digest of the public key, exactly as Tor v2 onion services compute it.
    pub fn identifier(&self) -> [u8; 10] {
        let fp = self.fingerprint();
        let mut out = [0u8; 10];
        out.copy_from_slice(&fp[..10]);
        out
    }

    /// Verifies a signature produced by [`RsaKeyPair::sign`].
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> bool {
        let sig = BigUint::from_bytes_be(signature);
        if sig >= self.n {
            return false;
        }
        let recovered = sig.mod_exp(&self.e, &self.n);
        let expected = BigUint::from_bytes_be(&Sha256::digest(message)).rem_ref(&self.n);
        recovered == expected
    }

    /// Encrypts a short message to this public key.
    ///
    /// Padding layout (simulation-grade PKCS#1-v1.5 analogue):
    /// `0x00 0x02 <random non-zero bytes> 0x00 <message>`.
    ///
    /// # Errors
    /// Returns [`CryptoError::MessageTooLarge`] when the message does not fit
    /// under the modulus with at least 8 bytes of random padding.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        message: &[u8],
        rng: &mut R,
    ) -> Result<Vec<u8>, CryptoError> {
        let k = self.modulus_len();
        if message.len() + 11 > k {
            return Err(CryptoError::MessageTooLarge);
        }
        let pad_len = k - message.len() - 3;
        let mut block = Vec::with_capacity(k);
        block.push(0x00);
        block.push(0x02);
        for _ in 0..pad_len {
            block.push(rng.gen_range(1..=255u8));
        }
        block.push(0x00);
        block.extend_from_slice(message);
        let m = BigUint::from_bytes_be(&block);
        let c = m.mod_exp(&self.e, &self.n);
        Ok(c.to_bytes_be_padded(k))
    }

    /// Serializable hex representation.
    pub fn encode(&self) -> EncodedPublicKey {
        EncodedPublicKey {
            n_hex: self.n.to_hex(),
            e_hex: self.e.to_hex(),
        }
    }

    /// Reconstructs a key from its hex representation.
    ///
    /// # Errors
    /// Returns [`CryptoError::InvalidEncoding`] when the hex fields are
    /// malformed.
    pub fn decode(encoded: &EncodedPublicKey) -> Result<Self, CryptoError> {
        let n = BigUint::from_hex(&encoded.n_hex)
            .ok_or_else(|| CryptoError::InvalidEncoding("bad modulus hex".to_string()))?;
        let e = BigUint::from_hex(&encoded.e_hex)
            .ok_or_else(|| CryptoError::InvalidEncoding("bad exponent hex".to_string()))?;
        Ok(RsaPublicKey { n, e })
    }
}

impl RsaKeyPair {
    /// Generates a fresh key pair with a modulus of roughly `modulus_bits`
    /// bits.
    ///
    /// # Panics
    /// Panics if `modulus_bits < 64`.
    pub fn generate<R: Rng + ?Sized>(modulus_bits: usize, rng: &mut R) -> Self {
        assert!(modulus_bits >= 64, "modulus too small to be meaningful");
        let e = BigUint::from_u64(65_537);
        loop {
            let p = gen_prime(modulus_bits / 2, rng);
            let q = gen_prime(modulus_bits - modulus_bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul_ref(&q);
            let one = BigUint::one();
            let phi = p.sub_ref(&one).mul_ref(&q.sub_ref(&one));
            if !e.gcd(&phi).is_one() {
                continue;
            }
            let d = match e.mod_inverse(&phi) {
                Some(d) => d,
                None => continue,
            };
            return RsaKeyPair {
                public: RsaPublicKey { n, e },
                d,
            };
        }
    }

    /// The public half of the key pair.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Signs a message: `SHA-256(message)^d mod n`.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let h = BigUint::from_bytes_be(&Sha256::digest(message)).rem_ref(&self.public.n);
        let s = h.mod_exp(&self.d, &self.public.n);
        s.to_bytes_be_padded(self.public.modulus_len())
    }

    /// Decrypts a ciphertext produced by [`RsaPublicKey::encrypt`].
    ///
    /// # Errors
    /// Returns [`CryptoError::InvalidPadding`] when the padding structure is
    /// not recovered (wrong key or corrupted ciphertext).
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let c = BigUint::from_bytes_be(ciphertext);
        if c >= self.public.n {
            return Err(CryptoError::InvalidPadding);
        }
        let m = c.mod_exp(&self.d, &self.public.n);
        let k = self.public.modulus_len();
        let block = m.to_bytes_be_padded(k);
        if block.len() < 11 || block[0] != 0x00 || block[1] != 0x02 {
            return Err(CryptoError::InvalidPadding);
        }
        let separator = block[2..]
            .iter()
            .position(|&b| b == 0x00)
            .ok_or(CryptoError::InvalidPadding)?;
        Ok(block[2 + separator + 1..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_keypair(seed: u64) -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        RsaKeyPair::generate(512, &mut rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = test_keypair(1);
        let msg = b"maintenance: replace peer 4 with peer 9";
        let sig = kp.sign(msg);
        assert!(kp.public().verify(msg, &sig));
        assert!(!kp.public().verify(b"tampered", &sig));
        let mut bad_sig = sig.clone();
        bad_sig[0] ^= 0xff;
        assert!(!kp.public().verify(msg, &bad_sig));
    }

    #[test]
    fn signatures_do_not_verify_under_other_keys() {
        let kp1 = test_keypair(2);
        let kp2 = test_keypair(3);
        let sig = kp1.sign(b"command");
        assert!(!kp2.public().verify(b"command", &sig));
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let msg = b"K_B = 0123456789abcdef0123456789abcdef";
        let ct = kp.public().encrypt(msg, &mut rng).unwrap();
        assert_eq!(kp.decrypt(&ct).unwrap(), msg.to_vec());
    }

    #[test]
    fn encryption_is_randomized() {
        let mut rng = StdRng::seed_from_u64(5);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let c1 = kp.public().encrypt(b"same message", &mut rng).unwrap();
        let c2 = kp.public().encrypt(b"same message", &mut rng).unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn oversized_message_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let too_big = vec![0xaa; kp.public().modulus_len()];
        assert_eq!(
            kp.public().encrypt(&too_big, &mut rng),
            Err(CryptoError::MessageTooLarge)
        );
    }

    #[test]
    fn decrypt_with_wrong_key_fails() {
        let mut rng = StdRng::seed_from_u64(7);
        let kp1 = RsaKeyPair::generate(512, &mut rng);
        let kp2 = RsaKeyPair::generate(512, &mut rng);
        let ct = kp1.public().encrypt(b"secret", &mut rng).unwrap();
        assert!(kp2.decrypt(&ct).is_err());
    }

    #[test]
    fn key_encoding_roundtrip() {
        let kp = test_keypair(8);
        let bytes = kp.public().to_bytes();
        let restored = RsaPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(&restored, kp.public());
        let encoded = kp.public().encode();
        let decoded = RsaPublicKey::decode(&encoded).unwrap();
        assert_eq!(&decoded, kp.public());
    }

    #[test]
    fn truncated_encoding_rejected() {
        let kp = test_keypair(9);
        let bytes = kp.public().to_bytes();
        assert!(RsaPublicKey::from_bytes(&bytes[..3]).is_err());
        assert!(RsaPublicKey::from_bytes(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn identifier_is_ten_bytes_and_stable() {
        let kp = test_keypair(10);
        let id1 = kp.public().identifier();
        let id2 = kp.public().identifier();
        assert_eq!(id1, id2);
        assert_eq!(id1.len(), 10);
        assert_eq!(&kp.public().fingerprint()[..10], &id1);
    }

    #[test]
    fn distinct_keys_have_distinct_identifiers() {
        let a = test_keypair(11);
        let b = test_keypair(12);
        assert_ne!(a.public().identifier(), b.public().identifier());
    }
}
