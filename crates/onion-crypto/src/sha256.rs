//! SHA-256 message digest (FIPS 180-4).
//!
//! Used throughout the OnionBots model for key derivation
//! (`generateKey(PK_CC, H(K_B, i_p))`, §IV-D), message authentication and
//! RSA signature hashing.
//!
//! ```
//! use onion_crypto::sha256::Sha256;
//! use onion_crypto::digest::Digest;
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(
//!     onion_crypto::hex::encode(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

use crate::digest::Digest;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Convenience: hashes `data` and returns the 32-byte digest as an array.
    pub fn digest_array(data: &[u8]) -> [u8; 32] {
        let v = Self::digest(data);
        let mut out = [0u8; 32];
        out.copy_from_slice(&v);
        out
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        let updates = [a, b, c, d, e, f, g, h];
        for (s, u) in self.state.iter_mut().zip(updates) {
            *s = s.wrapping_add(u);
        }
    }
}

impl Digest for Sha256 {
    const OUTPUT_LEN: usize = 32;
    const BLOCK_LEN: usize = 64;

    fn new() -> Self {
        Sha256::new()
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.process_block(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            let buffer_len = self.buffer_len;
            if buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            } else {
                self.buffer[buffer_len] = 0;
                self.buffer_len += 1;
            }
        }
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.process_block(&block);
        let mut out = Vec::with_capacity(32);
        for word in self.state {
            out.extend_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn sha256_hex(data: &[u8]) -> String {
        hex::encode(&Sha256::digest(data))
    }

    #[test]
    fn empty_string() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256_hex(&data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 253) as u8).collect();
        let oneshot = Sha256::digest(&data);
        for chunk_size in [1usize, 5, 64, 65, 127, 500] {
            let mut hasher = Sha256::new();
            for chunk in data.chunks(chunk_size) {
                hasher.update(chunk);
            }
            assert_eq!(hasher.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn digest_array_matches_digest() {
        assert_eq!(
            Sha256::digest_array(b"onionbots").to_vec(),
            Sha256::digest(b"onionbots")
        );
    }

    #[test]
    fn distinct_inputs_produce_distinct_digests() {
        assert_ne!(Sha256::digest(b"bot-a"), Sha256::digest(b"bot-b"));
    }
}
