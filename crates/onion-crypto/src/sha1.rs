//! SHA-1 message digest (FIPS 180-4).
//!
//! Tor derives hidden-service identifiers and HSDir descriptor IDs from
//! truncated SHA-1 digests, so the simulated Tor substrate needs a faithful
//! SHA-1. SHA-1 is *not* used here for collision resistance guarantees — it
//! mirrors the protocol the paper describes (§III).
//!
//! ```
//! use onion_crypto::sha1::Sha1;
//! use onion_crypto::digest::Digest;
//!
//! let digest = Sha1::digest(b"abc");
//! assert_eq!(onion_crypto::hex::encode(&digest),
//!            "a9993e364706816aba3e25717850c26c9cd0d89d");
//! ```

use crate::digest::Digest;

/// Incremental SHA-1 hasher.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;
    const BLOCK_LEN: usize = 64;

    fn new() -> Self {
        Sha1::new()
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.process_block(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zeros until 8 bytes remain in the final block.
        self.update(&[0x80]);
        // The update above already counted into total_len; padding bytes must
        // not count, so freeze the length now and pad manually.
        while self.buffer_len != 56 {
            let buffer_len = self.buffer_len;
            if buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            } else {
                self.buffer[buffer_len] = 0;
                self.buffer_len += 1;
            }
        }
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.process_block(&block);
        let mut out = Vec::with_capacity(20);
        for word in self.state {
            out.extend_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn sha1_hex(data: &[u8]) -> String {
        hex::encode(&Sha1::digest(data))
    }

    #[test]
    fn empty_string() {
        assert_eq!(sha1_hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn abc() {
        assert_eq!(sha1_hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha1_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(sha1_hex(&data), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Sha1::digest(&data);
        for chunk_size in [1usize, 3, 7, 63, 64, 65, 100] {
            let mut hasher = Sha1::new();
            for chunk in data.chunks(chunk_size) {
                hasher.update(chunk);
            }
            assert_eq!(hasher.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn output_length_is_twenty_bytes() {
        assert_eq!(Sha1::digest(b"x").len(), 20);
        assert_eq!(<Sha1 as Digest>::OUTPUT_LEN, 20);
    }
}
