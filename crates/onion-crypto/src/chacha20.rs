//! ChaCha20 stream cipher (RFC 7539 construction).
//!
//! OnionBot traffic must be encrypted and indistinguishable hop by hop
//! (§IV-D). The simulated Tor circuits apply one ChaCha20 layer per hop to
//! model Tor's layered (onion) encryption, and the uniform message encoding
//! ([`crate::elligator`]) uses the same keystream to make payloads look like
//! random strings.
//!
//! ```
//! use onion_crypto::chacha20::ChaCha20;
//!
//! let key = [7u8; 32];
//! let nonce = [1u8; 12];
//! let ciphertext = ChaCha20::new(&key, &nonce, 0).apply(b"attack at dawn");
//! let plaintext = ChaCha20::new(&key, &nonce, 0).apply(&ciphertext);
//! assert_eq!(plaintext, b"attack at dawn");
//! ```

/// A ChaCha20 cipher instance bound to a key, nonce and initial counter.
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Creates a cipher from a 32-byte key, 12-byte nonce and block counter.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut key_words = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            key_words[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let mut nonce_words = [0u32; 3];
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            nonce_words[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha20 {
            key: key_words,
            nonce: nonce_words,
            counter,
        }
    }

    /// Generates the 64-byte keystream block for the given counter value.
    pub fn block(&self, counter: u32) -> [u8; 64] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);
        let initial = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = state[i].wrapping_add(initial[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Encrypts or decrypts `data` (XOR with the keystream); the operation is
    /// an involution, so calling it twice with the same parameters recovers
    /// the input.
    pub fn apply(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        let mut counter = self.counter;
        for chunk in data.chunks(64) {
            let keystream = self.block(counter);
            counter = counter.wrapping_add(1);
            for (b, k) in chunk.iter().zip(keystream.iter()) {
                out.push(b ^ k);
            }
        }
        out
    }

    /// Produces `len` bytes of raw keystream starting at the configured
    /// counter. Useful as a deterministic pseudo-random byte source.
    pub fn keystream(&self, len: usize) -> Vec<u8> {
        self.apply(&vec![0u8; len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc7539_quarter_round_vector() {
        // RFC 7539 §2.1.1 test vector.
        let mut state = [0u32; 16];
        state[0] = 0x1111_1111;
        state[1] = 0x0102_0304;
        state[2] = 0x9b8d_6f43;
        state[3] = 0x0123_4567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a_92f4);
        assert_eq!(state[1], 0xcb1c_f8ce);
        assert_eq!(state[2], 0x4581_472e);
        assert_eq!(state[3], 0x5881_c4bb);
    }

    #[test]
    fn encryption_roundtrip() {
        let key = [0x42u8; 32];
        let nonce = [0x24u8; 12];
        let plaintext: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let ct = ChaCha20::new(&key, &nonce, 1).apply(&plaintext);
        assert_ne!(ct, plaintext);
        let pt = ChaCha20::new(&key, &nonce, 1).apply(&ct);
        assert_eq!(pt, plaintext);
    }

    #[test]
    fn different_keys_and_nonces_differ() {
        let msg = [0u8; 64];
        let a = ChaCha20::new(&[1u8; 32], &[0u8; 12], 0).apply(&msg);
        let b = ChaCha20::new(&[2u8; 32], &[0u8; 12], 0).apply(&msg);
        let c = ChaCha20::new(&[1u8; 32], &[1u8; 12], 0).apply(&msg);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn counter_advances_per_block() {
        let cipher = ChaCha20::new(&[9u8; 32], &[3u8; 12], 0);
        let two_blocks = cipher.keystream(128);
        assert_eq!(&two_blocks[..64], &cipher.block(0)[..]);
        assert_eq!(&two_blocks[64..], &cipher.block(1)[..]);
    }

    #[test]
    fn keystream_is_deterministic() {
        let a = ChaCha20::new(&[5u8; 32], &[6u8; 12], 7).keystream(256);
        let b = ChaCha20::new(&[5u8; 32], &[6u8; 12], 7).keystream(256);
        assert_eq!(a, b);
    }

    #[test]
    fn keystream_looks_balanced() {
        // Crude sanity check that the keystream is not obviously biased: the
        // popcount of 4 KiB of keystream should be close to half the bits.
        let ks = ChaCha20::new(&[0xabu8; 32], &[0xcdu8; 12], 0).keystream(4096);
        let ones: u32 = ks.iter().map(|b| b.count_ones()).sum();
        let total = 4096 * 8;
        let ratio = f64::from(ones) / f64::from(total as u32);
        assert!((0.47..0.53).contains(&ratio), "bit ratio {ratio}");
    }
}
