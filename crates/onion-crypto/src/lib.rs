//! # onion-crypto
//!
//! From-scratch cryptographic primitives for the OnionBots (DSN 2015)
//! defensive research simulator.
//!
//! The reproduction environment only allows a small set of non-cryptographic
//! third-party crates, so every primitive the paper's design depends on is
//! implemented here:
//!
//! * [`bignum`] — arbitrary-precision unsigned integers.
//! * [`prime`] — Miller–Rabin primality testing and prime generation.
//! * [`rsa`] — textbook RSA key pairs, signatures and encryption (hidden
//!   service identities, botmaster keys, rental tokens).
//! * [`sha1`], [`sha256`], [`digest`] — hash functions (Tor identifiers and
//!   descriptor IDs use SHA-1; everything else uses SHA-256).
//! * [`hmac`] — message authentication.
//! * [`chacha20`] — the stream cipher used for layered circuit encryption and
//!   uniform message encoding.
//! * [`base32`] — `.onion` hostname encoding.
//! * [`kdf`] — the paper's `generateKey(PK_CC, H(K_B, i_p))` periodic address
//!   rotation recipe.
//! * [`elligator`] — fixed-size, indistinguishable-from-random message cells
//!   (the property the paper obtains from Elligator).
//!
//! Everything here is **simulation-grade**: correct against published test
//! vectors, but not hardened (no constant-time bignum arithmetic, no
//! side-channel defenses) and not intended for production use.
//!
//! ```
//! use onion_crypto::rsa::RsaKeyPair;
//! use onion_crypto::base32;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let service_key = RsaKeyPair::generate(512, &mut rng);
//! let onion_label = base32::encode(&service_key.public().identifier());
//! assert_eq!(onion_label.len(), 16);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod base32;
pub mod bignum;
pub mod chacha20;
pub mod digest;
pub mod elligator;
pub mod error;
pub mod hex;
pub mod hmac;
pub mod kdf;
pub mod prime;
mod proptests;
pub mod rsa;
pub mod sha1;
pub mod sha256;

pub use error::CryptoError;

#[cfg(test)]
mod integration_tests {
    //! Cross-module tests exercising the flows the rest of the workspace
    //! builds on.

    use crate::base32;
    use crate::digest::Digest;
    use crate::elligator::UniformEncoder;
    use crate::kdf;
    use crate::rsa::RsaKeyPair;
    use crate::sha1::Sha1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn onion_address_derivation_matches_tor_recipe() {
        // .onion = base32(first 10 bytes of SHA-1(public key)).
        let mut rng = StdRng::seed_from_u64(100);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let digest = Sha1::digest(&kp.public().to_bytes());
        let onion = base32::encode(&digest[..10]);
        assert_eq!(onion, base32::encode(&kp.public().identifier()));
        assert_eq!(onion.len(), 16);
    }

    #[test]
    fn bot_key_report_flow() {
        // A bot generates K_B, encrypts it to PK_CC, the botmaster decrypts
        // it and both sides derive the same next-period address seed.
        let mut rng = StdRng::seed_from_u64(101);
        let cc = RsaKeyPair::generate(768, &mut rng);
        let k_b: [u8; 32] = rand::Rng::gen(&mut rng);
        let report = cc.public().encrypt(&k_b, &mut rng).unwrap();
        let recovered = cc.decrypt(&report).unwrap();
        assert_eq!(recovered, k_b.to_vec());
        assert_eq!(
            kdf::derive_period_seed(cc.public(), &k_b, 3),
            kdf::derive_period_seed(cc.public(), &recovered, 3)
        );
    }

    #[test]
    fn signed_uniform_command_flow() {
        // The botmaster signs a command, wraps it in a uniform cell, and a
        // bot unwraps and verifies it.
        let mut rng = StdRng::seed_from_u64(102);
        let cc = RsaKeyPair::generate(512, &mut rng);
        let link_key = kdf::derive_link_key(b"botnet", b"bot-a", b"bot-b");
        let encoder = UniformEncoder::new(link_key);

        let command = b"broadcast:noop-maintenance".to_vec();
        let signature = cc.sign(&command);
        let mut wire = Vec::new();
        wire.extend_from_slice(&(command.len() as u16).to_be_bytes());
        wire.extend_from_slice(&command);
        wire.extend_from_slice(&signature);

        let cell = encoder.encode(&wire, &mut rng).unwrap();
        let received = encoder.decode(&cell).unwrap();
        let cmd_len = u16::from_be_bytes([received[0], received[1]]) as usize;
        let cmd = &received[2..2 + cmd_len];
        let sig = &received[2 + cmd_len..];
        assert_eq!(cmd, command.as_slice());
        assert!(cc.public().verify(cmd, sig));
    }
}
