//! Property-based tests over the cryptographic primitives.
//!
//! These complement the unit tests (which pin known-answer vectors) with
//! randomized structural properties: algebraic identities of the big-integer
//! arithmetic, roundtrip laws of the encodings, and involution/uniformity
//! properties of the symmetric layers.

#![cfg(test)]

use proptest::prelude::*;

use crate::base32;
use crate::bignum::BigUint;
use crate::chacha20::ChaCha20;
use crate::digest::Digest;
use crate::elligator::{UniformEncoder, MAX_PAYLOAD_LEN};
use crate::hex;
use crate::hmac::{hmac, hmac_verify};
use crate::sha256::Sha256;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn biguint_strategy() -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u8>(), 0..48).prop_map(|bytes| BigUint::from_bytes_be(&bytes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Addition and subtraction are inverse operations.
    #[test]
    fn bignum_add_sub_roundtrip(a in biguint_strategy(), b in biguint_strategy()) {
        let sum = a.add_ref(&b);
        prop_assert_eq!(sum.sub_ref(&b), a.clone());
        prop_assert_eq!(sum.sub_ref(&a), b);
    }

    /// Multiplication distributes over addition.
    #[test]
    fn bignum_mul_distributes(a in biguint_strategy(), b in biguint_strategy(), c in biguint_strategy()) {
        let left = a.mul_ref(&b.add_ref(&c));
        let right = a.mul_ref(&b).add_ref(&a.mul_ref(&c));
        prop_assert_eq!(left, right);
    }

    /// Division identity: a = q * d + r with r < d.
    #[test]
    fn bignum_div_rem_identity(a in biguint_strategy(), d in biguint_strategy()) {
        prop_assume!(!d.is_zero());
        let (q, r) = a.div_rem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(q.mul_ref(&d).add_ref(&r), a);
    }

    /// Shifting left then right by the same amount is the identity.
    #[test]
    fn bignum_shift_roundtrip(a in biguint_strategy(), bits in 0usize..100) {
        prop_assert_eq!(a.shl(bits).shr(bits), a);
    }

    /// Byte and hex serialization roundtrip.
    #[test]
    fn bignum_serialization_roundtrip(a in biguint_strategy()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a.clone());
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    /// Modular exponentiation respects the multiplicative property
    /// (a*b)^e = a^e * b^e (mod m).
    #[test]
    fn bignum_mod_exp_is_multiplicative(a in biguint_strategy(), b in biguint_strategy(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = BigUint::random_bits(&mut rng, 64);
        prop_assume!(!m.is_zero() && !m.is_one());
        let e = BigUint::from_u64(65_537);
        let left = a.mul_ref(&b).mod_exp(&e, &m);
        let right = a.mod_exp(&e, &m).mul_ref(&b.mod_exp(&e, &m)).rem_ref(&m);
        prop_assert_eq!(left, right);
    }

    /// hex and base32 encodings roundtrip arbitrary byte strings.
    #[test]
    fn encodings_roundtrip(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(hex::decode(&hex::encode(&bytes)).unwrap(), bytes.clone());
        prop_assert_eq!(base32::decode(&base32::encode(&bytes)).unwrap(), bytes);
    }

    /// ChaCha20 is an involution under a fixed key/nonce/counter.
    #[test]
    fn chacha20_involution(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        counter in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let cipher = ChaCha20::new(&key, &nonce, counter);
        prop_assert_eq!(cipher.apply(&cipher.apply(&data)), data);
    }

    /// HMAC verifies its own output and rejects single-bit tampering.
    #[test]
    fn hmac_verifies_and_rejects_tampering(
        key in prop::collection::vec(any::<u8>(), 1..80),
        msg in prop::collection::vec(any::<u8>(), 0..200),
        flip_bit in 0usize..256,
    ) {
        let tag = hmac::<Sha256>(&key, &msg);
        prop_assert!(hmac_verify::<Sha256>(&key, &msg, &tag));
        let mut bad = tag.clone();
        let byte = (flip_bit / 8) % bad.len();
        bad[byte] ^= 1 << (flip_bit % 8);
        prop_assert!(!hmac_verify::<Sha256>(&key, &msg, &bad));
    }

    /// SHA-256 is deterministic and sensitive to any single-byte change.
    #[test]
    fn sha256_sensitivity(data in prop::collection::vec(any::<u8>(), 1..200), idx in 0usize..200, delta in 1u8..=255) {
        let idx = idx % data.len();
        let mut mutated = data.clone();
        mutated[idx] = mutated[idx].wrapping_add(delta);
        prop_assert_eq!(Sha256::digest(&data), Sha256::digest(&data));
        prop_assert_ne!(Sha256::digest(&data), Sha256::digest(&mutated));
    }

    /// Uniform cells roundtrip every payload size and never leak the length
    /// through the cell size.
    #[test]
    fn uniform_encoding_roundtrip(
        key in prop::array::uniform32(any::<u8>()),
        payload in prop::collection::vec(any::<u8>(), 0..MAX_PAYLOAD_LEN),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let encoder = UniformEncoder::new(key);
        let cell = encoder.encode(&payload, &mut rng).unwrap();
        prop_assert_eq!(cell.len(), crate::elligator::UNIFORM_CELL_LEN);
        prop_assert_eq!(encoder.decode(&cell).unwrap(), payload);
    }
}
