//! Key derivation for periodic `.onion` address rotation.
//!
//! The paper specifies (§IV-D) that after establishing the shared symmetric
//! key `K_B` with the C&C, each bot periodically regenerates its hidden
//! service key as `generateKey(PK_CC, H(K_B, i_p))`, where `H` is a hash
//! function and `i_p` is the index of the period (e.g. the day number). Both
//! the bot and the botmaster can therefore compute the bot's current
//! `.onion` address without any communication, while an observer who captures
//! one address learns nothing about future addresses without `K_B`.
//!
//! ```
//! use onion_crypto::kdf::{derive_period_secret, derive_period_seed};
//! use onion_crypto::rsa::RsaKeyPair;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let cc = RsaKeyPair::generate(512, &mut rng);
//! let k_b = [0x11u8; 32];
//! let today = derive_period_secret(cc.public(), &k_b, 100);
//! let tomorrow = derive_period_secret(cc.public(), &k_b, 101);
//! assert_ne!(today, tomorrow);
//! ```

use crate::digest::Digest;
use crate::hmac::hmac;
use crate::rsa::RsaPublicKey;
use crate::sha256::Sha256;

/// Derives the 32-byte period secret `generateKey(PK_CC, H(K_B, i_p))`.
///
/// The inner hash binds the shared key `K_B` to the period index; the outer
/// HMAC binds the result to the botmaster's public key so that two botnets
/// operated by different masters never collide even if they reuse `K_B`
/// values.
pub fn derive_period_secret(pk_cc: &RsaPublicKey, k_b: &[u8], period: u64) -> [u8; 32] {
    let mut inner_input = Vec::with_capacity(k_b.len() + 8);
    inner_input.extend_from_slice(k_b);
    inner_input.extend_from_slice(&period.to_be_bytes());
    let inner = Sha256::digest(&inner_input);
    let tag = hmac::<Sha256>(&pk_cc.to_bytes(), &inner);
    let mut out = [0u8; 32];
    out.copy_from_slice(&tag);
    out
}

/// Expands a period secret into a deterministic 64-bit seed, used by the
/// simulator to seed the RSA key generation RNG for that period's hidden
/// service identity.
pub fn derive_period_seed(pk_cc: &RsaPublicKey, k_b: &[u8], period: u64) -> u64 {
    let secret = derive_period_secret(pk_cc, k_b, period);
    u64::from_be_bytes([
        secret[0], secret[1], secret[2], secret[3], secret[4], secret[5], secret[6], secret[7],
    ])
}

/// Derives a per-link symmetric key from two endpoint identifiers and a
/// shared botnet secret, modelling the unique per-link encryption keys the
/// paper requires ("the encryption keys are unique to each link", §IV-E).
pub fn derive_link_key(shared_secret: &[u8], endpoint_a: &[u8], endpoint_b: &[u8]) -> [u8; 32] {
    // Order the endpoints so both sides derive the same key.
    let (first, second) = if endpoint_a <= endpoint_b {
        (endpoint_a, endpoint_b)
    } else {
        (endpoint_b, endpoint_a)
    };
    let mut data = Vec::with_capacity(first.len() + second.len() + 9);
    data.extend_from_slice(b"link-key|");
    data.extend_from_slice(first);
    data.extend_from_slice(second);
    let tag = hmac::<Sha256>(shared_secret, &data);
    let mut out = [0u8; 32];
    out.copy_from_slice(&tag);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cc_key(seed: u64) -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        RsaKeyPair::generate(512, &mut rng)
    }

    #[test]
    fn period_secret_is_deterministic() {
        let cc = cc_key(1);
        let k_b = [7u8; 32];
        assert_eq!(
            derive_period_secret(cc.public(), &k_b, 42),
            derive_period_secret(cc.public(), &k_b, 42)
        );
    }

    #[test]
    fn different_periods_give_different_secrets() {
        let cc = cc_key(2);
        let k_b = [9u8; 32];
        let secrets: Vec<[u8; 32]> = (0..10)
            .map(|p| derive_period_secret(cc.public(), &k_b, p))
            .collect();
        for i in 0..secrets.len() {
            for j in i + 1..secrets.len() {
                assert_ne!(secrets[i], secrets[j], "periods {i} and {j} collided");
            }
        }
    }

    #[test]
    fn different_bots_give_different_secrets() {
        let cc = cc_key(3);
        assert_ne!(
            derive_period_secret(cc.public(), &[1u8; 32], 5),
            derive_period_secret(cc.public(), &[2u8; 32], 5)
        );
    }

    #[test]
    fn different_botmasters_give_different_secrets() {
        let cc1 = cc_key(4);
        let cc2 = cc_key(5);
        let k_b = [3u8; 32];
        assert_ne!(
            derive_period_secret(cc1.public(), &k_b, 5),
            derive_period_secret(cc2.public(), &k_b, 5)
        );
    }

    #[test]
    fn period_seed_matches_secret_prefix() {
        let cc = cc_key(6);
        let k_b = [4u8; 32];
        let secret = derive_period_secret(cc.public(), &k_b, 77);
        let seed = derive_period_seed(cc.public(), &k_b, 77);
        assert_eq!(seed.to_be_bytes(), secret[..8]);
    }

    #[test]
    fn link_key_is_symmetric_in_endpoints() {
        let secret = b"botnet-shared";
        let a = b"onion-address-a";
        let b = b"onion-address-b";
        assert_eq!(derive_link_key(secret, a, b), derive_link_key(secret, b, a));
        assert_ne!(
            derive_link_key(secret, a, b),
            derive_link_key(secret, a, b"onion-address-c")
        );
    }
}
