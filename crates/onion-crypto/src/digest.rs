//! The [`Digest`] trait shared by the hash functions in this crate.
//!
//! ```
//! use onion_crypto::digest::Digest;
//! use onion_crypto::sha256::Sha256;
//!
//! let mut hasher = Sha256::new();
//! hasher.update(b"hello ");
//! hasher.update(b"world");
//! assert_eq!(hasher.finalize(), Sha256::digest(b"hello world"));
//! ```

/// A streaming cryptographic hash function.
pub trait Digest: Sized {
    /// Digest output length in bytes.
    const OUTPUT_LEN: usize;
    /// Internal block length in bytes (used by HMAC).
    const BLOCK_LEN: usize;

    /// Creates a fresh hasher.
    fn new() -> Self;

    /// Absorbs more input.
    fn update(&mut self, data: &[u8]);

    /// Consumes the hasher and returns the digest.
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience: hash `data` in a single call.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut hasher = Self::new();
        hasher.update(data);
        hasher.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::Sha1;
    use crate::sha256::Sha256;

    #[test]
    fn block_lengths_match_fips_parameters() {
        assert_eq!(<Sha1 as Digest>::BLOCK_LEN, 64);
        assert_eq!(<Sha256 as Digest>::BLOCK_LEN, 64);
    }

    #[test]
    fn oneshot_equals_streaming_for_all_impls() {
        fn check<D: Digest>() {
            let data = b"the quick brown fox jumps over the lazy dog";
            let mut h = D::new();
            h.update(&data[..10]);
            h.update(&data[10..]);
            assert_eq!(h.finalize(), D::digest(data));
        }
        check::<Sha1>();
        check::<Sha256>();
    }
}
