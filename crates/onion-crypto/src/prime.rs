//! Probabilistic primality testing and prime generation for RSA key
//! generation.
//!
//! Uses trial division by a sieve of small primes followed by Miller–Rabin
//! with random bases. Key sizes in the simulator are deliberately small
//! (512–1024 bit moduli) so generation stays fast inside tests.

use rand::Rng;

use crate::bignum::BigUint;

/// Returns all primes below `limit` using a simple sieve of Eratosthenes.
pub fn small_primes(limit: usize) -> Vec<u64> {
    if limit < 2 {
        return Vec::new();
    }
    let mut sieve = vec![true; limit];
    sieve[0] = false;
    sieve[1] = false;
    let mut i = 2usize;
    while i * i < limit {
        if sieve[i] {
            let mut j = i * i;
            while j < limit {
                sieve[j] = false;
                j += i;
            }
        }
        i += 1;
    }
    sieve
        .iter()
        .enumerate()
        .filter_map(|(n, &is_prime)| if is_prime { Some(n as u64) } else { None })
        .collect()
}

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// Numbers below 2 are composite; 2 and 3 are prime. The error probability is
/// at most 4^-rounds for adversarially chosen inputs, far smaller for random
/// candidates.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    let two = BigUint::from_u64(2);
    let three = BigUint::from_u64(3);
    if n < &two {
        return false;
    }
    if n == &two || n == &three {
        return true;
    }
    if n.is_even() {
        return false;
    }
    // Trial division knocks out most composites cheaply.
    for p in small_primes(2000) {
        let p_big = BigUint::from_u64(p);
        if &p_big >= n {
            break;
        }
        if n.rem_ref(&p_big).is_zero() {
            return false;
        }
    }

    let one = BigUint::one();
    let n_minus_1 = n.sub_ref(&one);
    // Write n - 1 = d * 2^s with d odd.
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }

    'witness: for _ in 0..rounds {
        // a in [2, n-2]
        let range = n.sub_ref(&three);
        let a = BigUint::random_below(rng, &range).add_ref(&two);
        let mut x = a.mod_exp(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.mul_ref(&x).rem_ref(n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// # Panics
/// Panics if `bits < 8`; the simulator never needs primes that small and the
/// generation loop assumes a reasonable search space.
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 8, "prime size must be at least 8 bits");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        // Force odd.
        if candidate.is_even() {
            candidate = candidate.add_ref(&BigUint::one());
        }
        if candidate.bit_len() != bits {
            continue;
        }
        if is_probable_prime(&candidate, 20, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sieve_produces_known_primes() {
        let primes = small_primes(50);
        assert_eq!(
            primes,
            vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]
        );
        assert!(small_primes(0).is_empty());
        assert!(small_primes(2).is_empty());
    }

    #[test]
    fn classifies_small_numbers() {
        let mut rng = StdRng::seed_from_u64(1);
        let primes = [2u64, 3, 5, 7, 11, 101, 7919, 104_729, 1_000_000_007];
        let composites = [0u64, 1, 4, 9, 15, 100, 7917, 104_730, 1_000_000_008];
        for p in primes {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 16, &mut rng),
                "{p} should be prime"
            );
        }
        for c in composites {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn rejects_carmichael_numbers() {
        // Carmichael numbers fool Fermat tests but not Miller-Rabin.
        let mut rng = StdRng::seed_from_u64(2);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut rng),
                "{c} is a Carmichael number and must be rejected"
            );
        }
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut rng = StdRng::seed_from_u64(3);
        for bits in [64usize, 96, 128] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits);
            assert!(is_probable_prime(&p, 16, &mut rng));
        }
    }

    #[test]
    fn generated_primes_are_odd_and_distinct() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = gen_prime(96, &mut rng);
        let b = gen_prime(96, &mut rng);
        assert!(!a.is_even());
        assert!(!b.is_even());
        assert_ne!(a, b);
    }
}
