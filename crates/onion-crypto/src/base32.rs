//! RFC 4648 base32 (lowercase, unpadded) — the encoding Tor uses for
//! `.onion` hostnames.
//!
//! A v2 onion address is the base32 encoding of the first 10 bytes of the
//! SHA-1 digest of the service's RSA public key (§III of the paper), which is
//! why this module only needs the lowercase unpadded variant.
//!
//! ```
//! let encoded = onion_crypto::base32::encode(&[0xff, 0x00, 0xab]);
//! let decoded = onion_crypto::base32::decode(&encoded).unwrap();
//! assert_eq!(decoded, vec![0xff, 0x00, 0xab]);
//! ```

use crate::error::CryptoError;

const ALPHABET: &[u8; 32] = b"abcdefghijklmnopqrstuvwxyz234567";

/// Encodes bytes as lowercase, unpadded base32.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(5) * 8);
    let mut buffer: u64 = 0;
    let mut bits: u32 = 0;
    for &byte in data {
        buffer = (buffer << 8) | u64::from(byte);
        bits += 8;
        while bits >= 5 {
            bits -= 5;
            let idx = ((buffer >> bits) & 0x1f) as usize;
            out.push(ALPHABET[idx] as char);
        }
    }
    if bits > 0 {
        let idx = ((buffer << (5 - bits)) & 0x1f) as usize;
        out.push(ALPHABET[idx] as char);
    }
    out
}

/// Decodes lowercase or uppercase unpadded base32.
///
/// # Errors
/// Returns [`CryptoError::InvalidEncoding`] for characters outside the
/// RFC 4648 alphabet.
pub fn decode(s: &str) -> Result<Vec<u8>, CryptoError> {
    let mut out = Vec::with_capacity(s.len() * 5 / 8);
    let mut buffer: u64 = 0;
    let mut bits: u32 = 0;
    for ch in s.chars() {
        let c = ch.to_ascii_lowercase();
        let value = match c {
            'a'..='z' => c as u64 - 'a' as u64,
            '2'..='7' => c as u64 - '2' as u64 + 26,
            '=' => continue,
            _ => {
                return Err(CryptoError::InvalidEncoding(format!(
                    "invalid base32 character {ch:?}"
                )))
            }
        };
        buffer = (buffer << 5) | value;
        bits += 5;
        if bits >= 8 {
            bits -= 8;
            out.push(((buffer >> bits) & 0xff) as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        // RFC 4648 test vectors, lowercased and unpadded.
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "my");
        assert_eq!(encode(b"fo"), "mzxq");
        assert_eq!(encode(b"foo"), "mzxw6");
        assert_eq!(encode(b"foob"), "mzxw6yq");
        assert_eq!(encode(b"fooba"), "mzxw6ytb");
        assert_eq!(encode(b"foobar"), "mzxw6ytboi");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("mzxw6ytboi").unwrap(), b"foobar".to_vec());
        assert_eq!(decode("MZXW6YTBOI").unwrap(), b"foobar".to_vec());
        assert_eq!(decode("mzxw6yq=").unwrap(), b"foob".to_vec());
    }

    #[test]
    fn roundtrip_various_lengths() {
        for len in 0..40usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn onion_address_shape() {
        // A 10-byte identifier encodes to the familiar 16-character onion label.
        let identifier = [0u8; 10];
        assert_eq!(encode(&identifier).len(), 16);
    }

    #[test]
    fn rejects_invalid_characters() {
        assert!(decode("not base32 !!").is_err());
        assert!(decode("0189").is_err());
    }
}
