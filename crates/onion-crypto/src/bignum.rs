//! Arbitrary-precision unsigned integers.
//!
//! The OnionBots reproduction cannot depend on external cryptography crates,
//! so RSA (used for hidden-service identities, botmaster signatures and
//! rental tokens) is built on this minimal big-integer type. The
//! implementation favours clarity and correctness over speed: schoolbook
//! multiplication and binary long division are more than fast enough for the
//! 512–2048 bit moduli exercised by the simulator and its tests.
//!
//! ```
//! use onion_crypto::bignum::BigUint;
//!
//! let a = BigUint::from_u64(1_000_000_007);
//! let b = BigUint::from_u64(998_244_353);
//! let product = &a * &b;
//! assert_eq!(product.to_u64(), Some(1_000_000_007u64 * 998_244_353u64));
//! ```

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Rem, Sub};

use rand::Rng;

/// An arbitrary-precision unsigned integer stored as little-endian 32-bit
/// limbs.
///
/// The representation is always normalized: the most significant limb is
/// non-zero, and zero is represented by an empty limb vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// Returns the value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// Returns the value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Creates a value from a `u64`.
    pub fn from_u64(value: u64) -> Self {
        let mut n = BigUint {
            limbs: vec![value as u32, (value >> 32) as u32],
        };
        n.normalize();
        n
    }

    /// Creates a value from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut chunk_start = bytes.len();
        while chunk_start > 0 {
            let take = chunk_start.min(4);
            let lo = chunk_start - take;
            let mut limb: u32 = 0;
            for &b in &bytes[lo..chunk_start] {
                limb = (limb << 8) | u32::from(b);
            }
            limbs.push(limb);
            chunk_start = lo;
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serializes to big-endian bytes with no leading zero bytes.
    ///
    /// Zero serializes to an empty vector.
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the top limb.
                let mut skipping = true;
                for b in bytes {
                    if skipping && b == 0 {
                        continue;
                    }
                    skipping = false;
                    out.push(b);
                }
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left padded with zeros.
    ///
    /// # Panics
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix, case insensitive).
    ///
    /// # Errors
    /// Returns `None` if the string contains non-hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.is_empty() {
            return Some(BigUint::zero());
        }
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let chars: Vec<char> = s.chars().collect();
        let mut idx = 0;
        // Handle an odd-length leading nibble.
        if chars.len() % 2 == 1 {
            bytes.push(chars[0].to_digit(16)? as u8);
            idx = 1;
        }
        while idx < chars.len() {
            let hi = chars[idx].to_digit(16)? as u8;
            let lo = chars[idx + 1].to_digit(16)? as u8;
            bytes.push((hi << 4) | lo);
            idx += 2;
        }
        Some(BigUint::from_bytes_be(&bytes))
    }

    /// Formats as lowercase hexadecimal with no leading zeros ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let bytes = self.to_bytes_be();
        let mut s = String::with_capacity(bytes.len() * 2);
        for (i, b) in bytes.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("{b:x}"));
            } else {
                s.push_str(&format!("{b:02x}"));
            }
        }
        s
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is even (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (`0` for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        let off = i % 32;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to one, growing the representation if necessary.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 32;
        let off = i % 32;
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << off;
    }

    /// Converts to `u64`, returning `None` when the value does not fit.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u64::from(self.limbs[0])),
            2 => Some(u64::from(self.limbs[0]) | (u64::from(self.limbs[1]) << 32)),
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Shifts left by one bit in place.
    fn shl1_assign(&mut self) {
        let mut carry = 0u32;
        for limb in &mut self.limbs {
            let new_carry = *limb >> 31;
            *limb = (*limb << 1) | carry;
            carry = new_carry;
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Shifts left by `bits` bits, returning a new value.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut limbs = vec![0u32; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Shifts right by `bits` bits, returning a new value.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 32;
        let mut limbs: Vec<u32> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            let mut carry = 0u32;
            for l in limbs.iter_mut().rev() {
                let new_carry = *l << (32 - bit_shift);
                *l = (*l >> bit_shift) | carry;
                carry = new_carry;
            }
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Adds two values.
    pub fn add_ref(&self, other: &BigUint) -> BigUint {
        let mut limbs = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = u64::from(*self.limbs.get(i).unwrap_or(&0));
            let b = u64::from(*other.limbs.get(i).unwrap_or(&0));
            let sum = a + b + carry;
            limbs.push(sum as u32);
            carry = sum >> 32;
        }
        if carry != 0 {
            limbs.push(carry as u32);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Subtracts `other` from `self`.
    ///
    /// # Panics
    /// Panics if `other > self`.
    pub fn sub_ref(&self, other: &BigUint) -> BigUint {
        assert!(
            self >= other,
            "BigUint subtraction underflow: {} - {}",
            self.to_hex(),
            other.to_hex()
        );
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = i64::from(self.limbs[i]);
            let b = i64::from(*other.limbs.get(i).unwrap_or(&0));
            let mut diff = a - b - borrow;
            if diff < 0 {
                diff += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs.push(diff as u32);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Multiplies two values (schoolbook).
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let idx = i + j;
                let cur = u64::from(limbs[idx]) + u64::from(a) * u64::from(b) + carry;
                limbs[idx] = cur as u32;
                carry = cur >> 32;
            }
            let mut idx = i + other.limbs.len();
            while carry != 0 {
                let cur = u64::from(limbs[idx]) + carry;
                limbs[idx] = cur as u32;
                carry = cur >> 32;
                idx += 1;
            }
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Computes the quotient and remainder of `self / divisor` using binary
    /// long division.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        let mut quotient = BigUint::zero();
        let mut remainder = BigUint::zero();
        for i in (0..self.bit_len()).rev() {
            remainder.shl1_assign();
            if self.bit(i) {
                if remainder.limbs.is_empty() {
                    remainder.limbs.push(0);
                }
                remainder.limbs[0] |= 1;
            }
            if &remainder >= divisor {
                remainder = remainder.sub_ref(divisor);
                quotient.set_bit(i);
            }
        }
        quotient.normalize();
        remainder.normalize();
        (quotient, remainder)
    }

    /// Computes `self mod modulus`.
    pub fn rem_ref(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Computes `self^exponent mod modulus` by square-and-multiply.
    ///
    /// # Panics
    /// Panics if `modulus` is zero.
    pub fn mod_exp(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modulus must be non-zero");
        if modulus.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let mut base = self.rem_ref(modulus);
        for i in 0..exponent.bit_len() {
            if exponent.bit(i) {
                result = result.mul_ref(&base).rem_ref(modulus);
            }
            base = base.mul_ref(&base).rem_ref(modulus);
        }
        result
    }

    /// Computes the greatest common divisor of `self` and `other`.
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem_ref(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Computes the multiplicative inverse of `self` modulo `modulus`.
    ///
    /// Returns `None` when `gcd(self, modulus) != 1`.
    pub fn mod_inverse(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() || modulus.is_one() {
            return None;
        }
        let mut t = BigUint::zero();
        let mut new_t = BigUint::one();
        let mut r = modulus.clone();
        let mut new_r = self.rem_ref(modulus);
        while !new_r.is_zero() {
            let (q, rem) = r.div_rem(&new_r);
            // next_t = (t - q*new_t) mod modulus, computed without signs.
            let q_nt = q.mul_ref(&new_t).rem_ref(modulus);
            let next_t = if t >= q_nt {
                t.sub_ref(&q_nt)
            } else {
                t.add_ref(modulus).sub_ref(&q_nt)
            };
            t = new_t;
            new_t = next_t;
            r = new_r;
            new_r = rem;
        }
        if r.is_one() {
            Some(t.rem_ref(modulus))
        } else {
            None
        }
    }

    /// Generates a uniformly random value with exactly `bits` bits
    /// (the top bit is always set), using the provided RNG.
    ///
    /// # Panics
    /// Panics if `bits` is zero.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits > 0, "cannot generate a zero-bit number");
        let limbs_needed = bits.div_ceil(32);
        let mut limbs: Vec<u32> = (0..limbs_needed).map(|_| rng.gen()).collect();
        let top_bits = bits % 32;
        if top_bits != 0 {
            let mask = (1u32 << top_bits) - 1;
            let last = limbs.last_mut().expect("at least one limb");
            *last &= mask;
        }
        let mut n = BigUint { limbs };
        n.set_bit(bits - 1);
        n.normalize();
        n
    }

    /// Generates a uniformly random value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "bound must be positive");
        let bits = bound.bit_len();
        loop {
            let limbs_needed = bits.div_ceil(32);
            let mut limbs: Vec<u32> = (0..limbs_needed).map(|_| rng.gen()).collect();
            let top_bits = bits % 32;
            if top_bits != 0 {
                let mask = (1u32 << top_bits) - 1;
                let last = limbs.last_mut().expect("at least one limb");
                *last &= mask;
            }
            let mut candidate = BigUint { limbs };
            candidate.normalize();
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl From<u64> for BigUint {
    fn from(value: u64) -> Self {
        BigUint::from_u64(value)
    }
}

impl From<u32> for BigUint {
    fn from(value: u32) -> Self {
        BigUint::from_u64(u64::from(value))
    }
}

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        self.add_ref(rhs)
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.sub_ref(rhs)
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_ref(rhs)
    }
}

impl Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.rem_ref(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_and_one_identities() {
        let zero = BigUint::zero();
        let one = BigUint::one();
        assert!(zero.is_zero());
        assert!(one.is_one());
        assert!(!one.is_zero());
        assert_eq!(zero.bit_len(), 0);
        assert_eq!(one.bit_len(), 1);
        assert_eq!(zero.to_hex(), "0");
        assert_eq!(one.to_hex(), "1");
    }

    #[test]
    fn from_u64_roundtrip() {
        for v in [0u64, 1, 42, 0xffff_ffff, 0x1_0000_0000, u64::MAX] {
            let n = BigUint::from_u64(v);
            assert_eq!(n.to_u64(), Some(v));
        }
    }

    #[test]
    fn byte_roundtrip() {
        let bytes = [0x01u8, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09];
        let n = BigUint::from_bytes_be(&bytes);
        assert_eq!(n.to_bytes_be(), bytes.to_vec());
    }

    #[test]
    fn byte_parsing_strips_leading_zeros() {
        let n = BigUint::from_bytes_be(&[0, 0, 0, 0x12, 0x34]);
        assert_eq!(n.to_bytes_be(), vec![0x12, 0x34]);
        assert_eq!(n.to_u64(), Some(0x1234));
    }

    #[test]
    fn padded_serialization() {
        let n = BigUint::from_u64(0xabcd);
        assert_eq!(n.to_bytes_be_padded(4), vec![0, 0, 0xab, 0xcd]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_serialization_too_small_panics() {
        BigUint::from_u64(0xabcdef).to_bytes_be_padded(2);
    }

    #[test]
    fn hex_roundtrip() {
        let cases = ["1", "ff", "deadbeef", "123456789abcdef0123456789abcdef"];
        for c in cases {
            let n = BigUint::from_hex(c).expect("valid hex");
            assert_eq!(n.to_hex(), c, "case {c}");
        }
        assert_eq!(BigUint::from_hex("0").unwrap().to_hex(), "0");
        assert_eq!(BigUint::from_hex("000012ab").unwrap().to_hex(), "12ab");
        assert!(BigUint::from_hex("xyz").is_none());
    }

    #[test]
    fn addition_and_subtraction() {
        let a = BigUint::from_hex("ffffffffffffffffffffffff").unwrap();
        let one = BigUint::one();
        let sum = &a + &one;
        assert_eq!(sum.to_hex(), "1000000000000000000000000");
        assert_eq!((&sum - &one).to_hex(), a.to_hex());
        assert_eq!((&a - &a).to_hex(), "0");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = &BigUint::one() - &BigUint::from_u64(2);
    }

    #[test]
    fn multiplication_against_u128_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let a: u64 = rng.gen();
            let b: u64 = rng.gen();
            let expected = u128::from(a) * u128::from(b);
            let got = &BigUint::from_u64(a) * &BigUint::from_u64(b);
            let expected_big = BigUint::from_bytes_be(&expected.to_be_bytes());
            assert_eq!(got, expected_big);
        }
    }

    #[test]
    fn division_against_u128_reference() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..200 {
            let a: u128 = rng.gen();
            let b: u64 = rng.gen_range(1..u64::MAX);
            let (q, r) = BigUint::from_bytes_be(&a.to_be_bytes()).div_rem(&BigUint::from_u64(b));
            let expected_q = a / u128::from(b);
            let expected_r = a % u128::from(b);
            assert_eq!(q, BigUint::from_bytes_be(&expected_q.to_be_bytes()));
            assert_eq!(r, BigUint::from_bytes_be(&expected_r.to_be_bytes()));
        }
    }

    #[test]
    fn division_identity_holds_for_large_values() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let a = BigUint::random_bits(&mut rng, 512);
            let b = BigUint::random_bits(&mut rng, 200);
            let (q, r) = a.div_rem(&b);
            assert!(r < b);
            assert_eq!(&(&q * &b) + &r, a);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn shifts() {
        let n = BigUint::from_u64(0b1011);
        assert_eq!(n.shl(4).to_u64(), Some(0b1011_0000));
        assert_eq!(n.shl(64).shr(64), n);
        assert_eq!(n.shr(10).to_u64(), Some(0));
        let big = BigUint::from_hex("ffffffffffffffff").unwrap();
        assert_eq!(big.shl(33).shr(33), big);
    }

    #[test]
    fn bit_accessors() {
        let n = BigUint::from_u64(0b1010_0001);
        assert!(n.bit(0));
        assert!(!n.bit(1));
        assert!(n.bit(5));
        assert!(n.bit(7));
        assert!(!n.bit(100));
        let mut m = BigUint::zero();
        m.set_bit(70);
        assert_eq!(m.bit_len(), 71);
        assert!(m.bit(70));
    }

    #[test]
    fn mod_exp_small_cases() {
        let base = BigUint::from_u64(4);
        let exp = BigUint::from_u64(13);
        let modulus = BigUint::from_u64(497);
        // 4^13 mod 497 = 445 (classic textbook example).
        assert_eq!(base.mod_exp(&exp, &modulus).to_u64(), Some(445));
        // Anything to the zero power is 1.
        assert_eq!(base.mod_exp(&BigUint::zero(), &modulus).to_u64(), Some(1));
        // Modulus one collapses everything to zero.
        assert_eq!(base.mod_exp(&exp, &BigUint::one()).to_u64(), Some(0));
    }

    #[test]
    fn mod_exp_matches_fermat_little_theorem() {
        // For prime p and a not divisible by p: a^(p-1) = 1 mod p.
        let p = BigUint::from_u64(1_000_000_007);
        let p_minus_1 = &p - &BigUint::one();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let a = BigUint::from_u64(rng.gen_range(2..1_000_000_006));
            assert_eq!(a.mod_exp(&p_minus_1, &p).to_u64(), Some(1));
        }
    }

    #[test]
    fn gcd_and_inverse() {
        let a = BigUint::from_u64(270);
        let b = BigUint::from_u64(192);
        assert_eq!(a.gcd(&b).to_u64(), Some(6));

        let e = BigUint::from_u64(17);
        let m = BigUint::from_u64(3120);
        let inv = e.mod_inverse(&m).expect("17 invertible mod 3120");
        assert_eq!(inv.to_u64(), Some(2753));
        assert_eq!((&e * &inv).rem_ref(&m).to_u64(), Some(1));

        // Non-invertible case.
        assert!(BigUint::from_u64(6)
            .mod_inverse(&BigUint::from_u64(9))
            .is_none());
    }

    #[test]
    fn mod_inverse_large_random() {
        let mut rng = StdRng::seed_from_u64(21);
        let m = BigUint::random_bits(&mut rng, 256);
        for _ in 0..10 {
            let a = BigUint::random_below(&mut rng, &m);
            if a.is_zero() || !a.gcd(&m).is_one() {
                continue;
            }
            let inv = a.mod_inverse(&m).expect("coprime value must invert");
            assert_eq!((&a * &inv).rem_ref(&m), BigUint::one());
        }
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let bound = BigUint::from_u64(1000);
        for _ in 0..100 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_bits_sets_top_bit() {
        let mut rng = StdRng::seed_from_u64(11);
        for bits in [1usize, 7, 32, 33, 64, 257] {
            let v = BigUint::random_bits(&mut rng, bits);
            assert_eq!(v.bit_len(), bits, "bits = {bits}");
        }
    }

    #[test]
    fn ordering_is_consistent() {
        let a = BigUint::from_u64(100);
        let b = BigUint::from_u64(200);
        let c = BigUint::from_hex("1ffffffffffffffff").unwrap();
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let n = BigUint::from_u64(255);
        assert_eq!(format!("{n}"), "0xff");
        assert_eq!(format!("{n:?}"), "BigUint(0xff)");
        assert_eq!(format!("{n:x}"), "ff");
    }
}
