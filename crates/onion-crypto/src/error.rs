//! Error types for the `onion-crypto` crate.

use std::error::Error;
use std::fmt;

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// An encoded input (hex, base32, padded message) was malformed.
    InvalidEncoding(String),
    /// Input length is not valid for the operation.
    InvalidLength {
        /// What the operation expected.
        expected: String,
        /// The length that was provided.
        actual: usize,
    },
    /// A signature or MAC failed verification.
    VerificationFailed,
    /// A message is too large for the RSA modulus in use.
    MessageTooLarge,
    /// RSA decryption found malformed padding.
    InvalidPadding,
    /// A modular inverse does not exist (key generation retry is expected).
    NotInvertible,
    /// Key generation failed after exhausting its retry budget.
    KeyGenerationFailed(String),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidEncoding(msg) => write!(f, "invalid encoding: {msg}"),
            CryptoError::InvalidLength { expected, actual } => {
                write!(f, "invalid length: expected {expected}, got {actual}")
            }
            CryptoError::VerificationFailed => write!(f, "signature or mac verification failed"),
            CryptoError::MessageTooLarge => write!(f, "message too large for modulus"),
            CryptoError::InvalidPadding => write!(f, "invalid padding"),
            CryptoError::NotInvertible => write!(f, "value is not invertible modulo the modulus"),
            CryptoError::KeyGenerationFailed(msg) => write!(f, "key generation failed: {msg}"),
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let variants = [
            CryptoError::InvalidEncoding("bad".into()),
            CryptoError::InvalidLength {
                expected: "32 bytes".into(),
                actual: 3,
            },
            CryptoError::VerificationFailed,
            CryptoError::MessageTooLarge,
            CryptoError::InvalidPadding,
            CryptoError::NotInvertible,
            CryptoError::KeyGenerationFailed("ran out of candidates".into()),
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert_eq!(s, s.to_lowercase(), "message should be lowercase: {s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
