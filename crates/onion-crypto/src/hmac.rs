//! HMAC (RFC 2104) over any [`Digest`] implementation.
//!
//! The OnionBot C&C channel authenticates maintenance and command messages
//! with per-link MACs on top of the shared symmetric key `K_B` (§IV-D).
//!
//! ```
//! use onion_crypto::hmac::hmac;
//! use onion_crypto::sha256::Sha256;
//!
//! let tag = hmac::<Sha256>(b"shared-key", b"change your peers");
//! assert_eq!(tag.len(), 32);
//! ```

use crate::digest::Digest;

/// Computes `HMAC_D(key, message)`.
pub fn hmac<D: Digest>(key: &[u8], message: &[u8]) -> Vec<u8> {
    let block_len = D::BLOCK_LEN;
    // Keys longer than the block size are hashed first, shorter keys are
    // right-padded with zeros.
    let mut key_block = if key.len() > block_len {
        D::digest(key)
    } else {
        key.to_vec()
    };
    key_block.resize(block_len, 0);

    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();

    let mut inner = D::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = D::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Verifies an HMAC tag in constant time with respect to tag contents.
pub fn hmac_verify<D: Digest>(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    let expected = hmac::<D>(key, message);
    if expected.len() != tag.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(tag.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use crate::sha1::Sha1;
    use crate::sha256::Sha256;

    #[test]
    fn rfc4231_test_case_1() {
        // RFC 4231 test case 1: key = 0x0b * 20, data = "Hi There".
        let key = [0x0bu8; 20];
        let tag = hmac::<Sha256>(&key, b"Hi There");
        assert_eq!(
            hex::encode(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        // key = "Jefe", data = "what do ya want for nothing?"
        let tag = hmac::<Sha256>(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc2202_sha1_test_case_2() {
        // HMAC-SHA1, key = "Jefe", data = "what do ya want for nothing?"
        let tag = hmac::<Sha1>(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&tag),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        let long_key = vec![0xaau8; 200];
        let tag = hmac::<Sha256>(&long_key, b"payload");
        let hashed_key = Sha256::digest(&long_key);
        assert_eq!(tag, hmac::<Sha256>(&hashed_key, b"payload"));
    }

    #[test]
    fn verify_accepts_valid_and_rejects_invalid() {
        let key = b"k_b-shared-with-botmaster";
        let msg = b"maintenance: rotate address";
        let tag = hmac::<Sha256>(key, msg);
        assert!(hmac_verify::<Sha256>(key, msg, &tag));
        let mut bad = tag.clone();
        bad[0] ^= 1;
        assert!(!hmac_verify::<Sha256>(key, msg, &bad));
        assert!(!hmac_verify::<Sha256>(key, b"other message", &tag));
        assert!(!hmac_verify::<Sha256>(key, msg, &tag[..16]));
    }

    #[test]
    fn different_keys_give_different_tags() {
        assert_ne!(hmac::<Sha256>(b"k1", b"m"), hmac::<Sha256>(b"k2", b"m"));
    }
}
