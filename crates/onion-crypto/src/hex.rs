//! Minimal hexadecimal encoding/decoding helpers used by tests, fingerprints
//! and experiment reports.
//!
//! ```
//! let bytes = onion_crypto::hex::decode("deadbeef").unwrap();
//! assert_eq!(onion_crypto::hex::encode(&bytes), "deadbeef");
//! ```

use crate::error::CryptoError;

/// Encodes bytes as lowercase hexadecimal.
pub fn encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a hexadecimal string (case insensitive, even length).
///
/// # Errors
/// Returns [`CryptoError::InvalidEncoding`] when the input has odd length or
/// contains non-hex characters.
pub fn decode(s: &str) -> Result<Vec<u8>, CryptoError> {
    if !s.len().is_multiple_of(2) {
        return Err(CryptoError::InvalidEncoding(
            "hex string must have even length".to_string(),
        ));
    }
    let chars: Vec<char> = s.chars().collect();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in chars.chunks(2) {
        let hi = pair[0].to_digit(16).ok_or_else(|| {
            CryptoError::InvalidEncoding(format!("invalid hex char {:?}", pair[0]))
        })?;
        let lo = pair[1].to_digit(16).ok_or_else(|| {
            CryptoError::InvalidEncoding(format!("invalid hex char {:?}", pair[1]))
        })?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0u8, 1, 2, 254, 255, 16, 32];
        assert_eq!(decode(&encode(&data)).unwrap(), data.to_vec());
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn rejects_odd_length_and_bad_chars() {
        assert!(decode("abc").is_err());
        assert!(decode("zz").is_err());
    }
}
