//! Uniform (indistinguishable-from-random) message encoding.
//!
//! The paper requires that relayed OnionBot messages leak nothing about their
//! source, destination or *nature* — "to achieve indistinguishability between
//! all messages, we use constructions such as Elligator" (§IV-D). We model
//! the property, not the elliptic-curve mechanism: every encoded message is a
//! fixed-size cell whose bytes are computationally indistinguishable from a
//! uniform random string to anyone without the link key. This preserves the
//! behaviour the mitigation analysis depends on (relaying bots and
//! authorities cannot filter by message type).
//!
//! Encoding layout (before encryption): `len(payload) as u16 || payload ||
//! zero padding` to [`UNIFORM_CELL_LEN`] bytes, then the whole cell is
//! encrypted with ChaCha20 under the link key and a random nonce; the nonce
//! is transmitted in the clear but is itself uniform.
//!
//! ```
//! use onion_crypto::elligator::UniformEncoder;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let encoder = UniformEncoder::new([5u8; 32]);
//! let cell = encoder.encode(b"broadcast: start mining", &mut rng).unwrap();
//! assert_eq!(cell.len(), onion_crypto::elligator::UNIFORM_CELL_LEN);
//! assert_eq!(encoder.decode(&cell).unwrap(), b"broadcast: start mining");
//! ```

use rand::Rng;

use crate::chacha20::ChaCha20;
use crate::error::CryptoError;

/// Size in bytes of every encoded cell (nonce prefix + encrypted body).
///
/// Sized to hold a signed command together with its rental token; on the
/// simulated wire one uniform cell is transported as four fixed-size 512-byte
/// Tor cells (see `tor_sim::cell`), so observers still only ever see
/// uniform-size units.
pub const UNIFORM_CELL_LEN: usize = 2048;

/// Nonce length prepended to each cell.
pub const NONCE_LEN: usize = 12;

/// Maximum payload that fits inside a single uniform cell.
pub const MAX_PAYLOAD_LEN: usize = UNIFORM_CELL_LEN - NONCE_LEN - 2;

/// Encodes and decodes fixed-size uniform-looking cells under a link key.
#[derive(Debug, Clone)]
pub struct UniformEncoder {
    key: [u8; 32],
}

impl UniformEncoder {
    /// Creates an encoder bound to a 32-byte link key.
    pub fn new(key: [u8; 32]) -> Self {
        UniformEncoder { key }
    }

    /// Encodes `payload` into a fixed-size cell that is indistinguishable
    /// from random bytes without the key.
    ///
    /// # Errors
    /// Returns [`CryptoError::MessageTooLarge`] if the payload exceeds
    /// [`MAX_PAYLOAD_LEN`].
    pub fn encode<R: Rng + ?Sized>(
        &self,
        payload: &[u8],
        rng: &mut R,
    ) -> Result<Vec<u8>, CryptoError> {
        if payload.len() > MAX_PAYLOAD_LEN {
            return Err(CryptoError::MessageTooLarge);
        }
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill(&mut nonce);
        let mut body = Vec::with_capacity(UNIFORM_CELL_LEN - NONCE_LEN);
        body.extend_from_slice(&(payload.len() as u16).to_be_bytes());
        body.extend_from_slice(payload);
        // Pad the body with random bytes (not zeros) so even with a broken
        // cipher the trailing bytes carry no structure.
        while body.len() < UNIFORM_CELL_LEN - NONCE_LEN {
            body.push(rng.gen());
        }
        let encrypted = ChaCha20::new(&self.key, &nonce, 0).apply(&body);
        let mut cell = Vec::with_capacity(UNIFORM_CELL_LEN);
        cell.extend_from_slice(&nonce);
        cell.extend_from_slice(&encrypted);
        Ok(cell)
    }

    /// Decodes a cell produced by [`Self::encode`] with the same key.
    ///
    /// # Errors
    /// Returns [`CryptoError::InvalidLength`] for cells of the wrong size and
    /// [`CryptoError::InvalidEncoding`] when the decrypted length field is
    /// inconsistent (wrong key or corrupted cell).
    pub fn decode(&self, cell: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if cell.len() != UNIFORM_CELL_LEN {
            return Err(CryptoError::InvalidLength {
                expected: format!("{UNIFORM_CELL_LEN} bytes"),
                actual: cell.len(),
            });
        }
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&cell[..NONCE_LEN]);
        let body = ChaCha20::new(&self.key, &nonce, 0).apply(&cell[NONCE_LEN..]);
        let len = u16::from_be_bytes([body[0], body[1]]) as usize;
        if len > MAX_PAYLOAD_LEN {
            return Err(CryptoError::InvalidEncoding(
                "decoded length exceeds cell capacity".to_string(),
            ));
        }
        Ok(body[2..2 + len].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_various_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let enc = UniformEncoder::new([0xaau8; 32]);
        for len in [0usize, 1, 10, 100, MAX_PAYLOAD_LEN] {
            let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let cell = enc.encode(&payload, &mut rng).unwrap();
            assert_eq!(cell.len(), UNIFORM_CELL_LEN);
            assert_eq!(enc.decode(&cell).unwrap(), payload, "len {len}");
        }
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let enc = UniformEncoder::new([1u8; 32]);
        let payload = vec![0u8; MAX_PAYLOAD_LEN + 1];
        assert_eq!(
            enc.encode(&payload, &mut rng),
            Err(CryptoError::MessageTooLarge)
        );
    }

    #[test]
    fn wrong_size_cell_rejected() {
        let enc = UniformEncoder::new([1u8; 32]);
        assert!(matches!(
            enc.decode(&[0u8; 100]),
            Err(CryptoError::InvalidLength { .. })
        ));
    }

    #[test]
    fn all_cells_have_identical_length_regardless_of_payload() {
        // The property the paper needs: a maintenance ping and an attack
        // command are the same size on the wire.
        let mut rng = StdRng::seed_from_u64(3);
        let enc = UniformEncoder::new([2u8; 32]);
        let a = enc.encode(b"ping", &mut rng).unwrap();
        let b = enc
            .encode(
                b"ddos example.com starting at 2015-01-14T00:00:00Z with 10k rps",
                &mut rng,
            )
            .unwrap();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn same_payload_encodes_differently_each_time() {
        let mut rng = StdRng::seed_from_u64(4);
        let enc = UniformEncoder::new([3u8; 32]);
        let a = enc.encode(b"ping", &mut rng).unwrap();
        let b = enc.encode(b"ping", &mut rng).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn cells_look_statistically_uniform() {
        // Encode many identical payloads and check the byte histogram of the
        // encrypted bodies is roughly flat (chi-squared well below a loose
        // threshold). This is a smoke test of the indistinguishability claim.
        let mut rng = StdRng::seed_from_u64(5);
        let enc = UniformEncoder::new([4u8; 32]);
        let mut counts = [0u64; 256];
        let samples = 200;
        for _ in 0..samples {
            let cell = enc.encode(b"identical payload", &mut rng).unwrap();
            for &b in &cell[NONCE_LEN..] {
                counts[b as usize] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        let expected = total as f64 / 256.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let diff = c as f64 - expected;
                diff * diff / expected
            })
            .sum();
        // 255 degrees of freedom; mean 255, std ~22.6. Anything under 400 is
        // comfortably consistent with uniformity for a smoke test.
        assert!(chi2 < 400.0, "chi-squared too high: {chi2}");
    }

    #[test]
    fn decoding_with_wrong_key_usually_fails_or_garbles() {
        let mut rng = StdRng::seed_from_u64(6);
        let enc = UniformEncoder::new([7u8; 32]);
        let other = UniformEncoder::new([8u8; 32]);
        let cell = enc.encode(b"secret payload", &mut rng).unwrap();
        match other.decode(&cell) {
            Err(_) => {}
            Ok(decoded) => assert_ne!(decoded, b"secret payload".to_vec()),
        }
    }
}
