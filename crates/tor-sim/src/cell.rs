//! Fixed-size Tor cells.
//!
//! "the client sends the data in fixed sized cells" (§III) and OnionBot
//! messages are "all of the same fixed size, as they are in Tor" (§IV-D).
//! The simulator moves every payload in 512-byte cells so that an observer
//! of the simulated wire sees only uniform-size, uniform-looking units.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::error::TorError;

/// Total size of a cell in bytes.
pub const CELL_LEN: usize = 512;

/// Header bytes: 4-byte circuit id + 1-byte command + 2-byte payload length.
pub const CELL_HEADER_LEN: usize = 7;

/// Maximum payload carried by a single cell.
pub const CELL_PAYLOAD_LEN: usize = CELL_LEN - CELL_HEADER_LEN;

/// Cell commands, mirroring the subset of Tor's relay commands the simulator
/// needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellCommand {
    /// Extend / create a circuit hop.
    Create,
    /// Data relayed along an established circuit.
    Relay,
    /// Introduction-point handshake message.
    Introduce,
    /// Rendezvous establishment.
    Rendezvous,
    /// Circuit teardown.
    Destroy,
}

impl CellCommand {
    fn to_byte(self) -> u8 {
        match self {
            CellCommand::Create => 1,
            CellCommand::Relay => 2,
            CellCommand::Introduce => 3,
            CellCommand::Rendezvous => 4,
            CellCommand::Destroy => 5,
        }
    }

    fn from_byte(b: u8) -> Result<Self, TorError> {
        match b {
            1 => Ok(CellCommand::Create),
            2 => Ok(CellCommand::Relay),
            3 => Ok(CellCommand::Introduce),
            4 => Ok(CellCommand::Rendezvous),
            5 => Ok(CellCommand::Destroy),
            other => Err(TorError::MalformedCell(format!(
                "unknown command byte {other}"
            ))),
        }
    }
}

/// A fixed-size cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Circuit the cell belongs to.
    pub circuit_id: u32,
    /// Command.
    pub command: CellCommand,
    /// Application payload (at most [`CELL_PAYLOAD_LEN`] bytes).
    pub payload: Bytes,
}

impl Cell {
    /// Creates a cell.
    ///
    /// # Errors
    /// Returns [`TorError::MalformedCell`] if the payload exceeds
    /// [`CELL_PAYLOAD_LEN`].
    pub fn new(
        circuit_id: u32,
        command: CellCommand,
        payload: impl Into<Bytes>,
    ) -> Result<Self, TorError> {
        let payload = payload.into();
        if payload.len() > CELL_PAYLOAD_LEN {
            return Err(TorError::MalformedCell(format!(
                "payload of {} bytes exceeds cell capacity {}",
                payload.len(),
                CELL_PAYLOAD_LEN
            )));
        }
        Ok(Cell {
            circuit_id,
            command,
            payload,
        })
    }

    /// Serializes to exactly [`CELL_LEN`] bytes (zero padded).
    pub fn to_wire(&self) -> [u8; CELL_LEN] {
        let mut out = [0u8; CELL_LEN];
        out[..4].copy_from_slice(&self.circuit_id.to_be_bytes());
        out[4] = self.command.to_byte();
        out[5..7].copy_from_slice(&(self.payload.len() as u16).to_be_bytes());
        out[CELL_HEADER_LEN..CELL_HEADER_LEN + self.payload.len()].copy_from_slice(&self.payload);
        out
    }

    /// Parses a wire-format cell.
    ///
    /// # Errors
    /// Returns [`TorError::MalformedCell`] for wrong-size buffers, unknown
    /// commands or inconsistent length fields.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, TorError> {
        if bytes.len() != CELL_LEN {
            return Err(TorError::MalformedCell(format!(
                "expected {CELL_LEN}-byte cell, got {}",
                bytes.len()
            )));
        }
        let circuit_id = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let command = CellCommand::from_byte(bytes[4])?;
        let len = u16::from_be_bytes([bytes[5], bytes[6]]) as usize;
        if len > CELL_PAYLOAD_LEN {
            return Err(TorError::MalformedCell(
                "length field exceeds payload capacity".to_string(),
            ));
        }
        Ok(Cell {
            circuit_id,
            command,
            payload: Bytes::copy_from_slice(&bytes[CELL_HEADER_LEN..CELL_HEADER_LEN + len]),
        })
    }

    /// Splits an arbitrary payload into as many relay cells as needed.
    pub fn fragment(circuit_id: u32, payload: &[u8]) -> Vec<Cell> {
        if payload.is_empty() {
            return vec![Cell::new(circuit_id, CellCommand::Relay, Bytes::new())
                .expect("empty payload always fits")];
        }
        payload
            .chunks(CELL_PAYLOAD_LEN)
            .map(|chunk| {
                Cell::new(
                    circuit_id,
                    CellCommand::Relay,
                    Bytes::copy_from_slice(chunk),
                )
                .expect("chunk size bounded by capacity")
            })
            .collect()
    }

    /// Reassembles the payload from a sequence of relay cells.
    pub fn reassemble(cells: &[Cell]) -> Vec<u8> {
        let mut out = Vec::new();
        for c in cells {
            out.extend_from_slice(&c.payload);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let cell = Cell::new(42, CellCommand::Relay, b"hello".to_vec()).unwrap();
        let wire = cell.to_wire();
        assert_eq!(wire.len(), CELL_LEN);
        let parsed = Cell::from_wire(&wire).unwrap();
        assert_eq!(parsed, cell);
    }

    #[test]
    fn all_commands_roundtrip() {
        for cmd in [
            CellCommand::Create,
            CellCommand::Relay,
            CellCommand::Introduce,
            CellCommand::Rendezvous,
            CellCommand::Destroy,
        ] {
            let cell = Cell::new(1, cmd, Bytes::new()).unwrap();
            assert_eq!(Cell::from_wire(&cell.to_wire()).unwrap().command, cmd);
        }
    }

    #[test]
    fn oversized_payload_rejected() {
        let payload = vec![0u8; CELL_PAYLOAD_LEN + 1];
        assert!(Cell::new(1, CellCommand::Relay, payload).is_err());
    }

    #[test]
    fn malformed_wire_rejected() {
        assert!(Cell::from_wire(&[0u8; 10]).is_err());
        let mut wire = [0u8; CELL_LEN];
        wire[4] = 99; // unknown command
        assert!(Cell::from_wire(&wire).is_err());
        let mut wire2 = Cell::new(1, CellCommand::Relay, Bytes::new())
            .unwrap()
            .to_wire();
        wire2[5] = 0xff;
        wire2[6] = 0xff; // impossible length
        assert!(Cell::from_wire(&wire2).is_err());
    }

    #[test]
    fn fragmentation_and_reassembly() {
        let payload: Vec<u8> = (0..2000u32).map(|i| (i % 256) as u8).collect();
        let cells = Cell::fragment(7, &payload);
        assert_eq!(cells.len(), payload.len().div_ceil(CELL_PAYLOAD_LEN));
        assert!(cells.iter().all(|c| c.circuit_id == 7));
        assert_eq!(Cell::reassemble(&cells), payload);
    }

    #[test]
    fn empty_payload_still_produces_one_cell() {
        let cells = Cell::fragment(1, &[]);
        assert_eq!(cells.len(), 1);
        assert!(Cell::reassemble(&cells).is_empty());
    }

    #[test]
    fn cells_on_the_wire_have_identical_size_regardless_of_content() {
        let a = Cell::new(1, CellCommand::Relay, b"x".to_vec()).unwrap();
        let b = Cell::new(2, CellCommand::Introduce, vec![9u8; 400]).unwrap();
        assert_eq!(a.to_wire().len(), b.to_wire().len());
    }
}
