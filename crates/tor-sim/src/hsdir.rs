//! Hidden-service descriptor IDs and responsible-HSDir selection.
//!
//! Implements the recipe from §III of the paper:
//!
//! ```text
//! descriptor-id  = H(Identifier || secret-id-part)
//! secret-id-part = H(time-period || descriptor-cookie || replica)
//! time-period    = (current-time + permanent-id-byte * 86400 / 256) / 86400
//! ```
//!
//! `H` is SHA-1, `Identifier` is the 80-bit truncated SHA-1 of the service's
//! public key, `descriptor-cookie` is an optional 128-bit authorization
//! field, and `replica` ∈ {0, 1} yields two descriptor IDs. Each descriptor
//! ID is stored on the 3 HSDirs whose fingerprints follow it on the ring, so
//! each service has 6 responsible HSDirs in total.

use onion_crypto::digest::Digest;
use onion_crypto::sha1::Sha1;
use serde::{Deserialize, Serialize};

use crate::relay::Fingerprint;

/// Number of replicas (descriptor ID sets) per hidden service.
pub const REPLICAS: u8 = 2;

/// Number of consecutive HSDirs responsible for each descriptor ID.
pub const HSDIRS_PER_REPLICA: usize = 3;

/// Seconds per descriptor time period (24 hours).
pub const PERIOD_SECONDS: u64 = 86_400;

/// A 20-byte descriptor ID, ordered on the same ring as relay fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DescriptorId(pub [u8; 20]);

impl DescriptorId {
    /// Hex rendering.
    pub fn to_hex(&self) -> String {
        onion_crypto::hex::encode(&self.0)
    }
}

/// Computes the time period index for a service.
///
/// `permanent_id_byte` is the first byte of the service identifier; it
/// staggers period rollovers across services so "the descriptors [do not
/// change] all at the same time".
pub fn time_period(current_time_secs: u64, permanent_id_byte: u8) -> u64 {
    (current_time_secs + u64::from(permanent_id_byte) * PERIOD_SECONDS / 256) / PERIOD_SECONDS
}

/// Computes `secret-id-part = H(time-period || descriptor-cookie || replica)`.
pub fn secret_id_part(period: u64, descriptor_cookie: Option<&[u8; 16]>, replica: u8) -> [u8; 20] {
    let mut hasher = Sha1::new();
    hasher.update(&period.to_be_bytes());
    if let Some(cookie) = descriptor_cookie {
        hasher.update(cookie);
    }
    hasher.update(&[replica]);
    let digest = hasher.finalize();
    let mut out = [0u8; 20];
    out.copy_from_slice(&digest);
    out
}

/// Computes `descriptor-id = H(identifier || secret-id-part)`.
pub fn descriptor_id(
    identifier: [u8; 10],
    current_time_secs: u64,
    descriptor_cookie: Option<&[u8; 16]>,
    replica: u8,
) -> DescriptorId {
    let period = time_period(current_time_secs, identifier[0]);
    let secret = secret_id_part(period, descriptor_cookie, replica);
    let mut hasher = Sha1::new();
    hasher.update(&identifier);
    hasher.update(&secret);
    let digest = hasher.finalize();
    let mut out = [0u8; 20];
    out.copy_from_slice(&digest);
    DescriptorId(out)
}

/// Computes both replicas' descriptor IDs for a service.
pub fn descriptor_ids(
    identifier: [u8; 10],
    current_time_secs: u64,
    descriptor_cookie: Option<&[u8; 16]>,
) -> [DescriptorId; REPLICAS as usize] {
    [
        descriptor_id(identifier, current_time_secs, descriptor_cookie, 0),
        descriptor_id(identifier, current_time_secs, descriptor_cookie, 1),
    ]
}

/// Selects the responsible HSDirs for a descriptor ID from a fingerprint
/// ring (ascending fingerprint order).
///
/// Following Figure 2 of the paper: if the descriptor ID falls between
/// `HSDir_{k-1}` and `HSDir_k`, it is stored on `HSDir_k`, `HSDir_{k+1}` and
/// `HSDir_{k+2}` (wrapping around the ring). Returns fewer relays when the
/// ring is smaller than [`HSDIRS_PER_REPLICA`].
pub fn responsible_hsdirs(descriptor: DescriptorId, ring: &[Fingerprint]) -> Vec<Fingerprint> {
    if ring.is_empty() {
        return Vec::new();
    }
    // First relay whose fingerprint is >= the descriptor id; wrap to 0.
    let start = ring.iter().position(|fp| fp.0 >= descriptor.0).unwrap_or(0);
    let take = HSDIRS_PER_REPLICA.min(ring.len());
    (0..take).map(|i| ring[(start + i) % ring.len()]).collect()
}

/// Convenience: the full responsible set (both replicas, deduplicated,
/// order preserved) for a service identifier at a point in time.
pub fn responsible_hsdirs_for_service(
    identifier: [u8; 10],
    current_time_secs: u64,
    descriptor_cookie: Option<&[u8; 16]>,
    ring: &[Fingerprint],
) -> Vec<Fingerprint> {
    let mut out = Vec::new();
    for id in descriptor_ids(identifier, current_time_secs, descriptor_cookie) {
        for fp in responsible_hsdirs(id, ring) {
            if !out.contains(&fp) {
                out.push(fp);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(n: usize) -> Vec<Fingerprint> {
        // Evenly spaced fingerprints 0x00.., 0x10.., 0x20.. for predictable
        // placement in tests.
        (0..n)
            .map(|i| {
                let mut fp = [0u8; 20];
                fp[0] = (i * (256 / n)) as u8;
                Fingerprint(fp)
            })
            .collect()
    }

    #[test]
    fn time_period_changes_every_day() {
        assert_eq!(time_period(0, 0), 0);
        assert_eq!(time_period(PERIOD_SECONDS - 1, 0), 0);
        assert_eq!(time_period(PERIOD_SECONDS, 0), 1);
        assert_eq!(time_period(10 * PERIOD_SECONDS, 0), 10);
    }

    #[test]
    fn permanent_id_byte_staggers_rollover() {
        // With id byte 128 the rollover happens half a day earlier.
        let half_day = PERIOD_SECONDS / 2;
        assert_eq!(time_period(half_day, 128), 1);
        assert_eq!(time_period(half_day, 0), 0);
    }

    #[test]
    fn replicas_produce_distinct_descriptor_ids() {
        let ids = descriptor_ids([9u8; 10], 1000, None);
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn descriptor_cookie_changes_ids() {
        let without = descriptor_id([3u8; 10], 500, None, 0);
        let with = descriptor_id([3u8; 10], 500, Some(&[7u8; 16]), 0);
        assert_ne!(without, with);
    }

    #[test]
    fn descriptor_id_is_stable_within_a_period_and_rotates_across_periods() {
        let id = [1u8; 10];
        let a = descriptor_id(id, 1_000, None, 0);
        let b = descriptor_id(id, 2_000, None, 0);
        assert_eq!(a, b, "same period, same id");
        let next_day = descriptor_id(id, 1_000 + PERIOD_SECONDS, None, 0);
        assert_ne!(a, next_day, "descriptor ids rotate every 24 hours");
    }

    #[test]
    fn responsible_hsdirs_are_the_next_three_on_the_ring() {
        let ring = ring_of(8); // fingerprints 0x00, 0x20, 0x40 ... 0xe0
        let mut desc = [0u8; 20];
        desc[0] = 0x55; // falls between 0x40 and 0x60
        let responsible = responsible_hsdirs(DescriptorId(desc), &ring);
        assert_eq!(responsible.len(), 3);
        assert_eq!(responsible[0].0[0], 0x60);
        assert_eq!(responsible[1].0[0], 0x80);
        assert_eq!(responsible[2].0[0], 0xa0);
    }

    #[test]
    fn responsible_hsdirs_wrap_around_the_ring() {
        let ring = ring_of(4); // 0x00, 0x40, 0x80, 0xc0
        let mut desc = [0u8; 20];
        desc[0] = 0xd0; // past the last fingerprint -> wraps to start
        let responsible = responsible_hsdirs(DescriptorId(desc), &ring);
        assert_eq!(responsible[0].0[0], 0x00);
        assert_eq!(responsible[1].0[0], 0x40);
        assert_eq!(responsible[2].0[0], 0x80);
    }

    #[test]
    fn small_rings_return_every_hsdir() {
        let ring = ring_of(2);
        let responsible = responsible_hsdirs(DescriptorId([0u8; 20]), &ring);
        assert_eq!(responsible.len(), 2);
        assert!(responsible_hsdirs(DescriptorId([0u8; 20]), &[]).is_empty());
    }

    #[test]
    fn service_has_up_to_six_responsible_hsdirs() {
        let ring = ring_of(64);
        let responsible = responsible_hsdirs_for_service([0xabu8; 10], 12_345, None, &ring);
        assert!(responsible.len() <= 6);
        assert!(responsible.len() >= 3);
        // All unique.
        let mut dedup = responsible.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), responsible.len());
    }
}
