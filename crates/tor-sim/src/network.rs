//! The simulated Tor network.
//!
//! [`TorNetwork`] ties the pieces together: a consensus of relays, HSDir
//! descriptor storage, hidden-service registration and message delivery by
//! `.onion` address. It deliberately models only the properties the
//! OnionBots design and its mitigations interact with:
//!
//! * a service is reachable **only** through its onion address — the network
//!   never exposes "IP addresses" of services to clients (the decoupling the
//!   paper exploits);
//! * reaching a service requires a currently published descriptor on a
//!   responsible HSDir plus a live registration (so HSDir takeovers and
//!   service takedowns both break reachability);
//! * every payload is moved in fixed-size cells and counted, so experiments
//!   can report traffic volumes without ever inspecting contents.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::cell::{Cell, CELL_PAYLOAD_LEN};
use crate::circuit::{Circuit, DEFAULT_CIRCUIT_HOPS};
use crate::consensus::Consensus;
use crate::descriptor::HiddenServiceDescriptor;
use crate::error::TorError;
use crate::hsdir::{descriptor_ids, responsible_hsdirs, DescriptorId};
use crate::onion::OnionAddress;
use crate::relay::Fingerprint;

/// Aggregate traffic and directory statistics, used by the experiment
/// harness for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Total fixed-size cells moved through the network.
    pub cells_relayed: u64,
    /// Descriptor publications accepted by HSDirs.
    pub descriptors_published: u64,
    /// Successful descriptor lookups.
    pub lookups_succeeded: u64,
    /// Failed descriptor lookups.
    pub lookups_failed: u64,
    /// Messages delivered end to end.
    pub messages_delivered: u64,
    /// Messages that could not be delivered.
    pub messages_failed: u64,
}

#[derive(Debug, Clone, Default)]
struct ServiceState {
    mailbox: VecDeque<Vec<u8>>,
    descriptor_cookie: Option<[u8; 16]>,
}

/// A lightweight descriptor announcement: proof that *some* descriptor for
/// the onion address is stored at an HSDir position, without carrying the
/// full signed descriptor. Overlay-scale simulations use this to keep
/// thousands of bots resolvable without generating an RSA service key per
/// bot per period; protocol-level tests use full
/// [`HiddenServiceDescriptor`]s instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Announcement {
    onion: OnionAddress,
    descriptor: DescriptorId,
}

/// The in-process simulated Tor network.
///
/// Directory and service state live in ordered maps (detlint rule D001):
/// today every access is a point lookup, but the moment someone iterates
/// one of these — say to sweep expired descriptors — hash order would
/// leak into delivery order and break seed replay, so the ordering is
/// pinned at the type.
#[derive(Debug)]
pub struct TorNetwork {
    consensus: Consensus,
    time_secs: u64,
    hsdir_storage: BTreeMap<Fingerprint, BTreeMap<DescriptorId, HiddenServiceDescriptor>>,
    announcements: BTreeMap<Fingerprint, BTreeSet<Announcement>>,
    services: BTreeMap<OnionAddress, ServiceState>,
    stats: NetworkStats,
    next_circuit_id: u32,
}

impl TorNetwork {
    /// Creates a network with `relay_count` steady-state relays.
    pub fn new<R: Rng + ?Sized>(relay_count: usize, rng: &mut R) -> Self {
        TorNetwork {
            consensus: Consensus::bootstrap(relay_count, rng),
            time_secs: 0,
            hsdir_storage: BTreeMap::new(),
            announcements: BTreeMap::new(),
            services: BTreeMap::new(),
            stats: NetworkStats::default(),
            next_circuit_id: 1,
        }
    }

    /// Current simulated time in seconds.
    pub fn time_secs(&self) -> u64 {
        self.time_secs
    }

    /// Advances simulated time; the consensus ages in whole hours.
    pub fn advance_time(&mut self, secs: u64) {
        let before_hours = self.time_secs / 3600;
        self.time_secs += secs;
        let after_hours = self.time_secs / 3600;
        if after_hours > before_hours {
            self.consensus.advance_hours(after_hours - before_hours);
        }
    }

    /// Read access to the consensus.
    pub fn consensus(&self) -> &Consensus {
        &self.consensus
    }

    /// Mutable access to the consensus (relay injection / takedown in
    /// mitigation experiments).
    pub fn consensus_mut(&mut self) -> &mut Consensus {
        &mut self.consensus
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Registers a hidden service, making it reachable once a descriptor is
    /// published. Re-registration resets the mailbox.
    pub fn register_hidden_service(
        &mut self,
        onion: OnionAddress,
        descriptor_cookie: Option<[u8; 16]>,
    ) {
        self.services.insert(
            onion,
            ServiceState {
                mailbox: VecDeque::new(),
                descriptor_cookie,
            },
        );
    }

    /// Deregisters (takes down) a hidden service. Returns `true` if it was
    /// registered.
    pub fn deregister_hidden_service(&mut self, onion: OnionAddress) -> bool {
        self.services.remove(&onion).is_some()
    }

    /// Returns `true` if a service is currently registered.
    pub fn is_registered(&self, onion: OnionAddress) -> bool {
        self.services.contains_key(&onion)
    }

    /// Number of currently registered hidden services.
    pub fn registered_service_count(&self) -> usize {
        self.services.len()
    }

    /// Publishes a descriptor to all currently responsible HSDirs.
    ///
    /// # Errors
    /// Returns [`TorError::InvalidDescriptor`] for unverifiable descriptors
    /// and [`TorError::CircuitFailed`] when the consensus has no HSDirs.
    pub fn publish_descriptor(
        &mut self,
        descriptor: &HiddenServiceDescriptor,
    ) -> Result<(), TorError> {
        if !descriptor.verify() {
            return Err(TorError::InvalidDescriptor(
                "descriptor signature does not verify".to_string(),
            ));
        }
        let onion = descriptor.onion_address()?;
        let cookie = self.services.get(&onion).and_then(|s| s.descriptor_cookie);
        let ring = self.consensus.hsdir_ring();
        if ring.is_empty() {
            return Err(TorError::CircuitFailed(
                "no hsdirs in consensus".to_string(),
            ));
        }
        for id in descriptor_ids(onion.identifier(), self.time_secs, cookie.as_ref()) {
            for hsdir in responsible_hsdirs(id, &ring) {
                self.hsdir_storage
                    .entry(hsdir)
                    .or_default()
                    .insert(id, descriptor.clone());
                self.stats.descriptors_published += 1;
            }
        }
        Ok(())
    }

    /// Looks a descriptor up the way a client would: compute the descriptor
    /// IDs from the onion address, ask the responsible HSDirs.
    ///
    /// # Errors
    /// Returns [`TorError::DescriptorNotFound`] when no responsible HSDir has
    /// a copy (e.g. never published, HSDirs replaced, or the adversary now
    /// controls the responsible positions and withholds it).
    pub fn lookup_descriptor(
        &mut self,
        onion: OnionAddress,
        descriptor_cookie: Option<&[u8; 16]>,
    ) -> Result<HiddenServiceDescriptor, TorError> {
        let ring = self.consensus.hsdir_ring();
        for id in descriptor_ids(onion.identifier(), self.time_secs, descriptor_cookie) {
            for hsdir in responsible_hsdirs(id, &ring) {
                if let Some(desc) = self
                    .hsdir_storage
                    .get(&hsdir)
                    .and_then(|store| store.get(&id))
                {
                    self.stats.lookups_succeeded += 1;
                    return Ok(desc.clone());
                }
            }
        }
        self.stats.lookups_failed += 1;
        Err(TorError::DescriptorNotFound(onion.to_string()))
    }

    /// Publishes a lightweight descriptor announcement for a registered
    /// service: the onion address becomes resolvable on its responsible
    /// HSDirs for the current period without constructing a full signed
    /// descriptor. This is the path the overlay-scale botnet simulation uses
    /// (one RSA service key per bot per period would dominate runtime).
    ///
    /// # Errors
    /// Returns [`TorError::ServiceUnreachable`] when the service is not
    /// registered and [`TorError::CircuitFailed`] when the consensus has no
    /// HSDirs.
    pub fn announce_service(&mut self, onion: OnionAddress) -> Result<(), TorError> {
        let cookie = match self.services.get(&onion) {
            Some(state) => state.descriptor_cookie,
            None => return Err(TorError::ServiceUnreachable(onion.to_string())),
        };
        let ring = self.consensus.hsdir_ring();
        if ring.is_empty() {
            return Err(TorError::CircuitFailed(
                "no hsdirs in consensus".to_string(),
            ));
        }
        for id in descriptor_ids(onion.identifier(), self.time_secs, cookie.as_ref()) {
            for hsdir in responsible_hsdirs(id, &ring) {
                self.announcements
                    .entry(hsdir)
                    .or_default()
                    .insert(Announcement {
                        onion,
                        descriptor: id,
                    });
                self.stats.descriptors_published += 1;
            }
        }
        Ok(())
    }

    /// Returns `true` when a client knowing the onion address (and cookie)
    /// can currently resolve the service: either a full descriptor or an
    /// announcement is stored on a responsible HSDir.
    pub fn is_resolvable(
        &mut self,
        onion: OnionAddress,
        descriptor_cookie: Option<&[u8; 16]>,
    ) -> bool {
        let ring = self.consensus.hsdir_ring();
        for id in descriptor_ids(onion.identifier(), self.time_secs, descriptor_cookie) {
            for hsdir in responsible_hsdirs(id, &ring) {
                let has_descriptor = self
                    .hsdir_storage
                    .get(&hsdir)
                    .is_some_and(|store| store.contains_key(&id));
                let has_announcement = self.announcements.get(&hsdir).is_some_and(|set| {
                    set.contains(&Announcement {
                        onion,
                        descriptor: id,
                    })
                });
                if has_descriptor || has_announcement {
                    self.stats.lookups_succeeded += 1;
                    return true;
                }
            }
        }
        self.stats.lookups_failed += 1;
        false
    }

    /// Removes every descriptor and announcement stored on a given HSDir
    /// (models an HSDir takeover / denial attack from §VI-A).
    pub fn wipe_hsdir(&mut self, hsdir: Fingerprint) -> usize {
        let descriptors = self.hsdir_storage.remove(&hsdir).map_or(0, |m| m.len());
        let announcements = self.announcements.remove(&hsdir).map_or(0, |s| s.len());
        descriptors + announcements
    }

    /// Builds a fresh circuit through `hops` random relays.
    ///
    /// # Errors
    /// Returns [`TorError::CircuitFailed`] when the consensus has fewer
    /// relays than requested hops.
    pub fn build_circuit<R: Rng + ?Sized>(
        &mut self,
        hops: usize,
        rng: &mut R,
    ) -> Result<Circuit, TorError> {
        let candidates = self.consensus.circuit_candidates();
        if candidates.len() < hops {
            return Err(TorError::CircuitFailed(format!(
                "need {hops} relays, consensus has {}",
                candidates.len()
            )));
        }
        let chosen: Vec<Fingerprint> = candidates.choose_multiple(rng, hops).copied().collect();
        let id = self.next_circuit_id;
        self.next_circuit_id = self.next_circuit_id.wrapping_add(1);
        Circuit::build(id, chosen, rng)
    }

    /// Sends an opaque payload to a hidden service: performs the descriptor
    /// lookup, checks the service is up, accounts for the relayed cells and
    /// enqueues the payload in the service's mailbox.
    ///
    /// # Errors
    /// Propagates lookup failures and returns
    /// [`TorError::ServiceUnreachable`] for services that are not registered
    /// (taken down) even though a stale descriptor may still be cached.
    pub fn send_to_onion(
        &mut self,
        onion: OnionAddress,
        descriptor_cookie: Option<&[u8; 16]>,
        payload: Vec<u8>,
    ) -> Result<(), TorError> {
        if !self.is_resolvable(onion, descriptor_cookie) {
            self.stats.messages_failed += 1;
            return Err(TorError::DescriptorNotFound(onion.to_string()));
        }
        // Client rendezvous circuit + service circuit: count the cells on
        // both, matching Tor's 6-hop end-to-end path.
        let cells = payload.len().div_ceil(CELL_PAYLOAD_LEN).max(1) as u64;
        self.stats.cells_relayed += cells * (2 * DEFAULT_CIRCUIT_HOPS as u64);
        match self.services.get_mut(&onion) {
            Some(state) => {
                state.mailbox.push_back(payload);
                self.stats.messages_delivered += 1;
                Ok(())
            }
            None => {
                self.stats.messages_failed += 1;
                Err(TorError::ServiceUnreachable(onion.to_string()))
            }
        }
    }

    /// Drains all pending messages for a hidden service (what the service's
    /// onion proxy would deliver to the application).
    pub fn drain_mailbox(&mut self, onion: OnionAddress) -> Vec<Vec<u8>> {
        self.services
            .get_mut(&onion)
            .map(|s| s.mailbox.drain(..).collect())
            .unwrap_or_default()
    }

    /// Number of messages currently queued for a service.
    pub fn mailbox_len(&self, onion: OnionAddress) -> usize {
        self.services.get(&onion).map_or(0, |s| s.mailbox.len())
    }

    /// Helper used by tests and cells accounting: how many cells a payload
    /// of `len` bytes occupies.
    pub fn cells_for_payload(len: usize) -> usize {
        len.div_ceil(CELL_PAYLOAD_LEN).max(1)
    }

    /// Fragments and reassembles a payload through a circuit, returning the
    /// number of cells used. Exercises the cell/circuit layers together; the
    /// overlay uses it to model in-circuit traffic without buffering cells.
    pub fn relay_payload<R: Rng + ?Sized>(
        &mut self,
        payload: &[u8],
        rng: &mut R,
    ) -> Result<usize, TorError> {
        let circuit = self.build_circuit(DEFAULT_CIRCUIT_HOPS, rng)?;
        let cells = Cell::fragment(circuit.id(), payload);
        let delivered = circuit.relay_through(payload);
        debug_assert_eq!(delivered, payload);
        self.stats.cells_relayed += cells.len() as u64 * circuit.len() as u64;
        Ok(cells.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_crypto::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        network: TorNetwork,
        service_key: RsaKeyPair,
        onion: OnionAddress,
        rng: StdRng,
    }

    fn fixture(seed: u64) -> Fixture {
        let mut rng = StdRng::seed_from_u64(seed);
        let network = TorNetwork::new(40, &mut rng);
        let service_key = RsaKeyPair::generate(512, &mut rng);
        let onion = OnionAddress::from_public_key(service_key.public());
        Fixture {
            network,
            service_key,
            onion,
            rng,
        }
    }

    fn publish(f: &mut Fixture) {
        let intro: Vec<Fingerprint> = f.network.consensus().hsdir_ring()[..3].to_vec();
        let desc = HiddenServiceDescriptor::create(&f.service_key, intro, f.network.time_secs());
        f.network.publish_descriptor(&desc).unwrap();
    }

    #[test]
    fn full_hidden_service_message_flow() {
        let mut f = fixture(1);
        f.network.register_hidden_service(f.onion, None);
        publish(&mut f);
        f.network
            .send_to_onion(f.onion, None, b"hello bot".to_vec())
            .unwrap();
        assert_eq!(f.network.mailbox_len(f.onion), 1);
        let delivered = f.network.drain_mailbox(f.onion);
        assert_eq!(delivered, vec![b"hello bot".to_vec()]);
        assert_eq!(f.network.mailbox_len(f.onion), 0);
        let stats = f.network.stats();
        assert_eq!(stats.messages_delivered, 1);
        assert!(stats.cells_relayed >= 6);
        assert!(stats.descriptors_published >= 3);
    }

    #[test]
    fn sending_without_descriptor_fails() {
        let mut f = fixture(2);
        f.network.register_hidden_service(f.onion, None);
        let err = f
            .network
            .send_to_onion(f.onion, None, b"x".to_vec())
            .unwrap_err();
        assert!(matches!(err, TorError::DescriptorNotFound(_)));
        assert_eq!(f.network.stats().messages_failed, 1);
    }

    #[test]
    fn taken_down_service_is_unreachable_despite_descriptor() {
        let mut f = fixture(3);
        f.network.register_hidden_service(f.onion, None);
        publish(&mut f);
        assert!(f.network.deregister_hidden_service(f.onion));
        let err = f
            .network
            .send_to_onion(f.onion, None, b"x".to_vec())
            .unwrap_err();
        assert!(matches!(err, TorError::ServiceUnreachable(_)));
    }

    #[test]
    fn wiping_responsible_hsdirs_denies_lookup() {
        let mut f = fixture(4);
        f.network.register_hidden_service(f.onion, None);
        publish(&mut f);
        assert!(f.network.lookup_descriptor(f.onion, None).is_ok());
        // Wipe every HSDir (an over-approximation of targeting the 6
        // responsible ones).
        for fp in f.network.consensus().hsdir_ring() {
            f.network.wipe_hsdir(fp);
        }
        assert!(f.network.lookup_descriptor(f.onion, None).is_err());
    }

    #[test]
    fn descriptor_cookie_gates_lookup() {
        let mut f = fixture(5);
        let cookie = [9u8; 16];
        f.network.register_hidden_service(f.onion, Some(cookie));
        publish(&mut f);
        assert!(f.network.lookup_descriptor(f.onion, Some(&cookie)).is_ok());
        assert!(
            f.network.lookup_descriptor(f.onion, None).is_err(),
            "clients without the cookie compute different descriptor ids"
        );
    }

    #[test]
    fn invalid_descriptor_rejected_at_publication() {
        let mut f = fixture(6);
        let intro: Vec<Fingerprint> = f.network.consensus().hsdir_ring()[..2].to_vec();
        let mut desc =
            HiddenServiceDescriptor::create(&f.service_key, intro, f.network.time_secs());
        desc.published_at_secs += 1; // break the signature
        assert!(matches!(
            f.network.publish_descriptor(&desc),
            Err(TorError::InvalidDescriptor(_))
        ));
    }

    #[test]
    fn descriptor_expires_with_the_time_period() {
        let mut f = fixture(7);
        f.network.register_hidden_service(f.onion, None);
        publish(&mut f);
        assert!(f.network.lookup_descriptor(f.onion, None).is_ok());
        // A day later the descriptor IDs rotate and the stale copies no
        // longer match -> service must republish.
        f.network.advance_time(86_400 + 3600);
        assert!(f.network.lookup_descriptor(f.onion, None).is_err());
        publish(&mut f);
        assert!(f.network.lookup_descriptor(f.onion, None).is_ok());
    }

    #[test]
    fn circuits_respect_consensus_size() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut small = TorNetwork::new(2, &mut rng);
        assert!(small.build_circuit(3, &mut rng).is_err());
        let circuit = small.build_circuit(2, &mut rng).unwrap();
        assert_eq!(circuit.len(), 2);
    }

    #[test]
    fn relay_payload_counts_cells() {
        let mut f = fixture(9);
        let payload = vec![7u8; 1200];
        let cells = f.network.relay_payload(&payload, &mut f.rng).unwrap();
        assert_eq!(cells, TorNetwork::cells_for_payload(1200));
        assert!(f.network.stats().cells_relayed >= cells as u64 * 3);
    }

    #[test]
    fn advancing_time_ages_the_consensus() {
        let mut f = fixture(10);
        let before = f.network.consensus().valid_after_hour();
        f.network.advance_time(7200);
        assert_eq!(f.network.consensus().valid_after_hour(), before + 2);
    }
}
