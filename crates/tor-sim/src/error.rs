//! Error types for the simulated Tor substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the simulated Tor network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TorError {
    /// A `.onion` address string could not be parsed.
    InvalidOnionAddress(String),
    /// No descriptor for the requested hidden service is currently published
    /// on any responsible HSDir.
    DescriptorNotFound(String),
    /// The hidden service is not reachable (not registered or taken down).
    ServiceUnreachable(String),
    /// A relay referenced by fingerprint is not in the current consensus.
    UnknownRelay(String),
    /// A circuit could not be built (not enough relays, or a hop rejected).
    CircuitFailed(String),
    /// A descriptor failed signature validation.
    InvalidDescriptor(String),
    /// A cell was malformed (wrong size or inconsistent framing).
    MalformedCell(String),
}

impl fmt::Display for TorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TorError::InvalidOnionAddress(msg) => write!(f, "invalid onion address: {msg}"),
            TorError::DescriptorNotFound(msg) => write!(f, "descriptor not found: {msg}"),
            TorError::ServiceUnreachable(msg) => write!(f, "hidden service unreachable: {msg}"),
            TorError::UnknownRelay(msg) => write!(f, "unknown relay: {msg}"),
            TorError::CircuitFailed(msg) => write!(f, "circuit failed: {msg}"),
            TorError::InvalidDescriptor(msg) => write!(f, "invalid descriptor: {msg}"),
            TorError::MalformedCell(msg) => write!(f, "malformed cell: {msg}"),
        }
    }
}

impl Error for TorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TorError::DescriptorNotFound("abcdef.onion".to_string());
        assert!(e.to_string().contains("abcdef.onion"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TorError>();
    }
}
