//! Simulated Tor relays (Onion Routers).
//!
//! A relay is identified by the 20-byte fingerprint of its identity key. The
//! paper's HSDir mitigation discussion (§VI-A) hinges on two properties that
//! are modelled here: the HSDir flag is only granted to relays that have been
//! up for at least 25 hours, and an adversary who can choose its identity key
//! can choose its position on the fingerprint ring.

use onion_crypto::hex;
use onion_crypto::rsa::RsaPublicKey;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Minimum uptime (in hours) before a relay receives the HSDir flag,
/// as described in §III of the paper.
pub const HSDIR_MIN_UPTIME_HOURS: u64 = 25;

/// A 20-byte relay identity fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Fingerprint(pub [u8; 20]);

impl Fingerprint {
    /// Generates a random fingerprint, modelling a relay that generated a
    /// fresh identity key (the fingerprint of a fresh RSA key is
    /// computationally indistinguishable from uniform).
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; 20];
        rng.fill(&mut bytes);
        Fingerprint(bytes)
    }

    /// Derives the fingerprint from an actual RSA identity key.
    pub fn from_public_key(key: &RsaPublicKey) -> Self {
        Fingerprint(key.fingerprint())
    }

    /// Hex rendering (lowercase, 40 characters).
    pub fn to_hex(&self) -> String {
        hex::encode(&self.0)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", &self.to_hex()[..16])
    }
}

/// Flags a relay can carry in the consensus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RelayFlags {
    /// Eligible to store hidden-service descriptors.
    pub hsdir: bool,
    /// Suitable as an entry guard.
    pub guard: bool,
    /// Allows exit traffic.
    pub exit: bool,
    /// Long-running and stable.
    pub stable: bool,
}

/// A simulated Tor relay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relay {
    fingerprint: Fingerprint,
    nickname: String,
    bandwidth_kbps: u64,
    uptime_hours: u64,
    flags: RelayFlags,
}

impl Relay {
    /// Creates a relay with a random identity.
    pub fn new<R: Rng + ?Sized>(
        nickname: impl Into<String>,
        bandwidth_kbps: u64,
        rng: &mut R,
    ) -> Self {
        Relay {
            fingerprint: Fingerprint::random(rng),
            nickname: nickname.into(),
            bandwidth_kbps,
            uptime_hours: 0,
            flags: RelayFlags::default(),
        }
    }

    /// Creates a relay with a chosen fingerprint — the primitive behind the
    /// HSDir positioning attack, where an adversary brute-forces identity
    /// keys until the fingerprint lands at a target ring position.
    pub fn with_fingerprint(
        fingerprint: Fingerprint,
        nickname: impl Into<String>,
        bandwidth_kbps: u64,
    ) -> Self {
        Relay {
            fingerprint,
            nickname: nickname.into(),
            bandwidth_kbps,
            uptime_hours: 0,
            flags: RelayFlags::default(),
        }
    }

    /// The relay's fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The relay's nickname.
    pub fn nickname(&self) -> &str {
        &self.nickname
    }

    /// Advertised bandwidth in kilobits per second.
    pub fn bandwidth_kbps(&self) -> u64 {
        self.bandwidth_kbps
    }

    /// Hours the relay has been continuously up.
    pub fn uptime_hours(&self) -> u64 {
        self.uptime_hours
    }

    /// Current consensus flags.
    pub fn flags(&self) -> RelayFlags {
        self.flags
    }

    /// Advances the relay's uptime and refreshes the flags the directory
    /// authorities would assign: HSDir after 25 hours, Guard/Stable after a
    /// week of uptime with adequate bandwidth.
    pub fn tick_hours(&mut self, hours: u64) {
        self.uptime_hours += hours;
        self.refresh_flags();
    }

    /// Marks the relay as restarted: uptime and uptime-derived flags reset.
    pub fn restart(&mut self) {
        self.uptime_hours = 0;
        self.refresh_flags();
    }

    /// Sets the exit flag (policy decision, not uptime derived).
    pub fn set_exit(&mut self, exit: bool) {
        self.flags.exit = exit;
    }

    fn refresh_flags(&mut self) {
        self.flags.hsdir = self.uptime_hours >= HSDIR_MIN_UPTIME_HOURS;
        self.flags.stable = self.uptime_hours >= 24 * 7;
        self.flags.guard = self.flags.stable && self.bandwidth_kbps >= 2000;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_relays_have_no_hsdir_flag() {
        let mut rng = StdRng::seed_from_u64(1);
        let relay = Relay::new("relay0", 5000, &mut rng);
        assert!(!relay.flags().hsdir);
        assert_eq!(relay.uptime_hours(), 0);
    }

    #[test]
    fn hsdir_flag_granted_after_25_hours() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut relay = Relay::new("relay1", 5000, &mut rng);
        relay.tick_hours(24);
        assert!(!relay.flags().hsdir, "24 hours is not enough");
        relay.tick_hours(1);
        assert!(relay.flags().hsdir, "25 hours grants the flag");
    }

    #[test]
    fn restart_revokes_uptime_flags() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut relay = Relay::new("relay2", 5000, &mut rng);
        relay.tick_hours(200);
        assert!(relay.flags().hsdir);
        assert!(relay.flags().guard);
        relay.restart();
        assert!(!relay.flags().hsdir);
        assert!(!relay.flags().guard);
    }

    #[test]
    fn guard_requires_bandwidth_and_stability() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut slow = Relay::new("slow", 100, &mut rng);
        slow.tick_hours(24 * 8);
        assert!(slow.flags().stable);
        assert!(!slow.flags().guard);
        let mut fast = Relay::new("fast", 10_000, &mut rng);
        fast.tick_hours(24 * 8);
        assert!(fast.flags().guard);
    }

    #[test]
    fn fingerprints_are_distinct_and_hex_renderable() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Fingerprint::random(&mut rng);
        let b = Fingerprint::random(&mut rng);
        assert_ne!(a, b);
        assert_eq!(a.to_hex().len(), 40);
        assert_eq!(format!("{a}").len(), 16);
    }

    #[test]
    fn chosen_fingerprint_is_preserved() {
        let fp = Fingerprint([7u8; 20]);
        let relay = Relay::with_fingerprint(fp, "sybil", 1000);
        assert_eq!(relay.fingerprint(), fp);
    }
}
