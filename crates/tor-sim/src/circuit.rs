//! Circuits and layered (onion) encryption.
//!
//! "A client builds a circuit with the relays by negotiating symmetric keys
//! with them. After building the circuit, the client sends the data in fixed
//! sized cells and encrypts them in multiple layers, using the previously
//! negotiated keys" (§III). The simulator models exactly that: a circuit is
//! an ordered list of relay hops, each with a symmetric key; the originator
//! wraps a payload in one ChaCha20 layer per hop and every hop peels exactly
//! one layer, so no relay sees both the plaintext and the endpoints.

use onion_crypto::chacha20::ChaCha20;
use rand::Rng;

use crate::error::TorError;
use crate::relay::Fingerprint;

/// Default number of hops in a simulated circuit (matching Tor's 3).
pub const DEFAULT_CIRCUIT_HOPS: usize = 3;

/// A built circuit: hops and the symmetric key negotiated with each hop.
#[derive(Debug, Clone)]
pub struct Circuit {
    id: u32,
    hops: Vec<Fingerprint>,
    hop_keys: Vec<[u8; 32]>,
    nonce: [u8; 12],
}

impl Circuit {
    /// Builds a circuit through the given hops, "negotiating" a fresh random
    /// key with each (the simulator does not model the TAP/ntor handshake —
    /// only its outcome, a per-hop shared key).
    ///
    /// # Errors
    /// Returns [`TorError::CircuitFailed`] if no hops are provided.
    pub fn build<R: Rng + ?Sized>(
        id: u32,
        hops: Vec<Fingerprint>,
        rng: &mut R,
    ) -> Result<Self, TorError> {
        if hops.is_empty() {
            return Err(TorError::CircuitFailed(
                "a circuit needs at least one hop".to_string(),
            ));
        }
        let hop_keys = hops
            .iter()
            .map(|_| {
                let mut key = [0u8; 32];
                rng.fill(&mut key);
                key
            })
            .collect();
        let mut nonce = [0u8; 12];
        rng.fill(&mut nonce);
        Ok(Circuit {
            id,
            hops,
            hop_keys,
            nonce,
        })
    }

    /// The circuit identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The relay fingerprints along the circuit, from the first (guard) hop
    /// to the last.
    pub fn hops(&self) -> &[Fingerprint] {
        &self.hops
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Returns `true` if the circuit has no hops (never true for a built
    /// circuit; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Applies all encryption layers the originator would apply: the payload
    /// ends up wrapped so that hop 0 peels the outermost layer.
    pub fn onion_encrypt(&self, payload: &[u8]) -> Vec<u8> {
        let mut data = payload.to_vec();
        // The last hop's layer is applied first so it ends up innermost.
        for key in self.hop_keys.iter().rev() {
            data = ChaCha20::new(key, &self.nonce, 0).apply(&data);
        }
        data
    }

    /// Peels the single layer belonging to hop `hop_index`.
    ///
    /// # Errors
    /// Returns [`TorError::CircuitFailed`] for an out-of-range hop index.
    pub fn peel_layer(&self, hop_index: usize, data: &[u8]) -> Result<Vec<u8>, TorError> {
        let key = self.hop_keys.get(hop_index).ok_or_else(|| {
            TorError::CircuitFailed(format!("hop index {hop_index} out of range"))
        })?;
        Ok(ChaCha20::new(key, &self.nonce, 0).apply(data))
    }

    /// Simulates the full relay pipeline: the originator onion-encrypts and
    /// every hop peels one layer in order; the result is the plaintext seen
    /// by the final hop.
    pub fn relay_through(&self, payload: &[u8]) -> Vec<u8> {
        let mut data = self.onion_encrypt(payload);
        for hop_index in 0..self.hops.len() {
            data = self
                .peel_layer(hop_index, &data)
                .expect("hop indices generated in range");
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hops(n: usize, rng: &mut StdRng) -> Vec<Fingerprint> {
        (0..n).map(|_| Fingerprint::random(rng)).collect()
    }

    #[test]
    fn build_rejects_empty_hop_list() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(Circuit::build(1, Vec::new(), &mut rng).is_err());
    }

    #[test]
    fn full_relay_recovers_plaintext() {
        let mut rng = StdRng::seed_from_u64(2);
        for hop_count in 1..=5 {
            let circuit = Circuit::build(1, hops(hop_count, &mut rng), &mut rng).unwrap();
            let payload = b"rendezvous with me at relay X";
            assert_eq!(
                circuit.relay_through(payload),
                payload.to_vec(),
                "hops {hop_count}"
            );
        }
    }

    #[test]
    fn intermediate_hops_do_not_see_plaintext() {
        let mut rng = StdRng::seed_from_u64(3);
        let circuit = Circuit::build(9, hops(3, &mut rng), &mut rng).unwrap();
        let payload = b"secret command".to_vec();
        let mut data = circuit.onion_encrypt(&payload);
        // After peeling only the first layer (what the guard sees) the data
        // must still differ from the plaintext.
        data = circuit.peel_layer(0, &data).unwrap();
        assert_ne!(data, payload);
        data = circuit.peel_layer(1, &data).unwrap();
        assert_ne!(data, payload);
        data = circuit.peel_layer(2, &data).unwrap();
        assert_eq!(data, payload);
    }

    #[test]
    fn peeling_out_of_range_hop_fails() {
        let mut rng = StdRng::seed_from_u64(4);
        let circuit = Circuit::build(1, hops(2, &mut rng), &mut rng).unwrap();
        assert!(circuit.peel_layer(2, b"data").is_err());
    }

    #[test]
    fn distinct_circuits_produce_distinct_ciphertexts() {
        let mut rng = StdRng::seed_from_u64(5);
        let shared_hops = hops(3, &mut rng);
        let c1 = Circuit::build(1, shared_hops.clone(), &mut rng).unwrap();
        let c2 = Circuit::build(2, shared_hops, &mut rng).unwrap();
        assert_ne!(
            c1.onion_encrypt(b"same payload"),
            c2.onion_encrypt(b"same payload")
        );
    }

    #[test]
    fn accessors_report_structure() {
        let mut rng = StdRng::seed_from_u64(6);
        let hop_list = hops(3, &mut rng);
        let circuit = Circuit::build(77, hop_list.clone(), &mut rng).unwrap();
        assert_eq!(circuit.id(), 77);
        assert_eq!(circuit.hops(), hop_list.as_slice());
        assert_eq!(circuit.len(), 3);
        assert!(!circuit.is_empty());
    }
}
