//! `.onion` addresses.
//!
//! A (v2-style) onion address is the base32 encoding of the 80-bit
//! identifier — the first 10 bytes of the SHA-1 digest of the hidden
//! service's RSA public key (§III of the paper).
//!
//! ```
//! use tor_sim::onion::OnionAddress;
//!
//! let addr = OnionAddress::from_identifier([0xab; 10]);
//! assert_eq!(addr.to_string().len(), "xxxxxxxxxxxxxxxx.onion".len());
//! assert_eq!(OnionAddress::parse(&addr.to_string()).unwrap(), addr);
//! ```

use std::fmt;

use onion_crypto::base32;
use onion_crypto::rsa::RsaPublicKey;
use serde::{Deserialize, Serialize};

use crate::error::TorError;

/// An 80-bit hidden-service identifier rendered as a 16-character
/// base32 label plus the `.onion` suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OnionAddress {
    identifier: [u8; 10],
}

impl OnionAddress {
    /// Builds an address directly from its 10-byte identifier.
    pub fn from_identifier(identifier: [u8; 10]) -> Self {
        OnionAddress { identifier }
    }

    /// Derives the address of a hidden service from its RSA public key,
    /// exactly as Tor does: base32(first 10 bytes of SHA-1(public key)).
    pub fn from_public_key(key: &RsaPublicKey) -> Self {
        OnionAddress {
            identifier: key.identifier(),
        }
    }

    /// The raw 10-byte identifier.
    pub fn identifier(&self) -> [u8; 10] {
        self.identifier
    }

    /// The 16-character base32 label (without the `.onion` suffix).
    pub fn label(&self) -> String {
        base32::encode(&self.identifier)
    }

    /// Parses a `label.onion` string (the suffix is optional).
    ///
    /// # Errors
    /// Returns [`TorError::InvalidOnionAddress`] when the label is not
    /// 16 base32 characters.
    pub fn parse(s: &str) -> Result<Self, TorError> {
        let label = s.strip_suffix(".onion").unwrap_or(s);
        let bytes = base32::decode(label)
            .map_err(|e| TorError::InvalidOnionAddress(format!("{label}: {e}")))?;
        if bytes.len() != 10 {
            return Err(TorError::InvalidOnionAddress(format!(
                "expected 10-byte identifier, got {} bytes",
                bytes.len()
            )));
        }
        let mut identifier = [0u8; 10];
        identifier.copy_from_slice(&bytes);
        Ok(OnionAddress { identifier })
    }
}

impl fmt::Display for OnionAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.onion", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_crypto::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn label_is_sixteen_characters() {
        let addr = OnionAddress::from_identifier([1; 10]);
        assert_eq!(addr.label().len(), 16);
        assert!(addr.to_string().ends_with(".onion"));
    }

    #[test]
    fn parse_roundtrip_with_and_without_suffix() {
        let addr = OnionAddress::from_identifier([0xfe; 10]);
        assert_eq!(OnionAddress::parse(&addr.to_string()).unwrap(), addr);
        assert_eq!(OnionAddress::parse(&addr.label()).unwrap(), addr);
    }

    #[test]
    fn parse_rejects_malformed_labels() {
        assert!(OnionAddress::parse("tooshort.onion").is_err());
        assert!(OnionAddress::parse("0000000000000000.onion").is_err());
        assert!(OnionAddress::parse("").is_err());
    }

    #[test]
    fn address_follows_public_key() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let addr = OnionAddress::from_public_key(kp.public());
        assert_eq!(addr.identifier(), kp.public().identifier());
        let kp2 = RsaKeyPair::generate(512, &mut rng);
        assert_ne!(addr, OnionAddress::from_public_key(kp2.public()));
    }

    #[test]
    fn ordering_is_stable_for_use_as_map_keys() {
        let a = OnionAddress::from_identifier([0; 10]);
        let b = OnionAddress::from_identifier([1; 10]);
        assert!(a < b);
    }
}
