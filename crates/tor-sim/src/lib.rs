//! # tor-sim
//!
//! An in-process simulated Tor privacy infrastructure for the OnionBots
//! (DSN 2015) reproduction.
//!
//! The paper's botnet lives entirely inside Tor hidden services; its
//! evaluation and the proposed mitigations depend on structural properties
//! of Tor, not on live network measurements. This crate provides exactly
//! those structures:
//!
//! * [`relay`] / [`consensus`] — Onion Routers, consensus flags (including
//!   the 25-hour HSDir eligibility rule) and the hourly consensus.
//! * [`onion`] — `.onion` addresses derived from RSA keys exactly as Tor
//!   derives them (base32 of the truncated SHA-1 fingerprint).
//! * [`hsdir`] — descriptor-ID computation and responsible-HSDir selection
//!   on the fingerprint ring (Figure 2 of the paper).
//! * [`descriptor`] — signed hidden-service descriptors.
//! * [`cell`] / [`circuit`] — fixed-size cells and layered (onion)
//!   encryption along multi-hop circuits.
//! * [`network`] — the [`network::TorNetwork`] façade: registration,
//!   descriptor publication/lookup, message delivery by onion address, and
//!   traffic accounting.
//!
//! ```
//! use tor_sim::network::TorNetwork;
//! use tor_sim::descriptor::HiddenServiceDescriptor;
//! use tor_sim::onion::OnionAddress;
//! use onion_crypto::rsa::RsaKeyPair;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), tor_sim::error::TorError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut tor = TorNetwork::new(30, &mut rng);
//! let key = RsaKeyPair::generate(512, &mut rng);
//! let onion = OnionAddress::from_public_key(key.public());
//!
//! tor.register_hidden_service(onion, None);
//! let intro = tor.consensus().hsdir_ring()[..3].to_vec();
//! tor.publish_descriptor(&HiddenServiceDescriptor::create(&key, intro, tor.time_secs()))?;
//! tor.send_to_onion(onion, None, b"hello hidden service".to_vec())?;
//! assert_eq!(tor.drain_mailbox(onion).len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cell;
pub mod circuit;
pub mod consensus;
pub mod descriptor;
pub mod error;
pub mod hsdir;
pub mod network;
pub mod onion;
pub mod relay;

pub use error::TorError;
pub use network::TorNetwork;
pub use onion::OnionAddress;
pub use relay::Fingerprint;

#[cfg(test)]
mod property_tests {
    use crate::hsdir::{descriptor_id, responsible_hsdirs, DescriptorId};
    use crate::onion::OnionAddress;
    use crate::relay::Fingerprint;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Onion addresses roundtrip through their textual form for any
        /// identifier.
        #[test]
        fn onion_address_roundtrip(identifier in prop::array::uniform10(any::<u8>())) {
            let addr = OnionAddress::from_identifier(identifier);
            let parsed = OnionAddress::parse(&addr.to_string()).unwrap();
            prop_assert_eq!(parsed, addr);
        }

        /// Responsible HSDirs are always drawn from the ring, unique, and at
        /// most three.
        #[test]
        fn responsible_hsdirs_are_valid(
            desc in prop::array::uniform20(any::<u8>()),
            ring_seeds in prop::collection::btree_set(any::<u8>(), 1..40)
        ) {
            let ring: Vec<Fingerprint> = ring_seeds.iter().map(|&b| {
                let mut fp = [0u8; 20];
                fp[0] = b;
                fp[1] = b.wrapping_mul(31);
                Fingerprint(fp)
            }).collect();
            let responsible = responsible_hsdirs(DescriptorId(desc), &ring);
            prop_assert!(responsible.len() <= 3);
            prop_assert!(!responsible.is_empty());
            for fp in &responsible {
                prop_assert!(ring.contains(fp));
            }
            let mut dedup = responsible.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), responsible.len());
        }

        /// Descriptor IDs depend on the identifier and replica: two services
        /// never share a descriptor ID, and the two replicas of one service
        /// differ.
        #[test]
        fn descriptor_ids_are_distinct(
            id_a in prop::array::uniform10(any::<u8>()),
            id_b in prop::array::uniform10(any::<u8>()),
            time in 0u64..10_000_000
        ) {
            let a0 = descriptor_id(id_a, time, None, 0);
            let a1 = descriptor_id(id_a, time, None, 1);
            prop_assert_ne!(a0, a1);
            if id_a != id_b {
                let b0 = descriptor_id(id_b, time, None, 0);
                prop_assert_ne!(a0, b0);
            }
        }
    }
}
