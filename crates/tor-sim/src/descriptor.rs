//! Hidden-service descriptors.
//!
//! A descriptor advertises a hidden service's public key and its current
//! introduction points; it is signed by the service and stored on the
//! responsible HSDirs (§III). Clients fetch it to learn where to send the
//! introduction message.

use onion_crypto::rsa::{EncodedPublicKey, RsaKeyPair, RsaPublicKey};
use serde::{Deserialize, Serialize};

use crate::error::TorError;
use crate::onion::OnionAddress;
use crate::relay::Fingerprint;

/// A signed hidden-service descriptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HiddenServiceDescriptor {
    /// The service's public key (also determines the onion address).
    pub public_key: EncodedPublicKey,
    /// Introduction points currently serving the service.
    pub intro_points: Vec<Fingerprint>,
    /// Publication time in seconds.
    pub published_at_secs: u64,
    /// RSA signature over the canonical descriptor bytes.
    pub signature: Vec<u8>,
}

impl HiddenServiceDescriptor {
    /// Creates and signs a descriptor for `service_key`.
    pub fn create(
        service_key: &RsaKeyPair,
        intro_points: Vec<Fingerprint>,
        published_at_secs: u64,
    ) -> Self {
        let public_key = service_key.public().encode();
        let body = Self::canonical_bytes(&public_key, &intro_points, published_at_secs);
        let signature = service_key.sign(&body);
        HiddenServiceDescriptor {
            public_key,
            intro_points,
            published_at_secs,
            signature,
        }
    }

    /// The onion address this descriptor belongs to (derived, not stored).
    ///
    /// # Errors
    /// Returns [`TorError::InvalidDescriptor`] if the embedded key is
    /// malformed.
    pub fn onion_address(&self) -> Result<OnionAddress, TorError> {
        let key = RsaPublicKey::decode(&self.public_key)
            .map_err(|e| TorError::InvalidDescriptor(e.to_string()))?;
        Ok(OnionAddress::from_public_key(&key))
    }

    /// Verifies the signature against the embedded public key.
    pub fn verify(&self) -> bool {
        let Ok(key) = RsaPublicKey::decode(&self.public_key) else {
            return false;
        };
        let body =
            Self::canonical_bytes(&self.public_key, &self.intro_points, self.published_at_secs);
        key.verify(&body, &self.signature)
    }

    fn canonical_bytes(
        public_key: &EncodedPublicKey,
        intro_points: &[Fingerprint],
        published_at_secs: u64,
    ) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(public_key.n_hex.as_bytes());
        body.extend_from_slice(b"|");
        body.extend_from_slice(public_key.e_hex.as_bytes());
        body.extend_from_slice(b"|");
        for ip in intro_points {
            body.extend_from_slice(&ip.0);
        }
        body.extend_from_slice(&published_at_secs.to_be_bytes());
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn service_key(seed: u64) -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        RsaKeyPair::generate(512, &mut rng)
    }

    fn intro_points(n: usize, seed: u64) -> Vec<Fingerprint> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Fingerprint::random(&mut rng)).collect()
    }

    #[test]
    fn created_descriptors_verify() {
        let key = service_key(1);
        let desc = HiddenServiceDescriptor::create(&key, intro_points(3, 10), 1000);
        assert!(desc.verify());
        assert_eq!(
            desc.onion_address().unwrap(),
            OnionAddress::from_public_key(key.public())
        );
    }

    #[test]
    fn tampered_descriptors_fail_verification() {
        let key = service_key(2);
        let mut desc = HiddenServiceDescriptor::create(&key, intro_points(3, 11), 1000);
        desc.published_at_secs += 1;
        assert!(!desc.verify());

        let mut desc2 = HiddenServiceDescriptor::create(&key, intro_points(3, 12), 1000);
        desc2.intro_points.pop();
        assert!(!desc2.verify());

        let other_key = service_key(3);
        let mut desc3 = HiddenServiceDescriptor::create(&key, intro_points(3, 13), 1000);
        desc3.public_key = other_key.public().encode();
        assert!(!desc3.verify());
    }

    #[test]
    fn descriptor_with_no_intro_points_is_still_wellformed() {
        let key = service_key(4);
        let desc = HiddenServiceDescriptor::create(&key, Vec::new(), 55);
        assert!(desc.verify());
        assert!(desc.intro_points.is_empty());
    }

    #[test]
    fn serde_roundtrip_preserves_verification() {
        let key = service_key(5);
        let desc = HiddenServiceDescriptor::create(&key, intro_points(2, 14), 77);
        let json = serde_json::to_string(&desc).unwrap();
        let restored: HiddenServiceDescriptor = serde_json::from_str(&json).unwrap();
        assert!(restored.verify());
        assert_eq!(restored, desc);
    }
}
