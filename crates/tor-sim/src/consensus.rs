//! The simulated consensus document.
//!
//! "The list of Tor relays, which is called the consensus document, is
//! published and updated every hour by the Tor authorities" (§III). The
//! simulator keeps one mutable [`Consensus`] that the network advances one
//! hour at a time; HSDir eligibility follows relay uptime.

use std::collections::BTreeMap;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::relay::{Fingerprint, Relay};

/// The hourly consensus: every known relay keyed (and ordered) by
/// fingerprint.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Consensus {
    relays: BTreeMap<Fingerprint, Relay>,
    /// Hour index at which this consensus is valid.
    valid_after_hour: u64,
}

impl Consensus {
    /// Creates an empty consensus valid at hour 0.
    pub fn new() -> Self {
        Consensus::default()
    }

    /// Bootstraps a consensus with `n` random relays that have already been
    /// up long enough to carry the HSDir flag (a steady-state Tor network).
    pub fn bootstrap<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut consensus = Consensus::new();
        for i in 0..n {
            let mut relay = Relay::new(format!("relay{i}"), rng.gen_range(1000..20_000), rng);
            relay.tick_hours(26 + rng.gen_range(0..1000));
            consensus.add_relay(relay);
        }
        consensus
    }

    /// The hour at which this consensus became valid.
    pub fn valid_after_hour(&self) -> u64 {
        self.valid_after_hour
    }

    /// Adds (or replaces) a relay.
    pub fn add_relay(&mut self, relay: Relay) {
        self.relays.insert(relay.fingerprint(), relay);
    }

    /// Removes a relay, returning it if it was present.
    pub fn remove_relay(&mut self, fingerprint: Fingerprint) -> Option<Relay> {
        self.relays.remove(&fingerprint)
    }

    /// Looks up a relay by fingerprint.
    pub fn relay(&self, fingerprint: Fingerprint) -> Option<&Relay> {
        self.relays.get(&fingerprint)
    }

    /// Number of relays in the consensus.
    pub fn relay_count(&self) -> usize {
        self.relays.len()
    }

    /// All relays in fingerprint order.
    pub fn relays(&self) -> impl Iterator<Item = &Relay> {
        self.relays.values()
    }

    /// The HSDir ring: fingerprints of all relays carrying the HSDir flag,
    /// in ascending fingerprint order (the "circle of the fingerprint of Tor
    /// relays" from Figure 2 of the paper).
    pub fn hsdir_ring(&self) -> Vec<Fingerprint> {
        self.relays
            .values()
            .filter(|r| r.flags().hsdir)
            .map(Relay::fingerprint)
            .collect()
    }

    /// Fingerprints of relays suitable for general circuit hops.
    pub fn circuit_candidates(&self) -> Vec<Fingerprint> {
        self.relays.keys().copied().collect()
    }

    /// Advances the consensus clock by `hours`, aging every relay and
    /// re-deriving its flags.
    pub fn advance_hours(&mut self, hours: u64) {
        self.valid_after_hour += hours;
        for relay in self.relays.values_mut() {
            relay.tick_hours(hours);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bootstrap_produces_hsdir_capable_network() {
        let mut rng = StdRng::seed_from_u64(1);
        let consensus = Consensus::bootstrap(50, &mut rng);
        assert_eq!(consensus.relay_count(), 50);
        assert_eq!(consensus.hsdir_ring().len(), 50);
    }

    #[test]
    fn hsdir_ring_is_sorted_by_fingerprint() {
        let mut rng = StdRng::seed_from_u64(2);
        let consensus = Consensus::bootstrap(30, &mut rng);
        let ring = consensus.hsdir_ring();
        let mut sorted = ring.clone();
        sorted.sort_unstable();
        assert_eq!(ring, sorted);
    }

    #[test]
    fn new_relays_join_the_ring_only_after_25_hours() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut consensus = Consensus::bootstrap(10, &mut rng);
        let newcomer = Relay::new("newcomer", 5000, &mut rng);
        let fp = newcomer.fingerprint();
        consensus.add_relay(newcomer);
        assert_eq!(consensus.relay_count(), 11);
        assert_eq!(consensus.hsdir_ring().len(), 10, "newcomer lacks uptime");
        consensus.advance_hours(24);
        assert_eq!(consensus.hsdir_ring().len(), 10);
        consensus.advance_hours(1);
        assert_eq!(consensus.hsdir_ring().len(), 11);
        assert!(consensus.hsdir_ring().contains(&fp));
    }

    #[test]
    fn remove_relay_shrinks_consensus() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut consensus = Consensus::bootstrap(5, &mut rng);
        let fp = consensus.hsdir_ring()[0];
        assert!(consensus.remove_relay(fp).is_some());
        assert!(consensus.relay(fp).is_none());
        assert_eq!(consensus.relay_count(), 4);
        assert!(consensus.remove_relay(fp).is_none());
    }

    #[test]
    fn clock_advances() {
        let mut consensus = Consensus::new();
        assert_eq!(consensus.valid_after_hour(), 0);
        consensus.advance_hours(5);
        assert_eq!(consensus.valid_after_hour(), 5);
    }
}
