//! In-source suppression pragmas.
//!
//! Grammar — the whole comment, nothing before the marker:
//!
//! ```text
//! // detlint: allow(D001[, D002...]) reason="non-empty free text"
//! ```
//!
//! Only plain `//` (or `/* ... */`) comments whose content *starts* with
//! the marker are pragmas: in a doc comment (`///`, `//!`) the captured
//! text begins with `/` or `!`, so documentation may freely *mention*
//! the syntax without suppressing anything.
//!
//! A pragma trailing code on its line suppresses findings on that line; a
//! pragma alone on a line suppresses findings on the line after the
//! comment ends. The `reason` is mandatory and must be non-empty: the
//! whole point of the lint is that every surviving hash container or
//! clock read carries a reviewable justification next to the code.
//!
//! Anything that contains the marker `detlint:` but does not parse — or
//! parses with an empty reason or an unknown rule id — is itself reported
//! (rule `D005`) and suppresses nothing, so a typo can never silently
//! disable enforcement. Likewise a pragma that suppresses nothing is
//! reported, so stale pragmas cannot outlive the code they excused.

use crate::lexer::Comment;
use crate::rules::is_known_rule;

/// The marker that makes a comment a (claimed) pragma.
pub const MARKER: &str = "detlint";

/// A successfully parsed suppression pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// Line the pragma comment starts on (for diagnostics).
    pub line: u32,
    /// Line whose findings this pragma suppresses.
    pub applies_to: u32,
    /// Rule ids listed in `allow(...)`.
    pub rules: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
}

/// Scans a comment for the pragma marker. Returns:
/// * `None` — not a pragma comment at all;
/// * `Some(Ok(p))` — a well-formed pragma;
/// * `Some(Err(msg))` — claims to be a pragma but is malformed (`D005`).
pub fn parse(comment: &Comment) -> Option<Result<Pragma, String>> {
    let rest = comment.text.trim_start().strip_prefix(MARKER)?;
    // A comment *starting* with `detlint` claims to be a pragma; from
    // here on, anything unexpected is an error, not a silent no-op.
    Some(parse_body(comment, rest))
}

fn parse_body(comment: &Comment, body: &str) -> Result<Pragma, String> {
    let Some(body) = body.strip_prefix(':') else {
        return Err("expected `:` after `detlint`".to_string());
    };
    let body = body.trim_start();
    let Some(after_allow) = body.strip_prefix("allow") else {
        return Err(format!(
            "expected `allow(RULE, ...)` after `{MARKER}`, found `{}`",
            truncate(body)
        ));
    };
    let after_allow = after_allow.trim_start();
    let Some(after_paren) = after_allow.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(close) = after_paren.find(')') else {
        return Err("unclosed `allow(` rule list".to_string());
    };
    let list = &after_paren[..close];
    let mut rules = Vec::new();
    for raw in list.split(',') {
        let id = raw.trim();
        if id.is_empty() {
            return Err("empty rule id in `allow(...)`".to_string());
        }
        if !is_known_rule(id) {
            return Err(format!("unknown rule id `{id}` in `allow(...)`"));
        }
        if !rules.iter().any(|r| r == id) {
            rules.push(id.to_string());
        }
    }
    if rules.is_empty() {
        return Err("`allow()` lists no rules".to_string());
    }

    let rest = after_paren[close + 1..].trim_start();
    let Some(after_reason) = rest.strip_prefix("reason") else {
        return Err("missing mandatory `reason=\"...\"`".to_string());
    };
    let after_reason = after_reason.trim_start();
    let Some(after_eq) = after_reason.strip_prefix('=') else {
        return Err("expected `=` after `reason`".to_string());
    };
    let after_eq = after_eq.trim_start();
    let Some(quoted) = after_eq.strip_prefix('"') else {
        return Err("`reason` must be a double-quoted string".to_string());
    };
    let Some(end) = quoted.find('"') else {
        return Err("unclosed `reason` string".to_string());
    };
    let reason = quoted[..end].trim();
    if reason.is_empty() {
        return Err("`reason` must not be empty".to_string());
    }

    Ok(Pragma {
        line: comment.line,
        applies_to: if comment.trailing {
            comment.line
        } else {
            comment.end_line + 1
        },
        rules,
        reason: reason.to_string(),
    })
}

fn truncate(s: &str) -> String {
    const MAX: usize = 40;
    if s.chars().count() <= MAX {
        s.to_string()
    } else {
        let head: String = s.chars().take(MAX).collect();
        format!("{head}...")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str, trailing: bool) -> Comment {
        Comment {
            line: 7,
            end_line: 7,
            text: text.to_string(),
            trailing,
        }
    }

    #[test]
    fn well_formed_trailing_pragma_applies_to_its_own_line() {
        let p = parse(&comment(
            r#" detlint: allow(D001) reason="membership-only set""#,
            true,
        ))
        .expect("is a pragma")
        .expect("parses");
        assert_eq!(p.applies_to, 7);
        assert_eq!(p.rules, vec!["D001"]);
        assert_eq!(p.reason, "membership-only set");
    }

    #[test]
    fn own_line_pragma_applies_to_the_next_line() {
        let p = parse(&comment(r#" detlint: allow(D001, D002) reason="x""#, false))
            .expect("is a pragma")
            .expect("parses");
        assert_eq!(p.applies_to, 8);
        assert_eq!(p.rules, vec!["D001", "D002"]);
    }

    #[test]
    fn multiline_block_pragma_applies_after_the_comment_ends() {
        let c = Comment {
            line: 3,
            end_line: 5,
            text: r#" detlint: allow(D003) reason="spans lines" "#.to_string(),
            trailing: false,
        };
        let p = parse(&c).expect("is a pragma").expect("parses");
        assert_eq!(p.applies_to, 6);
    }

    #[test]
    fn non_pragma_comments_are_ignored() {
        // The marker must lead the comment, not merely appear in it.
        assert!(parse(&comment(" just words about the detlint tool", true)).is_none());
        assert!(parse(&comment(" allow(D001) without the marker", true)).is_none());
        // Doc comments (`///`, `//!`) capture a leading `/` or `!`, so
        // documentation can show the full pragma syntax safely.
        assert!(parse(&comment(
            r#"/ use `// detlint: allow(D001) reason="..."`"#,
            false
        ))
        .is_none());
        assert!(parse(&comment(r#"! detlint: allow(D001) reason="x""#, false)).is_none());
    }

    #[test]
    fn malformed_pragmas_error_instead_of_silently_suppressing() {
        for bad in [
            " detlint allow(D001) reason=\"x\"",      // missing colon
            " detlint: allow(D001)",                  // no reason
            r#" detlint: allow(D001) reason="""#,     // empty reason
            r#" detlint: allow(D001) reason=flaky"#,  // unquoted reason
            r#" detlint: allow() reason="x""#,        // no rules
            r#" detlint: allow(D9999) reason="x""#,   // unknown rule
            r#" detlint: deny(D001) reason="x""#,     // wrong verb
            r#" detlint: allow(D001 reason="x""#,     // unclosed list
            r#" detlint: allow(D001,) reason="x""#,   // empty id
            r#" detlint: allow(D001) reason="   " "#, // blank reason
        ] {
            let res = parse(&comment(bad, true)).expect("marker present");
            assert!(res.is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn duplicate_rule_ids_collapse() {
        let p = parse(&comment(r#" detlint: allow(D001, D001) reason="x""#, true))
            .unwrap()
            .unwrap();
        assert_eq!(p.rules, vec!["D001"]);
    }
}
