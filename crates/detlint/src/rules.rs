//! The determinism rule catalog.
//!
//! | Rule | What it catches | Scope |
//! |------|-----------------|-------|
//! | D001 | `HashMap`/`HashSet` in RNG-adjacent paths (hash-randomized iteration order can leak into RNG streams or output) | `[rules.D001] paths` |
//! | D002 | wall-clock / OS-entropy sources and blocking waits (`SystemTime::now`, `Instant::now`, `thread::sleep`, `thread_rng`, `from_entropy`, `OsRng`) | everywhere except `[rules.D002] allow` |
//! | D003 | environment reads (`env::var` & friends) | everywhere except `[rules.D003] allow` |
//! | D004 | `unsafe` outside the pinned inventory | everywhere; `[rules.D004] inventory` pins exact counts |
//! | D005 | pragma hygiene: malformed, reason-less, unknown-rule or unused pragmas | everywhere |
//!
//! Rules match the lexed token stream, so occurrences inside comments,
//! strings and char literals never fire. Matching is purely lexical:
//! D001 flags the *type names*, not just iteration calls, because a
//! lexer cannot type the receiver of `.iter()` — and a hash container
//! that is *constructed* on an RNG-adjacent path is exactly the thing a
//! human must either replace with an ordered container or justify with
//! a pragma. That trade (a few justified pragmas on membership-only
//! sites) buys the property that no new hash-ordered iteration can land
//! unreviewed.

use crate::config::{path_matches, Config};
use crate::lexer::{lex, TokenKind};
use crate::pragma::{self, Pragma};

/// Every rule id the catalog knows.
pub const RULE_IDS: [&str; 5] = ["D001", "D002", "D003", "D004", "D005"];

/// Whether `id` names a cataloged rule (used to validate pragmas).
pub fn is_known_rule(id: &str) -> bool {
    RULE_IDS.contains(&id)
}

/// One diagnostic. Renders as `file:line: RULE message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-root-relative, `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id, e.g. `D001`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Violation {
    fn new(file: &str, line: u32, rule: &'static str, message: String) -> Self {
        Violation {
            file: file.to_string(),
            line,
            rule,
            message,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Identifiers that are OS-entropy sources wherever they appear (even in
/// a `use` line: importing one is already a hazard worth justifying).
const ENTROPY_IDENTS: [&str; 3] = ["thread_rng", "from_entropy", "OsRng"];

/// `env::` member calls that read or mutate the process environment.
const ENV_READS: [&str; 6] = ["var", "var_os", "vars", "vars_os", "set_var", "remove_var"];

/// Lints one file's source text. `rel_path` must be workspace-root
/// relative and `/`-separated — it selects which rules are in scope.
pub fn check_file(rel_path: &str, source: &str, config: &Config) -> Vec<Violation> {
    let lexed = lex(source);

    // Pragmas first: malformed ones are violations and suppress nothing.
    let mut violations: Vec<Violation> = Vec::new();
    let mut pragmas: Vec<(Pragma, bool)> = Vec::new(); // (pragma, used)
    for comment in &lexed.comments {
        match pragma::parse(comment) {
            None => {}
            Some(Ok(p)) => pragmas.push((p, false)),
            Some(Err(msg)) => violations.push(Violation::new(
                rel_path,
                comment.line,
                "D005",
                format!("malformed detlint pragma ({msg}); it suppresses nothing"),
            )),
        }
    }

    let mut findings: Vec<Violation> = Vec::new();

    // D001 — hash-randomized containers on RNG-adjacent paths.
    let d001_applies = path_matches(rel_path, &config.d001_paths);

    // D002/D003 — exemptions.
    let d002_applies = !path_matches(rel_path, &config.d002_allow);
    let d003_applies = !path_matches(rel_path, &config.d003_allow);

    // D004 — inventoried files get a count comparison instead of
    // per-occurrence findings.
    let d004_expected = config
        .d004_inventory
        .iter()
        .find(|(file, _)| file == rel_path)
        .map(|(_, count)| *count);
    let mut unsafe_lines: Vec<u32> = Vec::new();

    let tokens = &lexed.tokens;
    for (i, token) in tokens.iter().enumerate() {
        let TokenKind::Ident(name) = &token.kind else {
            continue;
        };
        match name.as_str() {
            "HashMap" | "HashSet" if d001_applies => findings.push(Violation::new(
                rel_path,
                token.line,
                "D001",
                format!(
                    "hash-randomized `{name}` on an RNG-adjacent path; use an ordered \
                     container (BTreeMap/BTreeSet/Vec) or justify a membership-only use \
                     with `// detlint: allow(D001) reason=\"...\"`"
                ),
            )),
            "SystemTime" | "Instant" if d002_applies && followed_by_now(tokens, i) => {
                findings.push(Violation::new(
                    rel_path,
                    token.line,
                    "D002",
                    format!(
                        "wall-clock read `{name}::now` outside sanctioned timing modules; \
                         simulated time must come from the scenario clock"
                    ),
                ));
            }
            "thread" if d002_applies && followed_by_member(tokens, i, "sleep") => {
                findings.push(Violation::new(
                    rel_path,
                    token.line,
                    "D002",
                    "blocking wait `thread::sleep` outside sanctioned timing modules; \
                     a real-time pause smuggles the wall clock into control flow — poll \
                     a bounded counter or justify a bounded, output-invisible pause with \
                     `// detlint: allow(D002) reason=\"...\"`"
                        .to_string(),
                ));
            }
            n if d002_applies && ENTROPY_IDENTS.contains(&n) => {
                findings.push(Violation::new(
                    rel_path,
                    token.line,
                    "D002",
                    format!(
                        "OS-entropy source `{n}`; all randomness must derive from the \
                         per-part seed (`StdRng::seed_from_u64` on a derived seed)"
                    ),
                ));
            }
            "env" if d003_applies => {
                if let Some(member) = env_member(tokens, i) {
                    findings.push(Violation::new(
                        rel_path,
                        token.line,
                        "D003",
                        format!(
                            "environment read `env::{member}` outside sanctioned config \
                             modules; thread configuration through explicit parameters"
                        ),
                    ));
                }
            }
            "unsafe" => unsafe_lines.push(token.line),
            _ => {}
        }
    }

    // D004: inventoried files must carry *exactly* the pinned count, so a
    // removed unsafe block forces the inventory (and the rationale next
    // to it) to be updated too.
    match d004_expected {
        Some(expected) => {
            if unsafe_lines.len() != expected {
                let line = unsafe_lines.first().copied().unwrap_or(1);
                findings.push(Violation::new(
                    rel_path,
                    line,
                    "D004",
                    format!(
                        "`unsafe` count drifted from the D004 inventory: found {}, \
                         detlint.toml pins {expected}; re-audit and update the inventory",
                        unsafe_lines.len()
                    ),
                ));
            }
        }
        None => {
            for line in unsafe_lines {
                findings.push(Violation::new(
                    rel_path,
                    line,
                    "D004",
                    "`unsafe` outside the inventoried signal-handler site; \
                     the workspace libraries are `forbid(unsafe_code)`"
                        .to_string(),
                ));
            }
        }
    }

    // Apply suppressions line-by-line.
    for finding in findings {
        let mut suppressed = false;
        for (p, used) in pragmas.iter_mut() {
            if p.applies_to == finding.line && p.rules.iter().any(|r| r == finding.rule) {
                *used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            violations.push(finding);
        }
    }

    // A pragma that excused nothing is stale — that is itself a finding,
    // so suppressions cannot outlive the hazards they were written for.
    for (p, used) in pragmas {
        if !used {
            violations.push(Violation::new(
                rel_path,
                p.line,
                "D005",
                format!(
                    "unused detlint pragma (allow({}) suppressed no finding on line {}); \
                     remove it or move it next to the hazard it excuses",
                    p.rules.join(", "),
                    p.applies_to
                ),
            ));
        }
    }

    violations.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    violations
}

/// Does `tokens[i]` (an ident) begin the sequence `X :: now`?
fn followed_by_now(tokens: &[crate::lexer::Token], i: usize) -> bool {
    followed_by_member(tokens, i, "now")
}

/// Does `tokens[i]` (an ident) begin the sequence `X :: member`?
fn followed_by_member(tokens: &[crate::lexer::Token], i: usize, member: &str) -> bool {
    matches!(
        (
            tokens.get(i + 1).map(|t| &t.kind),
            tokens.get(i + 2).map(|t| &t.kind),
            tokens.get(i + 3).map(|t| &t.kind),
        ),
        (
            Some(TokenKind::Punct(':')),
            Some(TokenKind::Punct(':')),
            Some(TokenKind::Ident(name)),
        ) if name == member
    )
}

/// If `tokens[i]` is `env` in `env :: member` with `member` an
/// environment read, returns the member name.
fn env_member(tokens: &[crate::lexer::Token], i: usize) -> Option<&str> {
    match (
        tokens.get(i + 1).map(|t| &t.kind),
        tokens.get(i + 2).map(|t| &t.kind),
        tokens.get(i + 3).map(|t| &t.kind),
    ) {
        (
            Some(TokenKind::Punct(':')),
            Some(TokenKind::Punct(':')),
            Some(TokenKind::Ident(name)),
        ) if ENV_READS.contains(&name.as_str()) => Some(name.as_str()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scoped_config() -> Config {
        Config {
            exclude: vec![],
            d001_paths: vec!["rng/".to_string()],
            d002_allow: vec!["timing/clock.rs".to_string()],
            d003_allow: vec!["config/env.rs".to_string()],
            d004_inventory: vec![("bin/daemon.rs".to_string(), 1)],
        }
    }

    fn rules_fired(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        check_file(path, src, &scoped_config())
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    #[test]
    fn d001_fires_only_on_scoped_paths() {
        let src = "use std::collections::HashMap;\nlet m: HashMap<u32, u32> = HashMap::new();";
        assert_eq!(
            rules_fired("rng/graph.rs", src),
            vec![("D001", 1), ("D001", 2), ("D001", 2)]
        );
        assert!(rules_fired("other/graph.rs", src).is_empty());
    }

    #[test]
    fn d002_catches_clocks_and_entropy_but_respects_sanctioned_modules() {
        let src = "let t = Instant::now();\nlet st = SystemTime::now();\nlet r = thread_rng();\nuse rand::rngs::OsRng;\nlet x = StdRng::from_entropy();";
        assert_eq!(
            rules_fired("rng/scenario.rs", src),
            vec![
                ("D002", 1),
                ("D002", 2),
                ("D002", 3),
                ("D002", 4),
                ("D002", 5)
            ]
        );
        assert!(rules_fired("timing/clock.rs", src).is_empty());
    }

    #[test]
    fn d002_catches_blocking_sleeps_but_not_the_bare_module_name() {
        let src = "std::thread::sleep(Duration::from_millis(10));\nthread::sleep(pause);";
        assert_eq!(
            rules_fired("rng/scenario.rs", src),
            vec![("D002", 1), ("D002", 2)]
        );
        assert!(rules_fired("timing/clock.rs", src).is_empty());
        // Other thread:: members (spawn, yield_now) are not waits.
        assert!(rules_fired("rng/scenario.rs", "std::thread::spawn(run);").is_empty());
        assert!(rules_fired("rng/scenario.rs", "thread::yield_now();").is_empty());
    }

    #[test]
    fn d002_requires_the_now_call_for_clock_types() {
        // Mentioning the type (e.g. storing a Duration since an Instant
        // passed in from a sanctioned module) is fine.
        let src = "fn record(started: Instant) -> Duration { started.elapsed() }";
        assert!(rules_fired("rng/scenario.rs", src).is_empty());
    }

    #[test]
    fn d003_catches_env_reads_everywhere_but_sanctioned_modules() {
        let src = "let v = std::env::var(\"X\");\nlet w = env::var_os(\"Y\");\nstd::env::set_var(\"Z\", \"1\");";
        assert_eq!(
            rules_fired("anywhere.rs", src),
            vec![("D003", 1), ("D003", 2), ("D003", 3)]
        );
        assert!(rules_fired("config/env.rs", src).is_empty());
        // Non-reading members are fine.
        assert!(rules_fired("anywhere.rs", "let d = std::env::temp_dir();").is_empty());
        assert!(rules_fired(
            "anywhere.rs",
            "let a: Vec<String> = std::env::args().collect();"
        )
        .is_empty());
    }

    #[test]
    fn d004_flags_unsafe_outside_the_inventory_and_count_drift_inside() {
        assert_eq!(
            rules_fired("lib/code.rs", "unsafe { do_thing() }"),
            vec![("D004", 1)]
        );
        // Inventoried file with the pinned count: clean.
        assert!(rules_fired("bin/daemon.rs", "unsafe { signal(2, h) }").is_empty());
        // Inventoried file that grew a second unsafe block: drift.
        assert_eq!(
            rules_fired("bin/daemon.rs", "unsafe { a() }\nunsafe { b() }"),
            vec![("D004", 1)]
        );
        // Inventoried file that lost its unsafe block: stale inventory.
        assert_eq!(
            rules_fired("bin/daemon.rs", "fn safe() {}"),
            vec![("D004", 1)]
        );
    }

    #[test]
    fn occurrences_in_comments_and_strings_never_fire() {
        let src = "// HashMap thread_rng unsafe env::var\nlet s = \"HashMap unsafe\";\n/* SystemTime::now */";
        assert!(rules_fired("rng/graph.rs", src).is_empty());
    }

    #[test]
    fn trailing_pragma_suppresses_its_line() {
        let src = "let m = HashMap::new(); // detlint: allow(D001) reason=\"membership-only\"";
        assert!(rules_fired("rng/graph.rs", src).is_empty());
    }

    #[test]
    fn own_line_pragma_suppresses_the_next_line() {
        let src =
            "// detlint: allow(D001) reason=\"membership-only index\"\nlet m = HashMap::new();";
        assert!(rules_fired("rng/graph.rs", src).is_empty());
    }

    #[test]
    fn pragma_does_not_bleed_past_its_line() {
        let src = "// detlint: allow(D001) reason=\"only the next line\"\nlet a = HashMap::new();\nlet b = HashSet::new();";
        assert_eq!(rules_fired("rng/graph.rs", src), vec![("D001", 3)]);
    }

    #[test]
    fn reasonless_pragma_is_a_violation_and_suppresses_nothing() {
        let src = "let m = HashMap::new(); // detlint: allow(D001)";
        assert_eq!(
            rules_fired("rng/graph.rs", src),
            vec![("D001", 1), ("D005", 1)]
        );
    }

    #[test]
    fn unused_pragma_is_a_violation() {
        let src = "// detlint: allow(D001) reason=\"stale\"\nlet x = 1;";
        assert_eq!(rules_fired("rng/graph.rs", src), vec![("D005", 1)]);
    }

    #[test]
    fn pragma_only_suppresses_its_listed_rules() {
        let src = "let m = HashMap::new(); // detlint: allow(D002) reason=\"wrong rule\"";
        // D001 still fires, and the D002 pragma is unused.
        assert_eq!(
            rules_fired("rng/graph.rs", src),
            vec![("D001", 1), ("D005", 1)]
        );
    }

    #[test]
    fn pragma_inside_a_string_is_not_a_pragma() {
        let src =
            "let s = \"// detlint: allow(D001) reason=\\\"nope\\\"\";\nlet m = HashMap::new();";
        assert_eq!(rules_fired("rng/graph.rs", src), vec![("D001", 2)]);
    }
}
