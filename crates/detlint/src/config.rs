//! `detlint.toml` — the checked-in scope configuration.
//!
//! The file is TOML, restricted to the subset this hand-written parser
//! accepts (no TOML crate offline): `[section]` headers, `key = "string"`
//! scalars, and `key = ["a", "b", ...]` string arrays which may span
//! lines. `#` comments are allowed anywhere outside strings. Unknown
//! sections or keys are hard errors so a typo cannot silently widen or
//! narrow the lint's scope.
//!
//! Recognized schema:
//!
//! ```toml
//! [scan]
//! exclude = ["vendor/", ...]        # path prefixes never lexed
//!
//! [rules.D001]
//! paths = ["crates/onion-graph/src/", ...]   # where D001 applies
//!
//! [rules.D002]
//! allow = ["crates/bench/src/bin/run_experiments.rs", ...]
//!
//! [rules.D003]
//! allow = [...]
//!
//! [rules.D004]
//! inventory = ["crates/bench/src/bin/run_experiments.rs:1", ...]
//! ```
//!
//! All paths are `/`-separated and relative to the workspace root; a
//! trailing `/` makes the entry a directory prefix, otherwise it names a
//! single file. `inventory` entries are `path:count` — the exact number
//! of `unsafe` tokens that file is pinned to carry.

/// Parsed configuration. Path lists keep file order (diagnostic output is
/// sorted separately, so order here is cosmetic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Root-relative path prefixes that are never scanned.
    pub exclude: Vec<String>,
    /// RNG-adjacent prefixes where D001 (hash container) applies.
    pub d001_paths: Vec<String>,
    /// Sanctioned timing modules exempt from D002.
    pub d002_allow: Vec<String>,
    /// Sanctioned configuration modules exempt from D003.
    pub d003_allow: Vec<String>,
    /// `(file, expected unsafe-token count)` — the D004 inventory.
    pub d004_inventory: Vec<(String, usize)>,
}

impl Config {
    /// Parses the configuration text.
    ///
    /// # Errors
    /// Returns a human-readable message naming the offending line for any
    /// syntax error, unknown section/key, or malformed inventory entry.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(format!("line {}: unclosed section header", idx + 1));
                };
                section = name.trim().to_string();
                match section.as_str() {
                    "scan" | "rules.D001" | "rules.D002" | "rules.D003" | "rules.D004" => {}
                    other => return Err(format!("line {}: unknown section [{other}]", idx + 1)),
                }
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(format!("line {}: expected `key = value`", idx + 1));
            };
            let key = line[..eq].trim().to_string();
            let mut value = line[eq + 1..].trim().to_string();
            // A string array may span lines: keep consuming until the
            // bracket closes (brackets never appear inside our values).
            if value.starts_with('[') {
                while !balanced(&value) {
                    let Some((_, more)) = lines.next() else {
                        return Err(format!("line {}: unclosed array for `{key}`", idx + 1));
                    };
                    value.push(' ');
                    value.push_str(strip_comment(more).trim());
                }
            }
            let values = parse_string_array(&value)
                .map_err(|e| format!("line {}: key `{key}`: {e}", idx + 1))?;
            match (section.as_str(), key.as_str()) {
                ("scan", "exclude") => config.exclude = values,
                ("rules.D001", "paths") => config.d001_paths = values,
                ("rules.D002", "allow") => config.d002_allow = values,
                ("rules.D003", "allow") => config.d003_allow = values,
                ("rules.D004", "inventory") => {
                    for entry in values {
                        let Some((path, count)) = entry.rsplit_once(':') else {
                            return Err(format!(
                                "line {}: inventory entry `{entry}` is not `path:count`",
                                idx + 1
                            ));
                        };
                        let count: usize = count.parse().map_err(|_| {
                            format!(
                                "line {}: inventory count in `{entry}` is not a number",
                                idx + 1
                            )
                        })?;
                        config.d004_inventory.push((path.to_string(), count));
                    }
                }
                (sec, key) => {
                    return Err(format!(
                        "line {}: unknown key `{key}` in section [{sec}]",
                        idx + 1
                    ))
                }
            }
        }
        Ok(config)
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Whether every `[` has been matched by a `]` outside strings.
fn balanced(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_string = false;
    for c in value.chars() {
        match c {
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

/// Parses `"one"` or `["one", "two"]` into a list of strings.
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(inner) = value.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return Err("unclosed `[`".to_string());
        };
        let mut out = Vec::new();
        for piece in split_top_level_commas(inner) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue; // permits trailing commas
            }
            out.push(parse_string(piece)?);
        }
        Ok(out)
    } else {
        Ok(vec![parse_string(value)?])
    }
}

fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut pieces = Vec::new();
    let mut start = 0usize;
    let mut in_string = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                pieces.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    pieces.push(&s[start..]);
    pieces
}

fn parse_string(piece: &str) -> Result<String, String> {
    let Some(rest) = piece.strip_prefix('"') else {
        return Err(format!("expected a double-quoted string, found `{piece}`"));
    };
    let Some(body) = rest.strip_suffix('"') else {
        return Err(format!("unterminated string `{piece}`"));
    };
    if body.contains('"') {
        return Err(format!("stray quote inside `{piece}`"));
    }
    Ok(body.to_string())
}

/// `true` when `path` (root-relative, `/`-separated) is covered by an
/// entry list: directory entries (trailing `/`) match by prefix, file
/// entries match exactly.
pub fn path_matches(path: &str, entries: &[String]) -> bool {
    entries.iter().any(|e| {
        if e.ends_with('/') {
            path.starts_with(e.as_str())
        } else {
            path == e
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# workspace lint scope
[scan]
exclude = [
    "vendor/",    # offline dependency stubs
    "target/",
]

[rules.D001]
paths = ["crates/onion-graph/src/", "crates/sim/src/"]

[rules.D002]
allow = ["crates/bench/src/bin/run_experiments.rs"]

[rules.D003]
allow = []

[rules.D004]
inventory = ["crates/bench/src/bin/run_experiments.rs:1"]
"#;

    #[test]
    fn parses_the_full_schema() {
        let c = Config::parse(SAMPLE).unwrap();
        assert_eq!(c.exclude, vec!["vendor/", "target/"]);
        assert_eq!(
            c.d001_paths,
            vec!["crates/onion-graph/src/", "crates/sim/src/"]
        );
        assert_eq!(
            c.d002_allow,
            vec!["crates/bench/src/bin/run_experiments.rs"]
        );
        assert!(c.d003_allow.is_empty());
        assert_eq!(
            c.d004_inventory,
            vec![("crates/bench/src/bin/run_experiments.rs".to_string(), 1)]
        );
    }

    #[test]
    fn unknown_sections_and_keys_are_rejected() {
        assert!(Config::parse("[rules.D009]\npaths = []").is_err());
        assert!(Config::parse("[scan]\nexlcude = []").is_err());
        assert!(Config::parse("[rules.D001]\nallow = []").is_err());
    }

    #[test]
    fn malformed_inventory_entries_are_rejected() {
        assert!(Config::parse("[rules.D004]\ninventory = [\"no-count\"]").is_err());
        assert!(Config::parse("[rules.D004]\ninventory = [\"file:x\"]").is_err());
    }

    #[test]
    fn comments_inside_strings_survive() {
        let c = Config::parse("[scan]\nexclude = [\"weird#dir/\"]").unwrap();
        assert_eq!(c.exclude, vec!["weird#dir/"]);
    }

    #[test]
    fn path_matching_distinguishes_prefixes_from_files() {
        let dirs = vec!["crates/sim/src/".to_string()];
        assert!(path_matches("crates/sim/src/runner.rs", &dirs));
        assert!(!path_matches("crates/sim2/src/runner.rs", &dirs));
        let files = vec!["crates/sim/src/cache.rs".to_string()];
        assert!(path_matches("crates/sim/src/cache.rs", &files));
        assert!(!path_matches("crates/sim/src/cache.rs.bak", &files));
    }
}
