//! A small hand-written Rust lexer, just deep enough for linting.
//!
//! The rules in [`crate::rules`] match identifier sequences, so all the
//! lexer has to get *right* is what is and is not code: comments (line,
//! nested block), string literals (plain, byte, raw with any hash depth),
//! char and byte-char literals, and lifetimes must never contribute
//! identifier tokens, and comments must be captured verbatim so pragmas
//! (`// detlint: allow(D001) reason="..."`) can be recognized — while the
//! same text inside a string literal must *not* count as a pragma.
//!
//! A full parser (`syn`) would be overkill and is unavailable offline; a
//! regex over raw source would be wrong (every rule keyword appears in
//! docs and strings). The lexer is the smallest layer that is actually
//! sound for this job.

/// One lexed token that survives masking (identifiers and punctuation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// What the token is.
    pub kind: TokenKind,
}

/// Token payload. Numbers, strings, chars, lifetimes and comments are
/// deliberately dropped — rules never match them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `env`, ...).
    Ident(String),
    /// A single punctuation character (`:`, `(`, `.`, ...).
    Punct(char),
}

/// A comment, captured verbatim (without its delimiters) for pragma
/// scanning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs from `line` only for
    /// multi-line block comments).
    pub end_line: u32,
    /// The comment body, excluding `//`, `/*` and `*/`.
    pub text: String,
    /// `true` when code tokens precede the comment on its starting line
    /// (a trailing comment annotates its own line; a comment alone on a
    /// line annotates the next).
    pub trailing: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Identifier/punctuation tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Invalid source never panics: unterminated literals
/// and comments simply run to end of input.
pub fn lex(source: &str) -> LexOutput {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    /// Whether a code token has been emitted on the current line.
    line_has_code: bool,
    out: LexOutput,
    source: std::marker::PhantomData<&'a str>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            line_has_code: false,
            out: LexOutput::default(),
            source: std::marker::PhantomData,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.line_has_code = false;
            }
        }
        c
    }

    fn push_ident(&mut self, line: u32, text: String) {
        self.line_has_code = true;
        self.out.tokens.push(Token {
            line,
            kind: TokenKind::Ident(text),
        });
    }

    fn push_punct(&mut self, line: u32, c: char) {
        self.line_has_code = true;
        self.out.tokens.push(Token {
            line,
            kind: TokenKind::Punct(c),
        });
    }

    fn run(mut self) -> LexOutput {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.quote(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                c if c.is_ascii_digit() => self.number(),
                c if c.is_whitespace() => {
                    self.bump();
                }
                c => {
                    let line = self.line;
                    self.bump();
                    self.push_punct(line, c);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.line_has_code;
        self.bump();
        self.bump(); // the two slashes
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text,
            trailing,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let trailing = self.line_has_code;
        self.bump();
        self.bump(); // the `/*`
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break, // unterminated: runs to EOF
            }
        }
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text,
            trailing,
        });
    }

    /// A plain or byte string body, after the opening quote has been seen
    /// but not consumed. Handles `\"` and `\\` escapes; may span lines.
    fn string_literal(&mut self) {
        self.line_has_code = true;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // the escaped char, whatever it is
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// A raw string body `r##"..."##`: `hashes` pounds follow the `r`;
    /// the opening pounds and quote have not been consumed yet.
    fn raw_string_literal(&mut self, hashes: usize) {
        self.line_has_code = true;
        for _ in 0..hashes {
            self.bump();
        }
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    return;
                }
            }
        }
    }

    /// A `'`: either a char literal or a lifetime. For valid Rust the
    /// disambiguation is: `'` + escape is always a char; `'` + identifier
    /// run is a char literal iff a closing `'` immediately follows the
    /// run (lifetimes are never followed by `'`); anything else (`'('`,
    /// `' '`) is a char literal closed by the next `'`.
    fn quote(&mut self) {
        self.line_has_code = true;
        self.bump(); // the opening quote
        match self.peek(0) {
            Some('\\') => {
                self.bump();
                self.bump(); // escape head, e.g. `n` or `'` or `u`
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
            }
            Some(c) if is_ident_start(c) => {
                let mut run = 0usize;
                while self.peek(run).is_some_and(is_ident_continue) {
                    run += 1;
                }
                if self.peek(run) == Some('\'') {
                    // Char literal like 'a': consume run + closing quote.
                    for _ in 0..=run {
                        self.bump();
                    }
                } else {
                    // Lifetime: consume the name, emit nothing.
                    for _ in 0..run {
                        self.bump();
                    }
                }
            }
            Some(_) => {
                // Char literal of punctuation or whitespace: `'('`, `' '`.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
            }
            None => {}
        }
    }

    /// An identifier — or the prefix of a raw/byte literal (`r"..."`,
    /// `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`) or a raw identifier
    /// (`r#type`).
    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let mut ident = String::new();
        while self.peek(0).is_some_and(is_ident_continue) {
            ident.push(self.bump().expect("peek said a char is there"));
        }
        match (ident.as_str(), self.peek(0)) {
            ("r" | "br", Some('"')) => self.raw_string_literal(0),
            ("r" | "br", Some('#')) => {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    self.raw_string_literal(hashes);
                } else if ident == "r" && hashes == 1 && self.peek(1).is_some_and(is_ident_start) {
                    // Raw identifier `r#type`: skip the `#`, lex the name.
                    self.bump();
                    let mut raw = String::new();
                    while self.peek(0).is_some_and(is_ident_continue) {
                        raw.push(self.bump().expect("peek said a char is there"));
                    }
                    self.push_ident(line, raw);
                } else {
                    self.push_ident(line, ident);
                }
            }
            ("b", Some('"')) => self.string_literal(),
            ("b", Some('\'')) => self.quote(),
            _ => self.push_ident(line, ident),
        }
    }

    /// A numeric literal: consumed and dropped. Trailing type suffixes
    /// (`1u64`) are eaten with the number; a decimal point splits the
    /// literal into two harmless number tokens, which rules never match.
    fn number(&mut self) {
        self.line_has_code = true;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<(u32, String)> {
        lex(source)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some((t.line, s)),
                TokenKind::Punct(_) => None,
            })
            .collect()
    }

    #[test]
    fn idents_carry_line_numbers() {
        let got = idents("foo\nbar baz\n\nqux");
        assert_eq!(
            got,
            vec![
                (1, "foo".to_string()),
                (2, "bar".to_string()),
                (2, "baz".to_string()),
                (4, "qux".to_string()),
            ]
        );
    }

    #[test]
    fn strings_and_chars_do_not_leak_idents() {
        let got = idents(r#"let x = "HashMap thread_rng"; let c = 'H'; let e = '\u{41}';"#);
        let names: Vec<&str> = got.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(names, vec!["let", "x", "let", "c", "let", "e"]);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let got = idents(r#"let s = "a\"HashMap\""; after"#);
        let names: Vec<&str> = got.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(names, vec!["let", "s", "after"]);
    }

    #[test]
    fn raw_strings_with_hashes_are_masked() {
        let got = idents("let s = r#\"unsafe \"# HashMap \"#; done\"#; after");
        let names: Vec<&str> = got.iter().map(|(_, s)| s.as_str()).collect();
        // The raw string runs to the first `"#`, so HashMap IS code here.
        assert_eq!(names, vec!["let", "s", "HashMap", "after"]);
        let got = idents("let s = r##\"unsafe \"# HashMap\"##; after");
        let names: Vec<&str> = got.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(names, vec!["let", "s", "after"]);
    }

    #[test]
    fn byte_literals_are_masked() {
        let got = idents(r#"let s = b"HashMap"; let c = b'x'; after"#);
        let names: Vec<&str> = got.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(names, vec!["let", "s", "let", "c", "after"]);
    }

    #[test]
    fn raw_identifiers_lex_as_their_name() {
        let got = idents("fn r#unsafe() {}");
        let names: Vec<&str> = got.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(names, vec!["fn", "unsafe"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let got = idents("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x';");
        let names: Vec<&str> = got.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(names, vec!["fn", "f", "x", "str", "str", "x", "let", "c"]);
        // Neither lifetime names nor the char literal 'x' become idents.
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "before /* outer /* inner */ still-comment HashMap */ after";
        let names: Vec<String> = idents(src).into_iter().map(|(_, s)| s).collect();
        assert_eq!(names, vec!["before", "after"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn comments_know_whether_code_precedes_them() {
        let lexed = lex("let x = 1; // trailing\n// own line\nlet y = 2;");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn multiline_block_comment_tracks_end_line() {
        let lexed = lex("/* a\n b\n c */\nlet x = 1;");
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].end_line, 3);
    }

    #[test]
    fn unterminated_constructs_run_to_eof_without_panicking() {
        for src in ["\"never closed", "/* never closed", "r#\"never closed", "'"] {
            let _ = lex(src);
        }
    }
}
