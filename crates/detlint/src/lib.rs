//! detlint — the workspace determinism lint.
//!
//! Byte-identical replay for a fixed seed is the invariant every
//! subsystem here is built on: cache fingerprints replay stored results,
//! executor backends must be output-indistinguishable, and the daemon's
//! `Done` summaries must match one-shot runs. That invariant has been
//! broken twice by the same bug class — hash-randomized `HashMap`/
//! `HashSet` iteration leaking into RNG streams — so it is now enforced
//! by a tool instead of reviewer vigilance.
//!
//! `cargo run -p detlint -- --deny` lexes every Rust source in the
//! workspace (a hand-written lexer: comments, strings, raw strings, char
//! literals — see [`lexer`]) and applies the rule catalog in [`rules`],
//! scoped by the checked-in `detlint.toml` ([`config`]). Findings are
//! suppressible only by an in-source pragma with a mandatory reason
//! ([`pragma`]). Diagnostics are stable (`file:line: D00N message`,
//! sorted) and available as JSON for CI.
//!
//! See `DESIGN.md` § "Determinism lint" for the rationale and the full
//! rule catalog.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod pragma;
pub mod rules;

use std::path::{Path, PathBuf};

pub use config::Config;
pub use rules::{Violation, RULE_IDS};

/// Directory names never descended into, regardless of configuration.
const ALWAYS_SKIPPED_DIRS: [&str; 2] = ["target", ".git"];

/// Lints every `.rs` file under `root`, applying `config`.
///
/// Files are visited in sorted path order and diagnostics are sorted by
/// `(file, line, rule)`, so output is stable across filesystems.
///
/// # Errors
/// Returns an error string for I/O failures (unreadable directories or
/// files) — those must fail the lint run loudly, not skip files.
pub fn run_workspace(root: &Path, config: &Config) -> Result<Vec<Violation>, String> {
    let mut files = Vec::new();
    collect_rust_files(root, root, config, &mut files)?;
    files.sort();

    let mut violations = Vec::new();
    let mut seen: Vec<&str> = Vec::new();
    for rel in &files {
        let full = root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR));
        let source = std::fs::read_to_string(&full)
            .map_err(|e| format!("failed to read {}: {e}", full.display()))?;
        violations.extend(rules::check_file(rel, &source, config));
        seen.push(rel.as_str());
    }

    // Inventory completeness: a D004 entry pointing at a file that no
    // longer exists (or was excluded) is stale and must be cleaned up.
    for (file, _) in &config.d004_inventory {
        if !seen.contains(&file.as_str()) {
            violations.push(Violation {
                file: file.clone(),
                line: 1,
                rule: "D004",
                message: "D004 inventory names a file that was not scanned; \
                          remove the stale entry from detlint.toml"
                    .to_string(),
            });
        }
    }

    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(violations)
}

fn collect_rust_files(
    root: &Path,
    dir: &Path,
    config: &Config,
    out: &mut Vec<String>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = relative_slash_path(root, &path);
        if path.is_dir() {
            if ALWAYS_SKIPPED_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            let rel_dir = format!("{rel}/");
            if config
                .exclude
                .iter()
                .any(|e| rel_dir.starts_with(e.as_str()))
            {
                continue;
            }
            collect_rust_files(root, &path, config, out)?;
        } else if name.ends_with(".rs") && !config::path_matches(&rel, &config.exclude) {
            out.push(rel);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated on every platform.
fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for component in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&component.as_os_str().to_string_lossy());
    }
    s
}

/// Loads `detlint.toml` from `root`.
///
/// # Errors
/// Returns an error string when the file is missing or malformed.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("detlint.toml");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
    Config::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Finds the workspace root: the nearest ancestor of `start` containing
/// `detlint.toml`. Lets `cargo run -p detlint` work from any subdirectory.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("detlint.toml").is_file() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

/// Renders violations as a JSON array (for `--json` / CI consumption).
/// Hand-rolled so the lint stays dependency-free.
pub fn to_json(violations: &[Violation]) -> String {
    let mut out = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape_json(&v.file),
            v.line,
            v.rule,
            escape_json(&v.message)
        ));
    }
    if !violations.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_escapes_and_stays_valid() {
        let v = vec![Violation {
            file: "a\"b.rs".to_string(),
            line: 3,
            rule: "D001",
            message: "say \"no\"\n".to_string(),
        }];
        let json = to_json(&v);
        assert!(json.contains(r#""file": "a\"b.rs""#));
        assert!(json.contains(r#"\n"#));
        assert_eq!(to_json(&[]), "[]");
    }

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/workspace");
        let file = Path::new("/workspace/crates/sim/src/runner.rs");
        assert_eq!(relative_slash_path(root, file), "crates/sim/src/runner.rs");
    }
}
