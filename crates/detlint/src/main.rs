//! CLI front-end: `cargo run -p detlint -- [--deny] [--json] [--root DIR]`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
Usage: detlint [options]

Lints every Rust source in the workspace against the determinism rule
catalog (D001 hash containers on RNG-adjacent paths, D002 wall clock /
OS entropy, D003 environment reads, D004 unsafe inventory, D005 pragma
hygiene), scoped by the checked-in detlint.toml.

Options:
  --deny        exit non-zero when any violation is found (CI mode)
  --json        print findings as a JSON array instead of file:line text
  --root DIR    workspace root (default: nearest ancestor of the current
                directory containing detlint.toml)
  -h, --help    show this help
";

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("detlint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("detlint: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("detlint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match detlint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "detlint: no detlint.toml found in {} or any ancestor; \
                         pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let config = match detlint::load_config(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };

    let violations = match detlint::run_workspace(&root, &config) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", detlint::to_json(&violations));
    } else {
        for v in &violations {
            println!("{v}");
        }
    }
    if violations.is_empty() {
        eprintln!("detlint: workspace is clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "detlint: {} violation(s){}",
            violations.len(),
            if deny {
                ""
            } else {
                " (advisory; use --deny to fail)"
            }
        );
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
