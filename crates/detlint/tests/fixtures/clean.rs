//! A tricky but clean file: every hazard mention below sits inside a
//! comment, string, raw string or char literal, so detlint must report
//! nothing at all. Doc text may even show the pragma syntax:
//! `// detlint: allow(D001) reason="docs"`.

fn lifetimes_and_chars<'a>(x: &'a str) -> (&'a str, char, char) {
    (x, 'u', '\u{41}')
}

fn strings() -> Vec<String> {
    vec![
        "HashMap HashSet unsafe".to_string(),
        "SystemTime::now Instant::now thread_rng OsRng".to_string(),
        "env::var env::set_var".to_string(),
        r#"raw: HashMap unsafe"#.to_string(),
        r##"raw with "# inside: thread_rng"##.to_string(),
        "// detlint: allow(D001) reason=\"inert\"".to_string(),
        String::from_utf8_lossy(b"byte string: HashMap").into_owned(),
    ]
}

/* Block comments nest: /* HashMap unsafe env::var */ still a comment. */
fn done() {}
