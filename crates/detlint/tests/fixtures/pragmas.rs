// Pragma corpus: suppression, misuse and hygiene (rule D005).
use std::collections::HashMap; // detlint: allow(D001) reason="corpus: justified trailing pragma on an import"

fn suppressed_by_own_line_pragma() {
    // detlint: allow(D001) reason="corpus: own-line pragma covers the next line"
    let _m: HashMap<u8, u8> = HashMap::new();
}

fn unsuppressed() {
    let _m: HashMap<u8, u8> = std::collections::HashMap::new(); //~ D001 D001
}

fn wrong_rule_suppresses_nothing() {
    //~v D001 D005
    let _s = HashSet::new(); // detlint: allow(D002) reason="corpus: wrong rule id"
}

//~v D005
// detlint: allow(D001) reason="corpus: unused pragma on a hazard-free line"
fn hazard_free() {}

//~v D005
// detlint: allow(D001)
fn missing_reason() {}

//~v D005
// detlint: allow(D999) reason="corpus: unknown rule id"
fn unknown_rule() {}

fn inert_mentions() -> &'static str {
    // A pragma inside a string literal is text, not a pragma:
    "// detlint: allow(D001) reason=\"inert\""
}

/// Doc comments may quote the syntax freely:
/// `// detlint: allow(D001) reason="docs"`.
fn documented() {}
