// D002 corpus: wall-clock and OS-entropy sources.
use rand::rngs::OsRng; //~ D002

fn timing() {
    let _wall = std::time::SystemTime::now(); //~ D002
    let _mono = std::time::Instant::now(); //~ D002
}

fn waiting() {
    std::thread::sleep(std::time::Duration::from_millis(5)); //~ D002
    // Non-wait thread:: members must not fire:
    let _h = std::thread::spawn(|| {});
    std::thread::yield_now();
}

fn entropy() {
    let _ambient = rand::thread_rng(); //~ D002
    let _unseeded = StdRng::from_entropy(); //~ D002
}

// `Instant` without `::now` must not fire, nor mentions in text:
// SystemTime::now, thread_rng.
fn clean(instant: Instant) -> Instant {
    let _text = "Instant::now OsRng from_entropy";
    instant
}
