// Corpus for the sharded-overlay RNG-splitting discipline
// (`onionbots-core::shard`, DESIGN.md § "Sharded overlay"): per-shard
// streams are seeded via `shard_stream_seed(base, shard)` where `base`
// is ONE draw from the sequential part stream — the shard index, never
// the worker thread, keys the stream. This fixture pins that the lint
// rejects the two tempting shortcuts on a shard path and stays quiet on
// the sanctioned idiom.

// Shortcut 1: hash-ordered bookkeeping for shard-local state. Iteration
// order would feed the merge pass, so D001 fires like anywhere else on
// an RNG-adjacent path.
use std::collections::HashMap; //~ D001

fn shard_buckets() {
    let mut per_shard: HashMap<usize, Vec<u64>> = HashMap::new(); //~ D001 D001
    per_shard.entry(0).or_default().push(1);
    let _ = per_shard;
}

// Shortcut 2: seeding a shard worker from wall clock or OS entropy
// instead of splitting from the part stream — byte-identity across
// thread counts dies instantly.
fn shard_worker_seed_from_ambient_entropy() {
    let _wall = std::time::Instant::now(); //~ D002
    let _ambient = rand::thread_rng(); //~ D002
}

// The sanctioned idiom: derive each shard's seed from one drawn base
// with a pure mix, then seed a fresh StdRng per shard. No findings.
fn sanctioned_split(base: u64, shards: usize) {
    for shard in 0..shards {
        let seed = shard_stream_seed(base, shard);
        let rng = StdRng::seed_from_u64(seed);
        let _ = rng;
    }
}

fn shard_stream_seed(base: u64, shard: usize) -> u64 {
    let mut z = base ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
