// D003 corpus: process-environment access.
fn read_environment() {
    let _a = std::env::var("ONIONBOTS_SEED"); //~ D003
    let _b = std::env::var_os("ONIONBOTS_SEED"); //~ D003
    let _n = std::env::vars().count(); //~ D003
    let _m = std::env::vars_os().count(); //~ D003
}

fn write_environment() {
    std::env::set_var("ONIONBOTS_SEED", "1"); //~ D003
    std::env::remove_var("ONIONBOTS_SEED"); //~ D003
}

// `env` not followed by a read member must not fire, nor text mentions:
// env::var in a comment.
fn clean(env: &str) -> usize {
    let _text = "env::var env::set_var";
    env.len()
}
