// D004 corpus: `unsafe` outside any inventory — each token is one
// finding. The corpus test also replays this file with an inventory
// pinning the exact count (no findings) and a drifted count (one
// drift finding).
static mut COUNTER: u64 = 0;

fn bump() -> u64 {
    unsafe { //~ D004
        COUNTER += 1;
        COUNTER
    }
}

unsafe fn raw_read(p: *const u64) -> u64 { //~ D004
    *p
}

// Mentions that must NOT fire: unsafe in a comment.
fn clean_mention() -> &'static str {
    "unsafe in a string"
}
