// D001 corpus: hash containers on an RNG-adjacent path. Each rule id
// in a marker comment is one expected firing on that line.
use std::collections::HashMap; //~ D001
use std::collections::{BTreeMap, HashSet}; //~ D001

fn build_tables() {
    let mut index: HashMap<u64, u64> = HashMap::new(); //~ D001 D001
    let mut seen: HashSet<u64> = HashSet::new(); //~ D001 D001
    index.insert(1, 2);
    seen.insert(3);
    let ordered: BTreeMap<u64, u64> = BTreeMap::new();
    let _ = (index, seen, ordered);
}

// Mentions that must NOT fire:
// HashMap in a line comment.
/* HashSet in a block comment. */
fn clean_mentions() -> &'static str {
    "HashMap and HashSet in a string"
}
