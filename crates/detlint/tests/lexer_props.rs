//! Property tests for the lexer/pragma layer: randomized *structural*
//! composition of line-sized segments (code, comments, strings, raw
//! strings, pragmas), since the vendored proptest stub has no string
//! strategies.
//!
//! The properties are the ones the rule engine leans on:
//! * hazard identifiers are counted only when they are code — never
//!   from comments, strings, raw strings or doc text;
//! * pragmas parse exactly when a comment starts with the marker, so
//!   quoting the syntax in strings or doc comments is inert;
//! * token and comment line numbers are monotone non-decreasing, and
//!   the lexer never panics on any segment composition.

use detlint::lexer::{lex, TokenKind};
use detlint::pragma;
use proptest::collection::vec;
use proptest::prelude::*;

/// One line-sized building block: what it contributes to the source and
/// what the lexer must make of it.
struct Segment {
    text: &'static str,
    /// `HashMap` idents the lexer must produce for this line.
    hashmap_idents: usize,
    /// Valid pragmas the pragma parser must accept on this line.
    pragmas: usize,
}

const SEGMENTS: [Segment; 8] = [
    Segment {
        text: "let HashMap = HashMap;\n",
        hashmap_idents: 2,
        pragmas: 0,
    },
    Segment {
        text: "// HashMap thread_rng unsafe\n",
        hashmap_idents: 0,
        pragmas: 0,
    },
    Segment {
        text: "/* HashMap /* nested unsafe */ tail */\n",
        hashmap_idents: 0,
        pragmas: 0,
    },
    Segment {
        text: "let s = \"HashMap detlint: allow(D001) reason=\\\"x\\\"\";\n",
        hashmap_idents: 0,
        pragmas: 0,
    },
    Segment {
        text: "let r = r##\"HashMap \"# unsafe\"##;\n",
        hashmap_idents: 0,
        pragmas: 0,
    },
    Segment {
        text: "let c = 'H'; // detlint: allow(D001) reason=\"p\"\n",
        hashmap_idents: 0,
        pragmas: 1,
    },
    Segment {
        text: "//! doc detlint: allow(D001) reason=\"quoted, inert\"\n",
        hashmap_idents: 0,
        pragmas: 0,
    },
    Segment {
        text: "fn f<'a>(x: &'a str) -> &'a str { x }\n",
        hashmap_idents: 0,
        pragmas: 0,
    },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hazard_idents_come_only_from_code(picks in vec(0usize..SEGMENTS.len(), 0..24usize)) {
        let mut source = String::new();
        let mut expected_idents = 0;
        let mut expected_pragmas = 0;
        for &p in &picks {
            source.push_str(SEGMENTS[p].text);
            expected_idents += SEGMENTS[p].hashmap_idents;
            expected_pragmas += SEGMENTS[p].pragmas;
        }

        let lexed = lex(&source);
        let hashmaps = lexed
            .tokens
            .iter()
            .filter(|t| matches!(&t.kind, TokenKind::Ident(name) if name == "HashMap"))
            .count();
        prop_assert_eq!(hashmaps, expected_idents, "source:\n{}", source);

        let mut valid = 0;
        for comment in &lexed.comments {
            match pragma::parse(comment) {
                Some(Ok(p)) => {
                    valid += 1;
                    prop_assert_eq!(&p.rules, &vec!["D001".to_string()]);
                    prop_assert!(!p.reason.is_empty());
                }
                Some(Err(e)) => prop_assert!(false, "unexpected malformed pragma: {}", e),
                None => {}
            }
        }
        prop_assert_eq!(valid, expected_pragmas, "source:\n{}", source);
    }

    #[test]
    fn line_numbers_are_monotone_and_in_range(picks in vec(0usize..SEGMENTS.len(), 0..24usize)) {
        let source: String = picks.iter().map(|&p| SEGMENTS[p].text).collect();
        let lexed = lex(&source);
        let line_count = source.lines().count() as u32;
        let mut last = 1;
        for token in &lexed.tokens {
            prop_assert!(token.line >= last, "tokens must not go backwards");
            prop_assert!(token.line <= line_count.max(1));
            last = token.line;
        }
        let mut last = 1;
        for comment in &lexed.comments {
            prop_assert!(comment.line >= last);
            prop_assert!(comment.end_line >= comment.line);
            prop_assert!(comment.line <= line_count.max(1));
            last = comment.line;
        }
    }

    #[test]
    fn lexer_never_panics_on_arbitrary_soup(bytes in vec(0usize..ALPHABET.len(), 0..80usize)) {
        // Adversarial character soup over the delimiters the lexer cares
        // about: quotes, hashes, slashes, stars, backslashes, newlines.
        let source: String = bytes.iter().map(|&b| ALPHABET[b]).collect();
        let lexed = lex(&source);
        // No token can claim a line past the end of the source.
        let line_count = source.lines().count().max(1) as u32;
        for token in &lexed.tokens {
            prop_assert!(token.line <= line_count);
        }
    }
}

const ALPHABET: [char; 16] = [
    '"', '\'', '/', '*', '#', 'r', 'b', '\\', '\n', ' ', 'H', 'a', ':', '(', ')', '!',
];
