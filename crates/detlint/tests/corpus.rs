//! Known-bad fixture corpus pinning every rule firing at an expected
//! `file:line`.
//!
//! Each fixture under `tests/fixtures/` annotates its own expectations:
//! a `//~ D00N [D00N...]` marker lists the firings expected on *that*
//! line, and `//~v D00N [D00N...]` (on its own line) the firings
//! expected on the *next* line — used where the line under test already
//! carries a pragma comment. Fixtures are excluded from the workspace
//! scan by `detlint.toml`, so the hazards they contain never leak into
//! the self-run check.

use std::path::{Path, PathBuf};

use detlint::config::Config;
use detlint::rules::check_file;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The corpus config: D001 scoped to the fixtures, no exemptions, no
/// unsafe inventory — every hazard is in scope.
fn corpus_config() -> Config {
    let mut config = Config::default();
    config.d001_paths.push("fixtures/".to_string());
    config
}

/// Extracts `(line, rule)` expectations from a fixture's markers.
fn expectations(source: &str) -> Vec<(u32, String)> {
    let mut expected = Vec::new();
    for (idx, text) in source.lines().enumerate() {
        let Some(pos) = text.find("//~") else {
            continue;
        };
        let rest = &text[pos + 3..];
        let (line, spec) = match rest.strip_prefix('v') {
            Some(next_line_spec) => (idx as u32 + 2, next_line_spec),
            None => (idx as u32 + 1, rest),
        };
        for rule in spec.split_whitespace() {
            assert!(
                detlint::RULE_IDS.contains(&rule),
                "bad marker token {rule:?} in fixture"
            );
            expected.push((line, rule.to_string()));
        }
    }
    expected.sort();
    expected
}

/// Runs one fixture and compares the full `(line, rule)` multiset plus
/// the rendered diagnostic prefix against the inline markers.
fn run_fixture(name: &str) {
    let source = std::fs::read_to_string(fixture_path(name)).expect("fixture readable");
    let rel = format!("fixtures/{name}");
    let mut got: Vec<(u32, String)> = check_file(&rel, &source, &corpus_config())
        .into_iter()
        .map(|v| {
            let rendered = v.to_string();
            assert!(
                rendered.starts_with(&format!("{rel}:{}: {} ", v.line, v.rule)),
                "diagnostic must render as file:line: RULE message, got {rendered:?}"
            );
            (v.line, v.rule.to_string())
        })
        .collect();
    got.sort();
    assert_eq!(got, expectations(&source), "fixture {name}");
}

#[test]
fn d001_hash_containers() {
    run_fixture("d001_hash_containers.rs");
}

#[test]
fn d001_shard_rng_split() {
    run_fixture("d001_shard_rng_split.rs");
}

#[test]
fn d002_time_and_entropy() {
    run_fixture("d002_time_and_entropy.rs");
}

#[test]
fn d003_env_reads() {
    run_fixture("d003_env_reads.rs");
}

#[test]
fn d004_unsafe() {
    run_fixture("d004_unsafe.rs");
}

#[test]
fn pragmas() {
    run_fixture("pragmas.rs");
}

#[test]
fn clean_file_reports_nothing() {
    run_fixture("clean.rs"); // no markers -> expectation is empty
}

#[test]
fn d004_inventory_pins_exact_counts() {
    let rel = "fixtures/d004_unsafe.rs";
    let source = std::fs::read_to_string(fixture_path("d004_unsafe.rs")).expect("fixture");
    let mut config = corpus_config();

    // The right count: the file is fully accounted for.
    config.d004_inventory.push((rel.to_string(), 2));
    assert_eq!(check_file(rel, &source, &config), vec![]);

    // A drifted count (in either direction) is exactly one finding.
    config.d004_inventory[0].1 = 1;
    let drifted = check_file(rel, &source, &config);
    assert_eq!(drifted.len(), 1);
    assert_eq!(drifted[0].rule, "D004");
    assert!(drifted[0].message.contains("drifted"), "{}", drifted[0]);
}

#[test]
fn d002_and_d003_allow_lists_exempt_whole_files() {
    let mut config = corpus_config();
    config
        .d002_allow
        .push("fixtures/d002_time_and_entropy.rs".to_string());
    config
        .d003_allow
        .push("fixtures/d003_env_reads.rs".to_string());
    for name in ["d002_time_and_entropy.rs", "d003_env_reads.rs"] {
        let source = std::fs::read_to_string(fixture_path(name)).expect("fixture");
        assert_eq!(
            check_file(&format!("fixtures/{name}"), &source, &config),
            vec![],
            "{name} must be fully exempted by its allow entry"
        );
    }
}

#[test]
fn d001_does_not_apply_off_the_scoped_paths() {
    let source = std::fs::read_to_string(fixture_path("d001_hash_containers.rs")).expect("fixture");
    // Same file, but addressed outside every [rules.D001] path prefix.
    let config = corpus_config();
    assert_eq!(
        check_file("elsewhere/d001_hash_containers.rs", &source, &config),
        vec![],
        "hash containers are only a finding on RNG-adjacent paths"
    );
}
