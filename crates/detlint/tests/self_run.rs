//! The lint must hold on the workspace that ships it: this is the same
//! check CI runs as `cargo run -p detlint -- --deny`, expressed as a
//! test so `cargo test` alone catches a regression.

use std::path::Path;

#[test]
fn workspace_is_clean_under_the_checked_in_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("detlint lives two levels under the workspace root");
    assert!(
        root.join("detlint.toml").is_file(),
        "workspace root must carry detlint.toml"
    );
    let config = detlint::load_config(root).expect("checked-in detlint.toml must parse");
    let violations = detlint::run_workspace(root, &config).expect("scan must complete");
    assert!(
        violations.is_empty(),
        "workspace must be detlint-clean:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
