//! Configuration of the DDSR overlay.

use serde::{Deserialize, Serialize};

/// Parameters of the Dynamic Distributed Self-Repairing overlay (§IV-C).
///
/// The paper keeps every node's degree inside `[d_min, d_max]`: repair adds
/// edges between a deleted node's neighbors, pruning removes the
/// highest-degree peers when a node exceeds `d_max`, and `d_min` "is only
/// applicable as long as there are enough surviving nodes".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DdsrConfig {
    /// Lower bound on the desired node degree.
    pub d_min: usize,
    /// Upper bound on the node degree enforced by pruning.
    pub d_max: usize,
    /// Whether the pruning mechanism is enabled (Figure 4 compares both).
    pub pruning: bool,
}

impl DdsrConfig {
    /// Configuration matching the paper's evaluation for an initial
    /// `k`-regular overlay: pruning keeps the degree at or below `k`, and
    /// the lower bound is half of `k` (at least 2).
    pub fn for_degree(k: usize) -> Self {
        DdsrConfig {
            d_min: (k / 2).max(2),
            d_max: k.max(2),
            pruning: true,
        }
    }

    /// Same degree targets but with pruning disabled (the "without pruning"
    /// series of Figure 4).
    pub fn without_pruning(k: usize) -> Self {
        DdsrConfig {
            pruning: false,
            ..Self::for_degree(k)
        }
    }
}

impl Default for DdsrConfig {
    fn default() -> Self {
        DdsrConfig::for_degree(10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_degree_tracks_k() {
        let c = DdsrConfig::for_degree(10);
        assert_eq!(c.d_max, 10);
        assert_eq!(c.d_min, 5);
        assert!(c.pruning);
    }

    #[test]
    fn small_degrees_are_clamped() {
        let c = DdsrConfig::for_degree(1);
        assert!(c.d_min >= 2);
        assert!(c.d_max >= 2);
    }

    #[test]
    fn without_pruning_only_disables_pruning() {
        let with = DdsrConfig::for_degree(5);
        let without = DdsrConfig::without_pruning(5);
        assert!(!without.pruning);
        assert_eq!(with.d_min, without.d_min);
        assert_eq!(with.d_max, without.d_max);
    }

    #[test]
    fn default_matches_paper_headline_setting() {
        assert_eq!(DdsrConfig::default(), DdsrConfig::for_degree(10));
    }
}
