//! Periodic `.onion` address rotation ("forgetting", §IV-C / §IV-D).
//!
//! "each bot can periodically change his `.onion` address and announce the
//! new address to his current peer list. The new `.onion` address is
//! generated based on a secret key and time." Both the bot and the botmaster
//! derive the same address sequence from the shared key `K_B`, so the C&C can
//! always reach a bot even though every externally observed address is
//! short-lived.
//!
//! For scale, the rotation used by the overlay derives the 80-bit onion
//! identifier directly from the period secret instead of generating a fresh
//! RSA key per period per bot; the *sequence structure* (deterministic from
//! `(PK_CC, K_B, period)`, unlinkable without `K_B`) is what the experiments
//! rely on, and [`rotated_service_key_seed`] exposes the seed a full
//! RSA-backed rotation would use.

use onion_crypto::kdf::{derive_period_secret, derive_period_seed};
use onion_crypto::rsa::RsaPublicKey;
use serde::{Deserialize, Serialize};
use tor_sim::onion::OnionAddress;

/// The address schedule of a single bot: everything needed to compute its
/// onion address for any period.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressSchedule {
    k_b: [u8; 32],
    pk_cc_bytes: Vec<u8>,
}

impl AddressSchedule {
    /// Creates a schedule from the bot's symmetric key and the botmaster's
    /// public key.
    pub fn new(pk_cc: &RsaPublicKey, k_b: [u8; 32]) -> Self {
        AddressSchedule {
            k_b,
            pk_cc_bytes: pk_cc.to_bytes(),
        }
    }

    /// The bot's onion address during `period`.
    pub fn address_for_period(&self, period: u64) -> OnionAddress {
        let pk_cc = RsaPublicKey::from_bytes(&self.pk_cc_bytes)
            .expect("schedule always stores a valid key encoding");
        let secret = derive_period_secret(&pk_cc, &self.k_b, period);
        let mut identifier = [0u8; 10];
        identifier.copy_from_slice(&secret[..10]);
        OnionAddress::from_identifier(identifier)
    }

    /// Seed for the RSA key a fully faithful implementation would generate
    /// for `period` (exposed so tests can demonstrate the equivalence).
    pub fn rotated_service_key_seed(&self, period: u64) -> u64 {
        let pk_cc = RsaPublicKey::from_bytes(&self.pk_cc_bytes)
            .expect("schedule always stores a valid key encoding");
        derive_period_seed(&pk_cc, &self.k_b, period)
    }

    /// The addresses for a consecutive range of periods.
    pub fn addresses(&self, periods: std::ops::Range<u64>) -> Vec<OnionAddress> {
        periods.map(|p| self.address_for_period(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_crypto::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn schedule(seed: u64) -> (AddressSchedule, AddressSchedule) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cc = RsaKeyPair::generate(512, &mut rng);
        let k_b: [u8; 32] = rng.gen();
        // Bot side and botmaster side build the schedule independently from
        // the same inputs.
        let bot = AddressSchedule::new(cc.public(), k_b);
        let master = AddressSchedule::new(cc.public(), k_b);
        (bot, master)
    }

    #[test]
    fn bot_and_botmaster_derive_identical_addresses() {
        let (bot, master) = schedule(1);
        for period in 0..20 {
            assert_eq!(
                bot.address_for_period(period),
                master.address_for_period(period)
            );
        }
    }

    #[test]
    fn addresses_change_every_period() {
        let (bot, _) = schedule(2);
        let addresses = bot.addresses(0..50);
        for i in 0..addresses.len() {
            for j in i + 1..addresses.len() {
                assert_ne!(addresses[i], addresses[j], "periods {i} and {j} collided");
            }
        }
    }

    #[test]
    fn different_bots_never_collide() {
        let mut rng = StdRng::seed_from_u64(3);
        let cc = RsaKeyPair::generate(512, &mut rng);
        let a = AddressSchedule::new(cc.public(), rng.gen());
        let b = AddressSchedule::new(cc.public(), rng.gen());
        for period in 0..20 {
            assert_ne!(a.address_for_period(period), b.address_for_period(period));
        }
    }

    #[test]
    fn schedule_is_deterministic_across_serialization() {
        let (bot, _) = schedule(4);
        let json = serde_json::to_string(&bot).unwrap();
        let restored: AddressSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.address_for_period(7), bot.address_for_period(7));
        assert_eq!(
            restored.rotated_service_key_seed(7),
            bot.rotated_service_key_seed(7)
        );
    }
}
