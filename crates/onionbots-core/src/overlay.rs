//! The Dynamic Distributed Self-Repairing (DDSR) overlay — the paper's
//! primary contribution (§IV-C).
//!
//! The overlay is a peer-to-peer graph in which every node knows its
//! neighbors *and its neighbors' neighbors* (NoN). Three mechanisms keep it
//! low-degree, low-diameter and partition-resistant under takedowns:
//!
//! * **Repairing** — when node `u` is deleted, every pair of its neighbors
//!   `(u_j, u_k)` forms an edge if one does not already exist. Because each
//!   neighbor already knows `u`'s other neighbors (NoN knowledge), this needs
//!   no lookup or coordinator.
//! * **Pruning** — repairs increase degrees, so each former neighbor of the
//!   deleted node drops its highest-degree peers (random tie-break) until its
//!   degree is back inside `[d_min, d_max]`.
//! * **Forgetting** — pruned peers' addresses are forgotten, and nodes
//!   periodically rotate their `.onion` addresses (see [`crate::rotation`]).

use std::collections::BTreeSet;

use onion_graph::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::DdsrConfig;

/// Counters describing the maintenance work the overlay has performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairStats {
    /// Nodes removed with the self-repair protocol active.
    pub nodes_repaired: u64,
    /// Nodes removed without repair (baseline comparisons).
    pub nodes_removed_without_repair: u64,
    /// Edges added by the repair step.
    pub edges_added: u64,
    /// Edges removed by the pruning step.
    pub edges_pruned: u64,
}

/// The DDSR overlay: a ground-truth adjacency graph plus the maintenance
/// protocol that reacts to node removals.
#[derive(Debug, Clone)]
pub struct DdsrOverlay {
    graph: Graph,
    config: DdsrConfig,
    stats: RepairStats,
}

impl DdsrOverlay {
    /// Wraps an existing graph in the DDSR maintenance protocol.
    pub fn from_graph(graph: Graph, config: DdsrConfig) -> Self {
        DdsrOverlay {
            graph,
            config,
            stats: RepairStats::default(),
        }
    }

    /// Builds a fresh overlay as a random `k`-regular graph on `n` nodes —
    /// the starting point of every experiment in §V.
    pub fn new_regular<R: Rng + ?Sized>(
        n: usize,
        k: usize,
        config: DdsrConfig,
        rng: &mut R,
    ) -> (Self, Vec<NodeId>) {
        let (graph, ids) = onion_graph::generators::random_regular(n, k, rng);
        (Self::from_graph(graph, config), ids)
    }

    /// Builds a fresh overlay with [`sharded construction`](crate::shard):
    /// the pairing model runs per shard on streams split from `rng` (one
    /// draw), shards assemble in ascending order, and a deterministic
    /// merge pass stitches them — byte-identical at any worker-thread
    /// count, fanned out up to the ambient
    /// [`thread_budget`](onion_graph::budget::thread_budget).
    pub fn new_regular_sharded<R: Rng + ?Sized>(
        n: usize,
        k: usize,
        config: DdsrConfig,
        grid: &crate::shard::ShardGrid,
        rng: &mut R,
    ) -> (Self, Vec<NodeId>) {
        let (graph, ids) = crate::shard::build_sharded_regular(n, k, grid, rng);
        (Self::from_graph(graph, config), ids)
    }

    /// The overlay configuration.
    pub fn config(&self) -> DdsrConfig {
        self.config
    }

    /// Read access to the underlying graph (for metrics).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Maintenance counters accumulated so far.
    pub fn stats(&self) -> RepairStats {
        self.stats
    }

    /// The peer list of a node (its one-hop neighbors), if it is alive.
    pub fn peers(&self, node: NodeId) -> Option<Vec<NodeId>> {
        self.graph.neighbors(node).map(<[NodeId]>::to_vec)
    }

    /// The Neighbors-of-Neighbor view of a node: every peer of its peers,
    /// excluding the node itself. This is exactly the knowledge the repair
    /// step relies on.
    pub fn neighbors_of_neighbors(&self, node: NodeId) -> Option<BTreeSet<NodeId>> {
        let peers = self.graph.neighbors(node)?;
        let mut non = BTreeSet::new();
        for &p in peers {
            if let Some(pp) = self.graph.neighbors(p) {
                for &q in pp {
                    if q != node {
                        non.insert(q);
                    }
                }
            }
        }
        Some(non)
    }

    /// Removes a node *with* the self-healing protocol: repair then
    /// (optionally) prune. Returns `false` if the node was already gone.
    pub fn remove_node_with_repair<R: Rng + ?Sized>(&mut self, node: NodeId, rng: &mut R) -> bool {
        let Some(former_neighbors) = self.graph.remove_node(node) else {
            return false;
        };
        self.stats.nodes_repaired += 1;

        // Repairing: every pair of former neighbors peers up unless the edge
        // already exists. Each of them knew the others through NoN knowledge.
        for i in 0..former_neighbors.len() {
            for j in i + 1..former_neighbors.len() {
                if self
                    .graph
                    .add_edge(former_neighbors[i], former_neighbors[j])
                {
                    self.stats.edges_added += 1;
                }
            }
        }

        // Pruning: each former neighbor sheds highest-degree peers until it
        // is back within [d_min, d_max].
        if self.config.pruning {
            for &u in &former_neighbors {
                self.prune_node(u, rng);
            }
        }
        true
    }

    /// Removes a whole wave of nodes with *batched* repair: all victims go
    /// down first, then the repair edge-insertions are coalesced, then a
    /// **single prune pass** runs over the affected survivors (each pruned
    /// once, in ascending id order) instead of once per victim. Returns the
    /// number of nodes actually removed.
    ///
    /// This models a coordinated takedown (*Master of Puppets*-style
    /// campaigns, the §VII-A sweeps, the `scale` scenario's churn waves)
    /// and does `O(wave)` less pruning work than calling
    /// [`Self::remove_node_with_repair`] per victim.
    ///
    /// **Semantics versus sequential removal.** For victims that are not
    /// adjacent and whose repairs never push a survivor past `d_max`, the
    /// result is identical to sequential removal. The two diverge when
    /// victims are adjacent: sequentially, removing `a` first grafts repair
    /// edges onto its neighbor `b`, and `b`'s own later removal then spreads
    /// those second-hand edges further; in the batch, `a`–`b` knowledge dies
    /// with the wave (a dead neighbor cannot accept repair edges), which
    /// matches simultaneous takedowns — both bots are gone before either
    /// repair runs. Pruning can also differ when victims share survivors:
    /// the batch prunes each survivor once against its final degree rather
    /// than once per incident victim.
    pub fn remove_nodes<R: Rng + ?Sized>(&mut self, victims: &[NodeId], rng: &mut R) -> usize {
        let mut neighborhoods: Vec<Vec<NodeId>> = Vec::with_capacity(victims.len());
        let mut removed = 0usize;
        for &v in victims {
            if let Some(former) = self.graph.remove_node(v) {
                removed += 1;
                self.stats.nodes_repaired += 1;
                neighborhoods.push(former);
            }
        }
        // Coalesced repair: every pair of a victim's *surviving* former
        // neighbors peers up (NoN knowledge), exactly as in the single-node
        // protocol but without interleaved pruning.
        for former in &neighborhoods {
            for i in 0..former.len() {
                if !self.graph.contains(former[i]) {
                    continue;
                }
                for j in i + 1..former.len() {
                    if self.graph.contains(former[j]) && self.graph.add_edge(former[i], former[j]) {
                        self.stats.edges_added += 1;
                    }
                }
            }
        }
        // Single prune pass per wave: each affected survivor sheds excess
        // degree once, in ascending id order (deterministic by
        // construction).
        if self.config.pruning {
            let mut affected: Vec<NodeId> = neighborhoods
                .into_iter()
                .flatten()
                .filter(|&u| self.graph.contains(u))
                .collect();
            affected.sort_unstable();
            affected.dedup();
            for u in affected {
                self.prune_node(u, rng);
            }
        }
        removed
    }

    /// Removes a whole wave with [shard-partitioned](crate::shard) repair
    /// and pruning: the coalesced repair edges go through one partitioned
    /// bulk insertion and the prune pass plans per owning shard against
    /// frozen degrees, with a sequential ascending-shard reconciliation.
    /// Semantics match [`Self::remove_nodes`] at the wave level (see
    /// [`sharded_wave_repair`](crate::shard::sharded_wave_repair) for the
    /// documented frozen-degree divergence in pruning), the caller's RNG
    /// advances by exactly one draw, and output is byte-identical at any
    /// worker-thread count. Returns the number of nodes actually removed.
    pub fn remove_nodes_sharded<R: Rng + ?Sized>(
        &mut self,
        victims: &[NodeId],
        grid: &crate::shard::ShardGrid,
        rng: &mut R,
    ) -> usize {
        let outcome =
            crate::shard::sharded_wave_repair(&mut self.graph, &self.config, victims, grid, rng);
        self.stats.nodes_repaired += outcome.removed as u64;
        self.stats.edges_added += outcome.edges_added;
        self.stats.edges_pruned += outcome.edges_pruned;
        outcome.removed
    }

    /// Removes a node *without* any repair — the "normal graph" baseline the
    /// paper compares against in Figure 5.
    pub fn remove_node_without_repair(&mut self, node: NodeId) -> bool {
        let removed = self.graph.remove_node(node).is_some();
        if removed {
            self.stats.nodes_removed_without_repair += 1;
        }
        removed
    }

    /// Applies the pruning rule to one node: while its degree exceeds
    /// `d_max`, drop the neighbor with the highest degree (ties broken at
    /// random), provided that neighbor would not be pushed below `d_min`
    /// while alternatives exist.
    fn prune_node<R: Rng + ?Sized>(&mut self, node: NodeId, rng: &mut R) {
        loop {
            let Some(deg) = self.graph.degree(node) else {
                return;
            };
            if deg <= self.config.d_max {
                return;
            }
            let neighbors: Vec<(NodeId, usize)> = match self.graph.neighbors(node) {
                Some(set) => set
                    .iter()
                    .filter_map(|&n| self.graph.degree(n).map(|d| (n, d)))
                    .collect(),
                None => return,
            };
            // A victim at degree <= d_min would be pushed below d_min by the
            // edge removal, so it is only eligible when no neighbor sits
            // above d_min — the paper's unconditional fallback, "only
            // applicable as long as there are enough surviving nodes".
            let eligible: Vec<(NodeId, usize)> = {
                let above_min: Vec<(NodeId, usize)> = neighbors
                    .iter()
                    .copied()
                    .filter(|&(_, d)| d > self.config.d_min)
                    .collect();
                if above_min.is_empty() {
                    neighbors.clone()
                } else {
                    above_min
                }
            };
            let victim = match crate::maintenance::highest_degree_victim(&eligible, rng) {
                Some(v) => v,
                None => return,
            };
            // Removing the highest-degree peer "maintains the reachability of
            // all nodes": that peer has the most alternative paths.
            self.graph.remove_edge(node, victim);
            self.stats.edges_pruned += 1;
        }
    }

    /// Picks a live node uniformly at random, if any.
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        let nodes = self.graph.nodes();
        nodes.choose(rng).copied()
    }

    /// Adds a brand-new node with no peers. Callers peer it explicitly via
    /// [`Self::request_peering`]; the SOAP mitigation uses this to spawn
    /// clone hidden services.
    pub fn add_isolated_node(&mut self) -> NodeId {
        self.graph.add_node()
    }

    /// Adds a brand-new node and peers it with up to `d_max` random live
    /// nodes (bootstrap of a newly infected bot into the overlay).
    pub fn add_node<R: Rng + ?Sized>(&mut self, rng: &mut R) -> NodeId {
        let new = self.graph.add_node();
        let mut candidates = self.graph.nodes();
        candidates.retain(|&n| n != new);
        candidates.shuffle(rng);
        for peer in candidates.into_iter().take(self.config.d_max) {
            self.graph.add_edge(new, peer);
        }
        new
    }

    /// Handles an explicit peering request from `requester` to `target`
    /// using the acceptance policy from [`crate::maintenance`]. Returns
    /// `true` if the edge now exists.
    pub fn request_peering<R: Rng + ?Sized>(
        &mut self,
        requester: NodeId,
        target: NodeId,
        declared_degree: usize,
        rng: &mut R,
    ) -> bool {
        use crate::maintenance::{decide_peering, PeeringDecision};
        if !self.graph.contains(requester) || !self.graph.contains(target) || requester == target {
            return false;
        }
        if self.graph.has_edge(requester, target) {
            return true;
        }
        let peer_degrees: Vec<(NodeId, usize)> = self
            .graph
            .neighbors(target)
            .map(|set| {
                set.iter()
                    .map(|&p| (p, self.graph.degree(p).unwrap_or(0)))
                    .collect()
            })
            .unwrap_or_default();
        match decide_peering(&peer_degrees, declared_degree, self.config.d_max, rng) {
            PeeringDecision::Accept => self.graph.add_edge(requester, target),
            PeeringDecision::Replace(victim) => {
                self.graph.remove_edge(target, victim);
                self.stats.edges_pruned += 1;
                self.graph.add_edge(requester, target)
            }
            PeeringDecision::Reject => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_graph::components::is_connected;
    use onion_graph::metrics::average_degree_centrality;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn overlay(n: usize, k: usize, pruning: bool, seed: u64) -> (DdsrOverlay, Vec<NodeId>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = if pruning {
            DdsrConfig::for_degree(k)
        } else {
            DdsrConfig::without_pruning(k)
        };
        let (ov, ids) = DdsrOverlay::new_regular(n, k, config, &mut rng);
        (ov, ids, rng)
    }

    #[test]
    fn paper_figure3_example_three_regular_graph() {
        // Figure 3: deleting node 7 from a 3-regular 12-node graph makes its
        // neighbors (0, 1, 4) pairwise connected.
        let mut rng = StdRng::seed_from_u64(1);
        let (mut g, ids) = onion_graph::graph::Graph::with_nodes(12);
        // Build a 3-regular circulant graph: i ~ i±1, i ~ i+6.
        for i in 0..12usize {
            g.add_edge(ids[i], ids[(i + 1) % 12]);
            g.add_edge(ids[i], ids[(i + 6) % 12]);
        }
        let mut overlay = DdsrOverlay::from_graph(g, DdsrConfig::without_pruning(3));
        let victim = ids[7];
        let neighbors = overlay.peers(victim).unwrap();
        assert_eq!(neighbors.len(), 3);
        overlay.remove_node_with_repair(victim, &mut rng);
        for i in 0..neighbors.len() {
            for j in i + 1..neighbors.len() {
                assert!(
                    overlay.graph().has_edge(neighbors[i], neighbors[j]),
                    "former neighbors must be pairwise connected after repair"
                );
            }
        }
    }

    #[test]
    fn repair_keeps_overlay_connected_under_heavy_deletion() {
        let (mut ov, ids, mut rng) = overlay(300, 10, true, 2);
        // Delete 60% of nodes one by one (gradual takedown).
        for &id in ids.iter().take(180) {
            ov.remove_node_with_repair(id, &mut rng);
            ov.graph().check_invariants().unwrap();
        }
        assert_eq!(ov.node_count(), 120);
        assert!(is_connected(ov.graph()), "DDSR must stay connected");
    }

    #[test]
    fn no_repair_baseline_fragments_much_earlier() {
        let (mut ddsr, ids, mut rng) = overlay(300, 10, true, 3);
        let (mut normal, ids_n, _) = overlay(300, 10, true, 3);
        for (&a, &b) in ids.iter().zip(ids_n.iter()).take(240) {
            ddsr.remove_node_with_repair(a, &mut rng);
            normal.remove_node_without_repair(b);
        }
        let ddsr_components = onion_graph::components::component_count(ddsr.graph());
        let normal_components = onion_graph::components::component_count(normal.graph());
        assert_eq!(ddsr_components, 1);
        assert!(
            normal_components > ddsr_components,
            "normal graph should fragment (got {normal_components})"
        );
    }

    #[test]
    fn pruning_bounds_degree_growth() {
        let (mut with, ids_w, mut rng_w) = overlay(400, 10, true, 4);
        let (mut without, ids_wo, mut rng_wo) = overlay(400, 10, false, 4);
        for (&a, &b) in ids_w.iter().zip(ids_wo.iter()).take(120) {
            with.remove_node_with_repair(a, &mut rng_w);
            without.remove_node_with_repair(b, &mut rng_wo);
        }
        assert!(
            with.graph().max_degree() <= with.config().d_max,
            "pruned overlay must respect d_max (got {})",
            with.graph().max_degree()
        );
        assert!(
            without.graph().max_degree() > with.graph().max_degree(),
            "unpruned overlay should grow larger degrees"
        );
        // Degree centrality comparison mirrors Figures 4c/4d.
        assert!(
            average_degree_centrality(without.graph()) > average_degree_centrality(with.graph())
        );
    }

    #[test]
    fn batched_removal_equals_sequential_for_non_adjacent_victims() {
        // Two victims far apart in a 10-regular graph, with pruning off so
        // the comparison isolates the repair coalescing: the batched wave
        // must produce exactly the graph sequential removal produces.
        let (mut batched, ids, mut rng_a) = overlay(200, 10, false, 21);
        let (mut sequential, ids_s, mut rng_b) = overlay(200, 10, false, 21);
        assert_eq!(ids, ids_s);
        let (a, b) = (ids[0], ids[100]);
        assert!(
            !batched.graph().has_edge(a, b),
            "victims must be non-adjacent for this comparison"
        );
        batched.remove_nodes(&[a, b], &mut rng_a);
        sequential.remove_node_with_repair(a, &mut rng_b);
        sequential.remove_node_with_repair(b, &mut rng_b);
        assert_eq!(batched.graph(), sequential.graph());
        assert_eq!(batched.stats(), sequential.stats());
    }

    #[test]
    fn batched_removal_of_adjacent_victims_drops_edges_through_the_dead() {
        // Documented divergence: in a path p - a - b - q, sequentially
        // removing a repairs p–b, and then removing b repairs p–q through
        // that grafted edge. In one batch both a and b die before any
        // repair runs, so b (dead) cannot relay p's knowledge: p and q end
        // up disconnected — the simultaneous-takedown semantics.
        let make = || {
            let (mut g, ids) = onion_graph::graph::Graph::with_nodes(4);
            let (p, a, b, q) = (ids[0], ids[1], ids[2], ids[3]);
            for (s, t) in [(p, a), (a, b), (b, q)] {
                g.add_edge(s, t);
            }
            (
                DdsrOverlay::from_graph(g, DdsrConfig::without_pruning(2)),
                (p, a, b, q),
            )
        };
        let mut rng = StdRng::seed_from_u64(23);

        let (mut sequential, (p, a, b, q)) = make();
        sequential.remove_node_with_repair(a, &mut rng);
        sequential.remove_node_with_repair(b, &mut rng);
        assert!(
            sequential.graph().has_edge(p, q),
            "sequential removal relays repair knowledge through b"
        );

        let (mut batched, (p, a, b, q)) = make();
        assert_eq!(batched.remove_nodes(&[a, b], &mut rng), 2);
        assert!(
            !batched.graph().has_edge(p, q),
            "batched removal must not create edges through dead victims"
        );
        batched.graph().check_invariants().unwrap();
    }

    #[test]
    fn batched_removal_prunes_once_and_respects_d_max() {
        let (mut ov, ids, mut rng) = overlay(300, 10, true, 22);
        let victims: Vec<NodeId> = ids.iter().copied().take(60).collect();
        let removed = ov.remove_nodes(&victims, &mut rng);
        assert_eq!(removed, 60);
        assert_eq!(ov.node_count(), 240);
        assert!(
            ov.graph().max_degree() <= ov.config().d_max,
            "single prune pass must still enforce d_max (got {})",
            ov.graph().max_degree()
        );
        assert!(is_connected(ov.graph()), "wave repair keeps DDSR connected");
        ov.graph().check_invariants().unwrap();
        // Re-removing the same wave is a no-op.
        assert_eq!(ov.remove_nodes(&victims, &mut rng), 0);
    }

    #[test]
    fn neighbors_of_neighbors_knowledge() {
        let (mut g, ids) = onion_graph::graph::Graph::with_nodes(5);
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[1], ids[2]);
        g.add_edge(ids[2], ids[3]);
        let overlay = DdsrOverlay::from_graph(g, DdsrConfig::default());
        let non = overlay.neighbors_of_neighbors(ids[0]).unwrap();
        assert!(non.contains(&ids[2]));
        assert!(!non.contains(&ids[0]));
        assert!(
            !non.contains(&ids[3]),
            "three hops away is beyond NoN knowledge"
        );
        assert!(overlay.neighbors_of_neighbors(NodeId(999)).is_none());
    }

    #[test]
    fn removing_unknown_node_is_a_noop() {
        let (mut ov, _, mut rng) = overlay(20, 4, true, 5);
        assert!(!ov.remove_node_with_repair(NodeId(10_000), &mut rng));
        assert!(!ov.remove_node_without_repair(NodeId(10_000)));
        assert_eq!(ov.stats().nodes_repaired, 0);
    }

    #[test]
    fn stats_account_for_maintenance_work() {
        let (mut ov, ids, mut rng) = overlay(100, 10, true, 6);
        for &id in ids.iter().take(30) {
            ov.remove_node_with_repair(id, &mut rng);
        }
        let stats = ov.stats();
        assert_eq!(stats.nodes_repaired, 30);
        assert!(stats.edges_added > 0);
        assert!(stats.edges_pruned > 0);
    }

    #[test]
    fn add_node_bootstraps_with_bounded_degree() {
        let (mut ov, _, mut rng) = overlay(50, 6, true, 7);
        let new = ov.add_node(&mut rng);
        let deg = ov.graph().degree(new).unwrap();
        assert!(deg >= 1);
        assert!(deg <= ov.config().d_max);
    }

    #[test]
    fn add_node_peers_with_up_to_d_max_candidates() {
        // Regression: the old expression `d_max.min(d_min.max(1))` collapsed
        // to `d_min`, so a bootstrapping bot joined with only d_min peers
        // despite the documented "up to d_max".
        let (mut ov, _, mut rng) = overlay(50, 6, true, 7);
        assert!(ov.config().d_min < ov.config().d_max);
        let new = ov.add_node(&mut rng);
        assert_eq!(
            ov.graph().degree(new),
            Some(ov.config().d_max),
            "with plenty of candidates the bootstrap must reach d_max, not stop at d_min"
        );
    }

    #[test]
    fn pruning_spares_d_min_degree_neighbors_when_alternatives_exist() {
        // Build the neighborhood by hand: removing v repairs u up to
        // d_max + 1, and u's peers then include `a` at exactly d_min plus a
        // higher-degree alternative `b`. The prune step must shed `b` (the
        // alternative) and leave `a` at d_min.
        let config = DdsrConfig {
            d_min: 2,
            d_max: 3,
            pruning: true,
        };
        let (mut g, ids) = onion_graph::graph::Graph::with_nodes(9);
        let (v, u, p, q, a, b, x, y, z) = (
            ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6], ids[7], ids[8],
        );
        for (s, t) in [
            (v, u),
            (v, p),
            (v, q),
            (u, a),
            (u, b),
            (a, x),
            (b, y),
            (b, z),
        ] {
            g.add_edge(s, t);
        }
        let mut overlay = DdsrOverlay::from_graph(g, config);
        assert_eq!(overlay.graph().degree(a), Some(config.d_min));
        let mut rng = StdRng::seed_from_u64(11);
        overlay.remove_node_with_repair(v, &mut rng);
        // Repair linked u with p and q, pushing u to d_max + 1; pruning must
        // pick the alternative victim b (degree 3 > d_min), never a.
        assert!(
            overlay.graph().has_edge(u, a),
            "a d_min-degree neighbor must survive pruning while an alternative victim exists"
        );
        assert!(
            !overlay.graph().has_edge(u, b),
            "the higher-degree alternative is the pruning victim"
        );
        assert!(overlay.graph().degree(a).unwrap() >= config.d_min);
        assert!(overlay.graph().degree(u).unwrap() <= config.d_max);
    }

    #[test]
    fn pruning_falls_back_to_unconditional_rule_without_alternatives() {
        // When every peer already sits at or below d_min the paper's bound
        // is "only applicable as long as there are enough surviving nodes":
        // pruning still has to bring the node back under d_max.
        let config = DdsrConfig {
            d_min: 2,
            d_max: 2,
            pruning: true,
        };
        let (mut g, ids) = onion_graph::graph::Graph::with_nodes(6);
        let (v, u, p, q, a, x) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        for (s, t) in [(v, u), (v, p), (v, q), (u, a), (a, x)] {
            g.add_edge(s, t);
        }
        let mut overlay = DdsrOverlay::from_graph(g, config);
        let mut rng = StdRng::seed_from_u64(13);
        overlay.remove_node_with_repair(v, &mut rng);
        assert!(
            overlay.graph().degree(u).unwrap() <= config.d_max,
            "pruning must still enforce d_max when no peer exceeds d_min"
        );
    }

    #[test]
    fn peering_request_with_low_declared_degree_displaces_high_degree_peer() {
        // This is the mechanism SOAP exploits (§VI-B).
        let (mut ov, ids, mut rng) = overlay(30, 6, true, 8);
        let target = ids[0];
        let requester = ids[29];
        // Saturate the target at d_max first.
        let before: Vec<NodeId> = ov.peers(target).unwrap();
        assert!(before.len() >= ov.config().d_min);
        let accepted = ov.request_peering(requester, target, 2, &mut rng);
        assert!(accepted);
        assert!(ov.graph().has_edge(requester, target));
    }

    #[test]
    fn random_node_returns_live_nodes_only() {
        let (mut ov, ids, mut rng) = overlay(10, 4, true, 9);
        for &id in ids.iter().take(9) {
            ov.remove_node_with_repair(id, &mut rng);
        }
        let survivor = ov.random_node(&mut rng).unwrap();
        assert_eq!(survivor, ids[9]);
    }
}
