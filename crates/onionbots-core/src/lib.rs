//! # onionbots-core
//!
//! The paper's primary contribution: the **Dynamic Distributed
//! Self-Repairing (DDSR)** Neighbors-of-Neighbor overlay (§IV-C of
//! *OnionBots: Subverting Privacy Infrastructure for Cyber Attacks*,
//! DSN 2015), implemented as a defensive research simulator.
//!
//! * [`overlay`] — the self-healing graph: repair on deletion, degree
//!   pruning to `[d_min, d_max]`, peering policy.
//! * [`maintenance`] — peering / address-announcement messages and the
//!   acceptance policy the SOAP mitigation later exploits.
//! * [`rotation`] — periodic `.onion` address rotation derived from the
//!   shared key `K_B` and the botmaster public key.
//! * [`routing`] — flooding broadcast and greedy routing with NoN lookahead.
//! * [`config`] — degree-range configuration.
//!
//! ```
//! use onionbots_core::config::DdsrConfig;
//! use onionbots_core::overlay::DdsrOverlay;
//! use onion_graph::components::is_connected;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let (mut overlay, ids) = DdsrOverlay::new_regular(200, 10, DdsrConfig::for_degree(10), &mut rng);
//! // Take down half of the botnet, one node at a time.
//! for id in ids.iter().take(100) {
//!     overlay.remove_node_with_repair(*id, &mut rng);
//! }
//! assert!(is_connected(overlay.graph()));
//! assert!(overlay.graph().max_degree() <= 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod maintenance;
pub mod overlay;
pub mod rotation;
pub mod routing;
pub mod shard;

pub use config::DdsrConfig;
pub use overlay::DdsrOverlay;

#[cfg(test)]
mod property_tests {
    use crate::config::DdsrConfig;
    use crate::overlay::DdsrOverlay;
    use onion_graph::components::is_connected;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Whatever sequence of deletions is applied, the pruned overlay
        /// never exceeds d_max and its graph invariants hold.
        #[test]
        fn degree_bound_is_invariant_under_random_deletions(
            seed in 0u64..1000,
            delete_fraction in 0.05f64..0.6,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let k = 8usize;
            let n = 120usize;
            let (mut overlay, mut ids) = DdsrOverlay::new_regular(n, k, DdsrConfig::for_degree(k), &mut rng);
            use rand::seq::SliceRandom;
            ids.shuffle(&mut rng);
            let deletions = (n as f64 * delete_fraction) as usize;
            for id in ids.into_iter().take(deletions) {
                overlay.remove_node_with_repair(id, &mut rng);
                prop_assert!(overlay.graph().max_degree() <= k);
                prop_assert!(overlay.graph().check_invariants().is_ok());
            }
        }

        /// Gradual takedowns of up to 70% of the nodes never partition a
        /// 10-regular DDSR overlay of this size.
        #[test]
        fn gradual_takedown_preserves_connectivity(seed in 0u64..200) {
            let mut rng = StdRng::seed_from_u64(seed);
            let (mut overlay, mut ids) = DdsrOverlay::new_regular(150, 10, DdsrConfig::for_degree(10), &mut rng);
            use rand::seq::SliceRandom;
            ids.shuffle(&mut rng);
            for id in ids.into_iter().take(105) {
                overlay.remove_node_with_repair(id, &mut rng);
            }
            prop_assert!(is_connected(overlay.graph()));
        }
    }
}
