//! Message propagation over the overlay: flooding broadcast and greedy
//! routing with Neighbors-of-Neighbor lookahead.
//!
//! The paper motivates the NoN construction with Manku et al.'s result that
//! NoN greedy routing is asymptotically optimal (§IV-C) and requires the C&C
//! to "reach each bot within reasonable steps" (§IV-A). Two propagation
//! modes are provided:
//!
//! * [`flood_broadcast`] — the push-based broadcast used for C&C commands:
//!   every node forwards to all peers; the result reports per-round coverage
//!   and total message count.
//! * [`greedy_route`] / [`non_greedy_route`] — identifier-based greedy
//!   routing with one-hop versus two-hop (NoN) knowledge, used by the
//!   ablation bench to show the lookahead benefit.

use onion_graph::graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Result of a flooding broadcast.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BroadcastReport {
    /// Nodes reached (including the source).
    pub reached: usize,
    /// Number of live nodes at broadcast time.
    pub population: usize,
    /// Number of rounds (graph eccentricity of the source within its
    /// component).
    pub rounds: usize,
    /// Total point-to-point messages sent.
    pub messages: usize,
    /// Nodes reached after each round (cumulative), starting with round 0 =
    /// just the source.
    pub coverage_per_round: Vec<usize>,
}

impl BroadcastReport {
    /// Fraction of the live population reached.
    pub fn coverage(&self) -> f64 {
        if self.population == 0 {
            return 0.0;
        }
        self.reached as f64 / self.population as f64
    }
}

/// Simulates a flooding (gossip-to-all-peers) broadcast from `source`.
pub fn flood_broadcast(graph: &Graph, source: NodeId) -> BroadcastReport {
    let population = graph.node_count();
    if !graph.contains(source) {
        return BroadcastReport {
            reached: 0,
            population,
            rounds: 0,
            messages: 0,
            coverage_per_round: Vec::new(),
        };
    }
    // Flat informed-flags indexed by node id: deterministic, allocation-light
    // and cache-friendly at million-node populations.
    let mut informed = vec![false; graph.id_bound()];
    informed[source.0] = true;
    let mut reached = 1usize;
    let mut frontier = vec![source];
    let mut messages = 0usize;
    let mut coverage_per_round = vec![1usize];
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            if let Some(neighbors) = graph.neighbors(u) {
                for &v in neighbors {
                    messages += 1;
                    if !informed[v.0] {
                        informed[v.0] = true;
                        reached += 1;
                        next.push(v);
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        rounds += 1;
        coverage_per_round.push(reached);
        frontier = next;
    }
    BroadcastReport {
        reached,
        population,
        rounds,
        messages,
        coverage_per_round,
    }
}

/// Outcome of a greedy routing attempt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteReport {
    /// Whether the destination was reached.
    pub delivered: bool,
    /// The sequence of hops taken (starting at the source).
    pub path: Vec<NodeId>,
}

impl RouteReport {
    /// Number of hops taken (path length minus one, 0 for failed routes of
    /// length <= 1).
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Identifier distance used by greedy routing: XOR of node indices
/// (a Kademlia-style metric on the overlay identifier space).
fn id_distance(a: NodeId, b: NodeId) -> u64 {
    (a.0 as u64) ^ (b.0 as u64)
}

/// Greedy routing with one-hop knowledge: at each step move to the neighbor
/// closest to the destination; stop when no neighbor improves the distance.
pub fn greedy_route(
    graph: &Graph,
    source: NodeId,
    destination: NodeId,
    max_hops: usize,
) -> RouteReport {
    route_with_lookahead(graph, source, destination, max_hops, false)
}

/// Greedy routing with Neighbors-of-Neighbor lookahead: at each step consider
/// the best distance achievable *through* each neighbor (its own neighbors
/// included), as in the NoN routing the paper cites.
pub fn non_greedy_route(
    graph: &Graph,
    source: NodeId,
    destination: NodeId,
    max_hops: usize,
) -> RouteReport {
    route_with_lookahead(graph, source, destination, max_hops, true)
}

fn route_with_lookahead(
    graph: &Graph,
    source: NodeId,
    destination: NodeId,
    max_hops: usize,
    lookahead: bool,
) -> RouteReport {
    let mut path = vec![source];
    if !graph.contains(source) || !graph.contains(destination) {
        return RouteReport {
            delivered: false,
            path,
        };
    }
    let mut current = source;
    let mut visited = vec![false; graph.id_bound()];
    visited[source.0] = true;
    while current != destination && path.len() <= max_hops {
        let Some(neighbors) = graph.neighbors(current) else {
            break;
        };
        // Score each candidate neighbor.
        let mut best: Option<(u64, NodeId)> = None;
        for &n in neighbors {
            if visited[n.0] {
                continue;
            }
            let score = if n == destination {
                0
            } else if lookahead {
                // Best distance achievable through n (NoN knowledge).
                let through = graph
                    .neighbors(n)
                    .map(|nn| {
                        nn.iter()
                            .map(|&m| id_distance(m, destination))
                            .min()
                            .unwrap_or(u64::MAX)
                    })
                    .unwrap_or(u64::MAX);
                through.min(id_distance(n, destination))
            } else {
                id_distance(n, destination)
            };
            if best.is_none_or(|(s, _)| score < s) {
                best = Some((score, n));
            }
        }
        match best {
            Some((_, next)) => {
                visited[next.0] = true;
                path.push(next);
                current = next;
            }
            None => break,
        }
    }
    RouteReport {
        delivered: current == destination,
        path,
    }
}

/// Shortest-path hop count between two nodes (BFS ground truth used to
/// validate the greedy routes).
pub fn shortest_path_hops(graph: &Graph, source: NodeId, destination: NodeId) -> Option<usize> {
    if !graph.contains(source) || !graph.contains(destination) {
        return None;
    }
    // Flat BFS with early exit at the destination.
    const UNREACHED: u32 = u32::MAX;
    let mut dist = vec![UNREACHED; graph.id_bound()];
    dist[source.0] = 0;
    let mut queue = vec![source];
    let mut head = 0usize;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        if u == destination {
            return Some(dist[u.0] as usize);
        }
        let d = dist[u.0] + 1;
        if let Some(neighbors) = graph.neighbors(u) {
            for &v in neighbors {
                if dist[v.0] == UNREACHED {
                    dist[v.0] = d;
                    queue.push(v);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_graph::generators::{random_regular, ring_lattice};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn broadcast_reaches_every_node_in_a_connected_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, ids) = random_regular(200, 8, &mut rng);
        let report = flood_broadcast(&g, ids[0]);
        assert_eq!(report.reached, 200);
        assert!((report.coverage() - 1.0).abs() < 1e-12);
        assert!(
            report.rounds <= 6,
            "8-regular 200-node graph has tiny diameter"
        );
        assert_eq!(
            report.messages,
            200 * 8,
            "every node forwards to all peers once"
        );
        assert_eq!(*report.coverage_per_round.last().unwrap(), 200);
    }

    #[test]
    fn broadcast_is_limited_to_the_source_component() {
        let (mut g, ids) = onion_graph::graph::Graph::with_nodes(6);
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[1], ids[2]);
        g.add_edge(ids[3], ids[4]);
        let report = flood_broadcast(&g, ids[0]);
        assert_eq!(report.reached, 3);
        assert!(report.coverage() < 1.0);
    }

    #[test]
    fn broadcast_from_missing_node_reaches_nothing() {
        let (g, ids) = onion_graph::graph::Graph::with_nodes(3);
        let mut g = g;
        g.remove_node(ids[0]);
        let report = flood_broadcast(&g, ids[0]);
        assert_eq!(report.reached, 0);
    }

    #[test]
    fn greedy_routing_succeeds_on_ring_lattices() {
        let (g, ids) = ring_lattice(64, 4);
        let report = non_greedy_route(&g, ids[0], ids[20], 64);
        assert!(report.delivered);
        assert!(report.hops() >= shortest_path_hops(&g, ids[0], ids[20]).unwrap());
    }

    #[test]
    fn non_lookahead_is_at_least_as_successful_as_plain_greedy() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, ids) = random_regular(200, 8, &mut rng);
        let mut greedy_ok = 0usize;
        let mut non_ok = 0usize;
        for i in 0..50 {
            let src = ids[i];
            let dst = ids[199 - i];
            if greedy_route(&g, src, dst, 200).delivered {
                greedy_ok += 1;
            }
            if non_greedy_route(&g, src, dst, 200).delivered {
                non_ok += 1;
            }
        }
        assert!(non_ok >= greedy_ok);
        assert!(non_ok > 0);
    }

    #[test]
    fn routes_to_self_are_trivial() {
        let (g, ids) = ring_lattice(10, 2);
        let report = greedy_route(&g, ids[3], ids[3], 10);
        assert!(report.delivered);
        assert_eq!(report.hops(), 0);
    }

    #[test]
    fn routing_to_missing_destination_fails_cleanly() {
        let (mut g, ids) = ring_lattice(10, 2);
        g.remove_node(ids[5]);
        let report = non_greedy_route(&g, ids[0], ids[5], 10);
        assert!(!report.delivered);
        assert!(shortest_path_hops(&g, ids[0], ids[5]).is_none());
    }

    #[test]
    fn hop_budget_is_respected() {
        let (g, ids) = ring_lattice(100, 2);
        let report = greedy_route(&g, ids[0], ids[50], 5);
        assert!(!report.delivered);
        assert!(report.path.len() <= 6);
    }
}
