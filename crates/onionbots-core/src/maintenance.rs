//! Peering / maintenance protocol primitives.
//!
//! The overlay's self-healing behaviour is driven by small maintenance
//! messages exchanged between peers: peering requests (with a declared
//! degree), address announcements after rotation, and keep-alives. The
//! acceptance policy implemented here is the one the paper describes and the
//! one SOAP (§VI-B) exploits: a node prefers low-degree peers, and when it is
//! already full it replaces its highest-degree peer with a lower-degree
//! requester.

use onion_graph::graph::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use tor_sim::onion::OnionAddress;

/// Maintenance messages exchanged between overlay peers.
///
/// On the wire every variant is serialized and wrapped in a fixed-size
/// uniform cell, so observers cannot distinguish a peering request from a
/// keep-alive or an attack command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaintenanceMessage {
    /// Ask to become a peer, declaring the sender's (claimed) degree.
    PeeringRequest {
        /// The requester's current onion address.
        from: OnionAddress,
        /// The degree the requester claims to have (unverifiable).
        declared_degree: usize,
    },
    /// Positive answer to a peering request.
    PeeringAccept {
        /// The acceptor's onion address.
        from: OnionAddress,
    },
    /// Negative answer to a peering request.
    PeeringReject {
        /// The rejecting node's onion address.
        from: OnionAddress,
    },
    /// Announce a rotated onion address to current peers (the "forgetting"
    /// mechanism's counterpart: peers must learn the new address before the
    /// old one disappears).
    AddressAnnounce {
        /// The address being replaced.
        old: OnionAddress,
        /// The address valid for the next period.
        new: OnionAddress,
        /// Period index the new address belongs to.
        period: u64,
    },
    /// Liveness probe.
    KeepAlive {
        /// Sender address.
        from: OnionAddress,
    },
}

/// Outcome of evaluating a peering request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeeringDecision {
    /// Accept the new peer outright (the node is below `d_max`).
    Accept,
    /// Accept the new peer and drop this existing peer to make room.
    Replace(NodeId),
    /// Reject the request.
    Reject,
}

/// Picks the peer to displace under the paper's "replace the
/// highest-degree peer" rule: the highest-degree entry of `peers`, ties
/// broken at random. That peer has the most alternative paths, so
/// dropping it "maintains the reachability of all nodes" (§IV-C).
///
/// This is the one shared implementation of the rule — the peering
/// acceptance policy below, the overlay's sequential prune loop
/// (`DdsrOverlay::prune_node`) and the sharded frozen-degree prune
/// planner (`shard::sharded_wave_repair`) all select victims through it,
/// and all consume exactly one `choose` draw per selection so the
/// sequential RNG streams are unchanged by the sharing.
pub fn highest_degree_victim<R: Rng + ?Sized>(
    peers: &[(NodeId, usize)],
    rng: &mut R,
) -> Option<NodeId> {
    let max_degree = peers.iter().map(|&(_, d)| d).max()?;
    let candidates: Vec<NodeId> = peers
        .iter()
        .filter(|&&(_, d)| d == max_degree)
        .map(|&(id, _)| id)
        .collect();
    candidates.choose(rng).copied()
}

/// Decides how a node with the given peers responds to a peering request.
///
/// * Below `d_max`: accept.
/// * At or above `d_max`: if the requester's declared degree is strictly
///   lower than the highest degree among current peers, replace that peer
///   (ties broken at random); otherwise reject.
pub fn decide_peering<R: Rng + ?Sized>(
    current_peers: &[(NodeId, usize)],
    declared_degree: usize,
    d_max: usize,
    rng: &mut R,
) -> PeeringDecision {
    if current_peers.len() < d_max {
        return PeeringDecision::Accept;
    }
    let Some(&max_degree) = current_peers.iter().map(|(_, d)| d).max() else {
        return PeeringDecision::Accept;
    };
    if declared_degree < max_degree {
        match highest_degree_victim(current_peers, rng) {
            Some(victim) => PeeringDecision::Replace(victim),
            None => PeeringDecision::Reject,
        }
    } else {
        PeeringDecision::Reject
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn peers(degrees: &[usize]) -> Vec<(NodeId, usize)> {
        degrees
            .iter()
            .enumerate()
            .map(|(i, &d)| (NodeId(i), d))
            .collect()
    }

    #[test]
    fn below_capacity_always_accepts() {
        let mut rng = StdRng::seed_from_u64(1);
        let decision = decide_peering(&peers(&[5, 5]), 100, 5, &mut rng);
        assert_eq!(decision, PeeringDecision::Accept);
    }

    #[test]
    fn at_capacity_low_degree_requester_displaces_highest_peer() {
        let mut rng = StdRng::seed_from_u64(2);
        let decision = decide_peering(&peers(&[4, 9, 6]), 2, 3, &mut rng);
        assert_eq!(decision, PeeringDecision::Replace(NodeId(1)));
    }

    #[test]
    fn at_capacity_high_degree_requester_is_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let decision = decide_peering(&peers(&[4, 9, 6]), 9, 3, &mut rng);
        assert_eq!(decision, PeeringDecision::Reject);
        let decision2 = decide_peering(&peers(&[4, 9, 6]), 20, 3, &mut rng);
        assert_eq!(decision2, PeeringDecision::Reject);
    }

    #[test]
    fn ties_are_broken_among_highest_degree_peers_only() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            match decide_peering(&peers(&[7, 3, 7]), 1, 3, &mut rng) {
                PeeringDecision::Replace(victim) => {
                    assert!(victim == NodeId(0) || victim == NodeId(2));
                }
                other => panic!("expected replacement, got {other:?}"),
            }
        }
    }

    #[test]
    fn victim_selection_is_shared_and_uniform_over_ties() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(highest_degree_victim(&[], &mut rng), None);
        assert_eq!(
            highest_degree_victim(&peers(&[3, 9, 5]), &mut rng),
            Some(NodeId(1))
        );
        let mut seen = [false; 3];
        for _ in 0..40 {
            match highest_degree_victim(&peers(&[7, 7, 7]), &mut rng) {
                Some(NodeId(i)) => seen[i] = true,
                None => panic!("non-empty list must yield a victim"),
            }
        }
        assert!(seen.iter().all(|&s| s), "all tied peers must be reachable");
    }

    #[test]
    fn empty_peer_list_accepts() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            decide_peering(&[], 50, 0, &mut rng),
            PeeringDecision::Accept
        );
    }

    #[test]
    fn maintenance_messages_serialize() {
        let msg = MaintenanceMessage::PeeringRequest {
            from: OnionAddress::from_identifier([1u8; 10]),
            declared_degree: 2,
        };
        let json = serde_json::to_string(&msg).unwrap();
        let back: MaintenanceMessage = serde_json::from_str(&json).unwrap();
        assert_eq!(back, msg);
        let rotate = MaintenanceMessage::AddressAnnounce {
            old: OnionAddress::from_identifier([1u8; 10]),
            new: OnionAddress::from_identifier([2u8; 10]),
            period: 9,
        };
        assert_ne!(serde_json::to_string(&rotate).unwrap(), json);
    }
}
