//! Sharded overlay construction and partitioned wave repair.
//!
//! The 10⁶-node `scale` part is dominated by DDSR overlay *construction*
//! and *batched takedown repair*, not by metric sweeps — so this module
//! parallelizes both across a **fixed logical shard grid**: a
//! [`ShardGrid`] cuts the NodeId space into disjoint contiguous ranges,
//! and every parallel phase assigns work to shards, never to threads.
//! Worker threads (bounded by [`thread_budget`]) merely *steal shards*;
//! each shard's work is a pure function of the grid, the frozen graph
//! state and the shard's own RNG stream, and cross-shard effects are
//! applied in one sequential ascending-shard reconciliation pass — so the
//! result is **byte-identical at any worker-thread count**.
//!
//! # The sanctioned RNG-splitting idiom
//!
//! Per-shard streams are split from the part RNG the same way part seeds
//! are split from the base seed (see `sim::scenario_api::part_seed`):
//! draw **one** `u64` from the sequential part stream, then derive one
//! independent seed per shard with [`shard_stream_seed`] —
//!
//! ```
//! use onionbots_core::shard::shard_stream_seed;
//! use rand::rngs::StdRng;
//! use rand::{RngCore, SeedableRng};
//!
//! let mut part_rng = StdRng::seed_from_u64(2015);
//! let base = part_rng.next_u64(); // ONE draw on the sequential stream
//! let mut shard_rngs: Vec<StdRng> = (0..4)
//!     .map(|s| StdRng::seed_from_u64(shard_stream_seed(base, s)))
//!     .collect();
//! # let _ = &mut shard_rngs;
//! ```
//!
//! Never hand the part RNG itself to a parallel phase (which thread
//! advances it first would leak into the stream), and never seed a shard
//! from wall-clock or OS entropy (detlint rule D002 rejects both on this
//! path). The shard index — not the worker index — keys the derived
//! stream, which is exactly why the thread count cannot change output.
//!
//! Construction runs the same pairing model as
//! [`random_regular`](onion_graph::generators::random_regular)
//! independently per shard (a single shard degenerates to it exactly),
//! assembles the per-shard blocks in ascending shard order, and then
//! stitches shards together with degree-preserving edge swaps from a
//! dedicated merge stream — the assembled overlay is still exactly
//! `k`-regular. Wave repair partitions the coalesced repair-edge
//! insertions by owning shard (through
//! [`Graph::add_edges_bulk_partitioned`]) and the prune pass by owning
//! shard against frozen degrees, with the actual cross-shard edge
//! removals replayed sequentially in ascending shard/id order.

use onion_graph::budget::thread_budget;
use onion_graph::generators::random_regular;
use onion_graph::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::config::DdsrConfig;

/// Default number of logical shards. The grid — not the machine — defines
/// the RNG streams, so this stays fixed across hosts; 64 shards keep
/// every plausible thread budget saturated while leaving shards at
/// 10⁶ nodes large enough (~15.6k nodes) for good pairing-model locality.
pub const DEFAULT_SHARDS: usize = 64;

/// Populations below this threshold default to a **single shard**: the
/// sequential mixing-swap merge pass dominates small graphs (measured
/// 0.79× at n=10⁴ single-core, `BENCH_overlay_shard.json`) while the
/// grid's cache-locality win only shows from ~10⁵ up (1.76× at n=10⁵) —
/// so quick-scale parts never pay for a merge they cannot amortize. An
/// explicit `shards` override always wins over the gate.
pub const SHARD_GATE_MIN_NODES: usize = 50_000;

/// The default shard count for an `n`-node overlay: [`DEFAULT_SHARDS`]
/// at and above [`SHARD_GATE_MIN_NODES`], one shard below it. With one
/// shard the grid degenerates to the plain sequential pairing model —
/// no merge pass, no per-shard stream split overhead.
pub fn default_shards_for(n: usize) -> usize {
    if n < SHARD_GATE_MIN_NODES {
        1
    } else {
        DEFAULT_SHARDS
    }
}

/// Hard ceiling on shard workers, mirroring the BFS kernel's bound: an
/// absurd caller-supplied budget must degrade to "merely pointless", not
/// to a failed thread spawn.
const MAX_SHARD_THREADS: usize = 64;

/// A fixed partition of the id space `0..n` into disjoint contiguous
/// NodeId ranges — the unit of parallel construction, repair partitioning
/// and (eventually) multi-host distribution.
///
/// The grid guarantees every shard can host the pairing model on its own:
/// each range holds strictly more than `k` nodes and, when `k` is odd, an
/// even node count (so `len * k` is even per shard). A requested shard
/// count that would violate either constraint is clamped down; `new`
/// never fails for inputs `random_regular` itself accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardGrid {
    /// Range cut points: shard `s` owns ids `bounds[s]..bounds[s + 1]`.
    /// Always ascending with `bounds[0] == 0`.
    bounds: Vec<usize>,
}

impl ShardGrid {
    /// Builds the grid for `n` nodes of target degree `k`, aiming for
    /// `requested` shards (clamped as documented on the type).
    ///
    /// # Panics
    /// Panics if `n * k` is odd or `k >= n` — the same preconditions as
    /// [`random_regular`], checked here so a bad grid fails before any
    /// shard does.
    pub fn new(n: usize, k: usize, requested: usize) -> ShardGrid {
        assert!(k < n, "degree must be smaller than the node count");
        assert!(
            (n * k).is_multiple_of(2),
            "n * k must be even for a k-regular graph"
        );
        // Work in indivisible "units": single nodes when k is even, node
        // *pairs* when k is odd (so every shard size times k stays even).
        let unit = if k.is_multiple_of(2) { 1 } else { 2 };
        let units = n / unit;
        // Each shard needs > k nodes, i.e. at least k + 1 (rounded up to
        // whole units).
        let min_units = (k + unit) / unit; // ceil((k + 1) / unit)
        let max_shards = (units / min_units).max(1);
        let shards = requested.clamp(1, max_shards);
        let per_shard = units / shards;
        let remainder = units % shards;
        let mut bounds = Vec::with_capacity(shards + 1);
        let mut cursor = 0usize;
        bounds.push(0);
        for s in 0..shards {
            cursor += (per_shard + usize::from(s < remainder)) * unit;
            bounds.push(cursor);
        }
        // `units * unit` can undershoot n by one node when k is odd and n
        // is odd — impossible here because n * k even with k odd forces n
        // even — but fold any rounding into the last shard defensively.
        *bounds.last_mut().expect("at least one shard") = n;
        ShardGrid { bounds }
    }

    /// Number of shards in the grid.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The ascending range cut points (`shards() + 1` entries, first `0`,
    /// last `n`) — the partition handed to
    /// [`Graph::add_edges_bulk_partitioned`].
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// The id range shard `s` owns.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// The shard owning `id`. Ids at or past the grid's end clamp into
    /// the last shard, so nodes added after construction still have a
    /// deterministic owner.
    pub fn owner(&self, id: NodeId) -> usize {
        self.bounds[1..self.bounds.len() - 1].partition_point(|&cut| cut <= id.0)
    }
}

/// Splits one drawn base value into the seed of shard `s`'s stream —
/// SplitMix64-style finalization over `(base, s)`, the same mixing
/// discipline [`part_seed`](sim-crate) uses to split part streams from
/// the base seed. Shard index `shards()` (one past the last shard) is
/// reserved for the construction merge stream.
pub fn shard_stream_seed(base: u64, shard: usize) -> u64 {
    let mut z = base ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a random `k`-regular graph on `n` nodes across `grid`, fanned
/// over at most [`thread_budget`] worker threads.
///
/// Each shard runs the pairing model on its own range with its own
/// stream; the per-shard blocks are assembled in ascending shard order;
/// and a sequential merge pass stitches shards with degree-preserving
/// edge swaps (ring stitching between consecutive shards first, then
/// global mixing swaps), so the result is exactly `k`-regular and
/// byte-identical at any thread count. With a single-shard grid the merge
/// pass is empty and the result equals `random_regular` run on the
/// derived shard-0 stream.
///
/// # Panics
/// Panics if the grid does not cover exactly `0..n`.
pub fn build_sharded_regular<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    grid: &ShardGrid,
    rng: &mut R,
) -> (Graph, Vec<NodeId>) {
    assert_eq!(
        grid.bounds().last().copied(),
        Some(n),
        "grid must cover exactly 0..n"
    );
    let base = rng.next_u64(); // the ONE draw on the caller's stream
    let shards = grid.shards();
    let blocks = run_on_shards(shards, |s| {
        let len = grid.range(s).len();
        let mut shard_rng = StdRng::seed_from_u64(shard_stream_seed(base, s));
        random_regular(len, k, &mut shard_rng).0
    });
    let mut graph = Graph::assemble(
        blocks
            .into_iter()
            .map(|block| block.expect("every shard slot is filled")),
    );
    if shards > 1 {
        let mut merge_rng = StdRng::seed_from_u64(shard_stream_seed(base, shards));
        stitch_shards(&mut graph, grid, k, &mut merge_rng);
    }
    let ids = (0..n).map(NodeId).collect();
    (graph, ids)
}

/// Runs `f(shard)` for every shard, stealing shard indices across up to
/// [`thread_budget`] scoped workers, and returns the results in shard
/// order. Output never depends on the worker count: each shard's result
/// lands in its slot by shard index.
fn run_on_shards<T: Send>(shards: usize, f: impl Fn(usize) -> T + Sync) -> Vec<Option<T>> {
    let threads = thread_budget().clamp(1, MAX_SHARD_THREADS).min(shards);
    if threads <= 1 {
        return (0..shards).map(|s| Some(f(s))).collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let s = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if s >= shards {
                            break;
                        }
                        local.push((s, f(s)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None).take(shards).collect();
    for (s, value) in per_worker.into_iter().flatten() {
        out[s] = Some(value);
    }
    out
}

/// Degree-preserving cross-shard stitching: ring swaps between each pair
/// of consecutive shards guarantee the shard chain is connected whenever
/// every shard block is, then `n / 4` global mixing swaps spread
/// cross-shard edges everywhere. Every swap removes edges `(u, x)` and
/// `(v, y)` and adds `(u, v)` and `(x, y)` — degrees never change, so the
/// graph stays exactly `k`-regular. Attempts that would create a self
/// loop or a parallel edge are skipped deterministically.
fn stitch_shards(graph: &mut Graph, grid: &ShardGrid, k: usize, rng: &mut StdRng) {
    let shards = grid.shards();
    let n = grid.bounds()[shards];
    // Ring stitching: aim for k successful swaps between shards s and
    // s + 1 (wrapping), bounded retries so a pathological shard cannot
    // loop forever.
    for s in 0..shards {
        let next = (s + 1) % shards;
        if next == s {
            break;
        }
        let mut done = 0usize;
        let mut attempts = 0usize;
        while done < k && attempts < 8 * k {
            attempts += 1;
            if try_swap(
                graph,
                pick_in(grid.range(s), rng),
                pick_in(grid.range(next), rng),
                rng,
            ) {
                done += 1;
            }
        }
    }
    // Global mixing: each swap picks two uniform nodes anywhere. Half a
    // swap attempt per node relocates roughly one incident edge endpoint
    // per node in expectation — enough to pull the shard-local blocks
    // toward random-regular expansion (the §V wholeness bar) while
    // keeping the sequential merge pass a small fraction of build time.
    let mixing = n / 2;
    for _ in 0..mixing {
        let u = NodeId(rng.gen_range(0..n));
        let v = NodeId(rng.gen_range(0..n));
        try_swap(graph, u, v, rng);
    }
}

/// A uniformly random node inside `range` (all construction-time ids are
/// live, so a plain index draw suffices).
fn pick_in(range: std::ops::Range<usize>, rng: &mut StdRng) -> NodeId {
    NodeId(rng.gen_range(range))
}

/// Attempts one degree-preserving swap rooted at `u` and `v`: picks a
/// random neighbor of each and rewires `(u, x), (v, y)` into
/// `(u, v), (x, y)`. Returns `false` (leaving the graph untouched) when
/// the four endpoints are not distinct or either new edge already exists.
fn try_swap(graph: &mut Graph, u: NodeId, v: NodeId, rng: &mut StdRng) -> bool {
    if u == v {
        return false;
    }
    let Some(&x) = graph.neighbors(u).and_then(|list| list.choose(rng)) else {
        return false;
    };
    let Some(&y) = graph.neighbors(v).and_then(|list| list.choose(rng)) else {
        return false;
    };
    if x == y || x == v || y == u {
        return false;
    }
    if graph.has_edge(u, v) || graph.has_edge(x, y) {
        return false;
    }
    graph.remove_edge(u, x);
    graph.remove_edge(v, y);
    graph.add_edge(u, v);
    graph.add_edge(x, y);
    true
}

/// Everything one sharded wave changed, for the overlay's stats counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaveOutcome {
    /// Victims actually removed (present before the wave).
    pub removed: usize,
    /// Repair edges inserted by the partitioned bulk pass.
    pub edges_added: u64,
    /// Edges dropped by the reconciled prune pass.
    pub edges_pruned: u64,
}

/// Removes one takedown wave with shard-partitioned repair and pruning.
///
/// Four phases, mirroring [`DdsrOverlay::remove_nodes`] semantics at the
/// wave level (all victims die before any repair runs; each affected
/// survivor is pruned once):
///
/// 1. **Takedown** (sequential): victims are removed and their former
///    neighborhoods collected.
/// 2. **Coalesced repair** (parallel by shard): every pair of a victim's
///    surviving former neighbors becomes a candidate edge; the whole
///    wave's candidates go through one
///    [`Graph::add_edges_bulk_partitioned`] call — per-shard half-edge
///    insertion with one deferred sort per touched list.
/// 3. **Prune planning** (parallel by shard): affected survivors are
///    partitioned by owning shard; each shard walks its nodes in
///    ascending id order with its own stream split from the wave base via
///    [`shard_stream_seed`], choosing victims against **frozen**
///    post-repair degrees (the graph is read-only during this phase).
///    Unlike the sequential pass, one survivor's drops do not lower the
///    degree another survivor sees — a documented divergence that keeps
///    shards independent; each node still sheds enough edges on its own
///    to return to `d_max`.
/// 4. **Reconciliation** (sequential): planned removals are applied in
///    ascending shard-then-id order; a drop both endpoints planned is
///    applied (and counted) once.
///
/// The wave advances the caller's RNG by exactly one `u64` draw, and all
/// parallel work is keyed by shard — output is byte-identical at any
/// thread count.
pub fn sharded_wave_repair<R: Rng + ?Sized>(
    graph: &mut Graph,
    config: &DdsrConfig,
    victims: &[NodeId],
    grid: &ShardGrid,
    rng: &mut R,
) -> WaveOutcome {
    let wave_base = rng.next_u64(); // the ONE draw on the caller's stream
    let mut outcome = WaveOutcome::default();

    // Phase 1: takedown.
    let mut neighborhoods: Vec<Vec<NodeId>> = Vec::with_capacity(victims.len());
    for &v in victims {
        if let Some(former) = graph.remove_node(v) {
            outcome.removed += 1;
            neighborhoods.push(former);
        }
    }

    // Phase 2: coalesced repair. Candidate generation is sequential and
    // cheap (the insertions were the hot path); liveness is checked here
    // so the bulk pass sees only valid pairs, and the bulk pass dedupes
    // against both the batch and the existing lists.
    let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();
    for former in &neighborhoods {
        for i in 0..former.len() {
            if !graph.contains(former[i]) {
                continue;
            }
            for j in i + 1..former.len() {
                if graph.contains(former[j]) {
                    candidates.push((former[i], former[j]));
                }
            }
        }
    }
    let threads = thread_budget().clamp(1, MAX_SHARD_THREADS);
    outcome.edges_added =
        graph.add_edges_bulk_partitioned(&candidates, grid.bounds(), threads) as u64;

    // Phases 3 and 4: pruning.
    if config.pruning {
        let mut affected: Vec<NodeId> = neighborhoods
            .into_iter()
            .flatten()
            .filter(|&u| graph.contains(u))
            .collect();
        affected.sort_unstable();
        affected.dedup();
        // Partition the (already ascending) survivors by owning shard.
        let mut by_shard: Vec<Vec<NodeId>> = vec![Vec::new(); grid.shards()];
        for u in affected {
            by_shard[grid.owner(u)].push(u);
        }
        // Phase 3: plan drops per shard against the frozen graph.
        let frozen: &Graph = graph;
        let planned = run_on_shards(grid.shards(), |s| {
            let mut shard_rng = StdRng::seed_from_u64(shard_stream_seed(wave_base, s));
            let mut drops: Vec<(NodeId, NodeId)> = Vec::new();
            for &u in &by_shard[s] {
                plan_prune(frozen, config, u, &mut shard_rng, &mut drops);
            }
            drops
        });
        // Phase 4: apply in ascending shard order (plans within a shard
        // are already in ascending node order).
        for drops in planned.into_iter().flatten() {
            for (u, victim) in drops {
                if graph.remove_edge(u, victim) {
                    outcome.edges_pruned += 1;
                }
            }
        }
    }
    outcome
}

/// Plans the prune drops for one survivor against frozen degrees: while
/// the (locally simulated) degree exceeds `d_max`, drop the
/// highest-degree remaining neighbor — sparing neighbors at or below
/// `d_min` while higher-degree alternatives remain, with random
/// tie-breaks from the shard stream — exactly the sequential rule, except
/// that neighbor degrees are the frozen post-repair ones.
fn plan_prune(
    graph: &Graph,
    config: &DdsrConfig,
    u: NodeId,
    rng: &mut StdRng,
    out: &mut Vec<(NodeId, NodeId)>,
) {
    let Some(neighbors) = graph.neighbors(u) else {
        return;
    };
    let mut degree = neighbors.len();
    if degree <= config.d_max {
        return;
    }
    let mut remaining: Vec<(NodeId, usize)> = neighbors
        .iter()
        .map(|&v| (v, graph.degree(v).unwrap_or(0)))
        .collect();
    while degree > config.d_max && !remaining.is_empty() {
        let eligible: Vec<(NodeId, usize)> = {
            let above_min: Vec<(NodeId, usize)> = remaining
                .iter()
                .copied()
                .filter(|&(_, d)| d > config.d_min)
                .collect();
            if above_min.is_empty() {
                remaining.clone()
            } else {
                above_min
            }
        };
        let Some(victim) = crate::maintenance::highest_degree_victim(&eligible, rng) else {
            return;
        };
        out.push((u, victim));
        remaining.retain(|&(v, _)| v != victim);
        degree -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::DdsrOverlay;
    use onion_graph::budget::with_thread_budget;
    use onion_graph::components::{is_connected, largest_component_size};
    use rand::RngCore;

    #[test]
    fn grid_covers_the_id_space_with_feasible_shards() {
        for (n, k, requested) in [
            (1_000usize, 10usize, 16usize),
            (1_000, 10, 64),
            (1_000, 9, 64), // odd degree forces even shard sizes
            (64, 10, 64),   // clamped hard: shards need > k nodes
            (20, 3, 7),
            (1_000, 10, 1),
        ] {
            let grid = ShardGrid::new(n, k, requested);
            let bounds = grid.bounds();
            assert_eq!(bounds[0], 0, "n={n} k={k}");
            assert_eq!(*bounds.last().unwrap(), n);
            assert!(grid.shards() <= requested.max(1));
            for s in 0..grid.shards() {
                let range = grid.range(s);
                assert!(range.len() > k, "shard {s} too small for k={k}");
                assert!(
                    (range.len() * k).is_multiple_of(2),
                    "shard {s} breaks pairing-model parity at k={k}"
                );
                for id in range.clone() {
                    assert_eq!(grid.owner(NodeId(id)), s);
                }
            }
        }
    }

    #[test]
    fn default_shard_count_is_gated_on_the_population() {
        // Below the gate the sharded build's sequential merge pass costs
        // more than it saves (0.79x at n=10^4, BENCH_overlay_shard.json),
        // so small overlays default to the plain pairing model.
        assert_eq!(default_shards_for(10_000), 1);
        assert_eq!(default_shards_for(30_000), 1);
        assert_eq!(default_shards_for(SHARD_GATE_MIN_NODES - 1), 1);
        assert_eq!(default_shards_for(SHARD_GATE_MIN_NODES), DEFAULT_SHARDS);
        assert_eq!(default_shards_for(100_000), DEFAULT_SHARDS);
        assert_eq!(default_shards_for(1_000_000), DEFAULT_SHARDS);
    }

    #[test]
    fn owner_clamps_ids_past_the_grid() {
        let grid = ShardGrid::new(100, 4, 5);
        assert_eq!(grid.owner(NodeId(99)), grid.shards() - 1);
        assert_eq!(
            grid.owner(NodeId(10_000)),
            grid.shards() - 1,
            "post-construction ids fall into the last shard"
        );
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn grid_rejects_odd_total_degree() {
        ShardGrid::new(5, 3, 2);
    }

    #[test]
    fn shard_stream_seeds_are_distinct_and_stable() {
        let a = shard_stream_seed(7, 0);
        assert_eq!(a, shard_stream_seed(7, 0));
        assert_ne!(a, shard_stream_seed(7, 1));
        assert_ne!(a, shard_stream_seed(8, 0));
    }

    #[test]
    fn single_shard_construction_equals_the_sequential_pairing_model() {
        use rand::rngs::StdRng;
        let grid = ShardGrid::new(300, 8, 1);
        let mut rng = StdRng::seed_from_u64(99);
        let base_probe = {
            let mut clone = StdRng::seed_from_u64(99);
            clone.next_u64()
        };
        let (sharded, ids) = build_sharded_regular(300, 8, &grid, &mut rng);
        let mut derived = StdRng::seed_from_u64(shard_stream_seed(base_probe, 0));
        let (sequential, _) = random_regular(300, 8, &mut derived);
        assert_eq!(sharded, sequential, "one shard must be the pairing model");
        assert_eq!(ids.len(), 300);
    }

    #[test]
    fn sharded_construction_is_regular_connected_and_thread_invariant() {
        use rand::rngs::StdRng;
        let grid = ShardGrid::new(2_000, 10, 64);
        let build = |budget: usize| {
            with_thread_budget(budget, || {
                let mut rng = StdRng::seed_from_u64(5);
                build_sharded_regular(2_000, 10, &grid, &mut rng).0
            })
        };
        let reference = build(1);
        reference.check_invariants().unwrap();
        assert_eq!(reference.node_count(), 2_000);
        for id in 0..2_000 {
            assert_eq!(reference.degree(NodeId(id)), Some(10), "exactly k-regular");
        }
        assert!(is_connected(&reference), "stitching connects the shards");
        for budget in [2usize, 8, 64] {
            assert_eq!(build(budget), reference, "budget={budget}");
        }
    }

    #[test]
    fn sharded_wave_repair_is_thread_invariant_and_respects_d_max() {
        use rand::rngs::StdRng;
        let k = 10usize;
        let grid = ShardGrid::new(1_500, k, 32);
        let config = DdsrConfig::for_degree(k);
        let run = |budget: usize| {
            with_thread_budget(budget, || {
                let mut rng = StdRng::seed_from_u64(17);
                let (mut graph, ids) = build_sharded_regular(1_500, k, &grid, &mut rng);
                let victims: Vec<NodeId> = ids.choose_multiple(&mut rng, 150).copied().collect();
                let outcome = sharded_wave_repair(&mut graph, &config, &victims, &grid, &mut rng);
                (graph, outcome)
            })
        };
        let (reference, outcome) = run(1);
        reference.check_invariants().unwrap();
        assert_eq!(outcome.removed, 150);
        assert!(outcome.edges_added > 0);
        assert!(
            reference.max_degree() <= config.d_max,
            "reconciled pruning must enforce d_max (got {})",
            reference.max_degree()
        );
        // The §V bar: self-healing holds the overlay essentially whole
        // (pruning may orphan a handful of nodes, exactly as in the
        // sequential protocol).
        let frac = largest_component_size(&reference) as f64 / reference.node_count() as f64;
        assert!(frac > 0.99, "wave repair keeps DDSR whole (frac={frac})");
        for budget in [2usize, 8] {
            let (graph, o) = run(budget);
            assert_eq!(graph, reference, "budget={budget}");
            assert_eq!(o, outcome, "budget={budget}");
        }
    }

    #[test]
    fn sharded_wave_repair_skips_dead_victims_and_advances_one_draw() {
        use rand::rngs::StdRng;
        let grid = ShardGrid::new(400, 6, 8);
        let config = DdsrConfig::for_degree(6);
        let mut rng = StdRng::seed_from_u64(3);
        let (mut graph, ids) = build_sharded_regular(400, 6, &grid, &mut rng);
        let victims = [ids[0], ids[0], NodeId(9_999), ids[1]];
        let before = rng.clone().next_u64();
        let outcome = sharded_wave_repair(&mut graph, &config, &victims, &grid, &mut rng);
        assert_eq!(outcome.removed, 2, "duplicates and ghosts are no-ops");
        // Exactly one u64 was consumed from the caller's stream.
        let mut replay = rng.clone();
        assert_ne!(before, replay.next_u64());
        graph.check_invariants().unwrap();
    }

    #[test]
    fn overlay_fronts_construction_and_wave_repair() {
        use rand::rngs::StdRng;
        let k = 10usize;
        let grid = ShardGrid::new(1_000, k, 16);
        let mut rng = StdRng::seed_from_u64(8);
        let (mut overlay, ids) =
            DdsrOverlay::new_regular_sharded(1_000, k, DdsrConfig::for_degree(k), &grid, &mut rng);
        assert_eq!(overlay.node_count(), 1_000);
        let victims: Vec<NodeId> = ids.iter().copied().take(100).collect();
        assert_eq!(overlay.remove_nodes_sharded(&victims, &grid, &mut rng), 100);
        let stats = overlay.stats();
        assert_eq!(stats.nodes_repaired, 100);
        assert!(stats.edges_added > 0);
        assert!(stats.edges_pruned > 0);
        assert!(overlay.graph().max_degree() <= k);
        let frac = largest_component_size(overlay.graph()) as f64 / overlay.node_count() as f64;
        assert!(frac > 0.99, "overlay stays whole (frac={frac})");
        // Re-removing the same wave is a no-op.
        assert_eq!(overlay.remove_nodes_sharded(&victims, &grid, &mut rng), 0);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// The shards=1 pin, property-tested: for any feasible (n, k,
            /// seed) the single-shard sharded build equals `random_regular`
            /// on the derived shard-0 stream — today's sequential
            /// construction, addressed through the splitting discipline.
            #[test]
            fn single_shard_equals_sequential_stream(
                seed in 0u64..10_000,
                n in 20usize..200,
                k in 3usize..8,
            ) {
                prop_assume!((n * k).is_multiple_of(2));
                let grid = ShardGrid::new(n, k, 1);
                let mut rng = StdRng::seed_from_u64(seed);
                let base = {
                    let mut clone = StdRng::seed_from_u64(seed);
                    clone.next_u64()
                };
                let (sharded, _) = build_sharded_regular(n, k, &grid, &mut rng);
                let (sequential, _) =
                    random_regular(n, k, &mut StdRng::seed_from_u64(shard_stream_seed(base, 0)));
                prop_assert_eq!(sharded, sequential);
            }

            /// Any grid yields an exactly k-regular graph whose bytes do
            /// not depend on the worker-thread budget.
            #[test]
            fn construction_is_regular_at_any_budget(
                seed in 0u64..1_000,
                shards in 1usize..12,
            ) {
                let (n, k) = (240usize, 6usize);
                let grid = ShardGrid::new(n, k, shards);
                let build = |budget: usize| {
                    with_thread_budget(budget, || {
                        let mut rng = StdRng::seed_from_u64(seed);
                        build_sharded_regular(n, k, &grid, &mut rng).0
                    })
                };
                let graph = build(1);
                graph.check_invariants().unwrap();
                for id in 0..n {
                    prop_assert_eq!(graph.degree(NodeId(id)), Some(k));
                }
                prop_assert_eq!(build(4), graph);
            }
        }
    }
}
