//! SuperOnionBots (§VII-B): the paper's sketch of a next-generation design
//! that resists SOAP by fully exploiting the host / IP / `.onion`
//! decoupling.
//!
//! Each physical host runs `m` virtual nodes, each virtual node keeps `i`
//! peers, for `n` hosts in total (Figure 8 uses n = 5, m = 3, i = 2). The
//! host periodically runs a connectivity probe: a gossip message injected at
//! one of its virtual nodes must reach its other `m - 1` virtual nodes
//! through the overlay. Virtual nodes that the probe cannot reach are
//! presumed soaped; the host discards them and bootstraps replacements using
//! peers of its still-healthy virtual nodes.

use std::cell::RefCell;
use std::collections::BTreeMap;

use onion_graph::graph::{Graph, NodeId};
use onion_graph::metrics::BfsScratch;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a physical host in the SuperOnion construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub usize);

/// Parameters of a SuperOnion construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperOnionConfig {
    /// Number of physical hosts `n`.
    pub hosts: usize,
    /// Virtual nodes per host `m`.
    pub virtual_per_host: usize,
    /// Peers per virtual node `i`.
    pub peers_per_virtual: usize,
}

impl SuperOnionConfig {
    /// The construction shown in Figure 8 of the paper: n = 5, m = 3, i = 2.
    pub fn figure8() -> Self {
        SuperOnionConfig {
            hosts: 5,
            virtual_per_host: 3,
            peers_per_virtual: 2,
        }
    }
}

/// Result of one host's connectivity probe.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeReport {
    /// The probing host.
    pub host: HostId,
    /// Virtual nodes of this host reached by the gossip probe.
    pub reachable: Vec<NodeId>,
    /// Virtual nodes of this host the probe could not reach (presumed
    /// soaped or taken down).
    pub unreachable: Vec<NodeId>,
    /// Gossip messages used by the probe.
    pub messages: usize,
}

/// The SuperOnion overlay: the virtual-node graph plus the host ownership
/// map.
///
/// Both maps are ordered (`BTreeMap`): host recovery and probing draw from
/// seeded RNG streams while walking these structures, so hash-randomized
/// iteration order could leak into the RNG stream and break same-seed
/// reproducibility (the bug class fixed in `SoapAttack`).
#[derive(Debug, Clone)]
pub struct SuperOnion {
    config: SuperOnionConfig,
    graph: Graph,
    owner: BTreeMap<NodeId, HostId>,
    virtuals: BTreeMap<HostId, Vec<NodeId>>,
    /// Reusable BFS state shared by every [`probe`](SuperOnion::probe):
    /// one probe per host per round used to allocate a fresh
    /// `DistanceMap` (an `O(id_bound)` distance array plus queue) each
    /// call; the scratch amortizes that to one allocation for the
    /// overlay's lifetime. `RefCell` because probing is logically `&self`
    /// (it only reads the graph).
    scratch: RefCell<BfsScratch>,
}

impl SuperOnion {
    /// Builds a SuperOnion overlay: virtual nodes are created per host and
    /// each peers with `i` virtual nodes of *other* hosts chosen at random.
    pub fn build<R: Rng + ?Sized>(config: SuperOnionConfig, rng: &mut R) -> Self {
        let mut graph = Graph::new();
        let mut owner = BTreeMap::new();
        let mut virtuals: BTreeMap<HostId, Vec<NodeId>> = BTreeMap::new();
        for h in 0..config.hosts {
            let host = HostId(h);
            for _ in 0..config.virtual_per_host {
                let v = graph.add_node();
                owner.insert(v, host);
                virtuals.entry(host).or_default().push(v);
            }
        }
        let mut overlay = SuperOnion {
            config,
            graph,
            owner,
            virtuals,
            scratch: RefCell::new(BfsScratch::new()),
        };
        let all: Vec<NodeId> = overlay.graph.nodes();
        for &v in &all {
            overlay.peer_virtual_node(v, &all, rng);
        }
        overlay
    }

    fn peer_virtual_node<R: Rng + ?Sized>(
        &mut self,
        v: NodeId,
        candidates: &[NodeId],
        rng: &mut R,
    ) {
        let my_host = self.owner[&v];
        let mut foreign: Vec<NodeId> = candidates
            .iter()
            .copied()
            .filter(|c| *c != v && self.owner.get(c) != Some(&my_host) && self.graph.contains(*c))
            .collect();
        foreign.shuffle(rng);
        for peer in foreign {
            if self.graph.degree(v).unwrap_or(0) >= self.config.peers_per_virtual {
                break;
            }
            self.graph.add_edge(v, peer);
        }
    }

    /// The construction parameters.
    pub fn config(&self) -> SuperOnionConfig {
        self.config
    }

    /// The underlying virtual-node graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The virtual nodes currently owned by a host.
    pub fn virtual_nodes(&self, host: HostId) -> Vec<NodeId> {
        self.virtuals.get(&host).cloned().unwrap_or_default()
    }

    /// The owner of a virtual node, if it exists.
    pub fn owner_of(&self, node: NodeId) -> Option<HostId> {
        self.owner.get(&node).copied()
    }

    /// Total number of live virtual nodes.
    pub fn virtual_node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Simulates soaping a virtual node: the adversary's clones displace all
    /// of its real peers, which in the graph model means cutting its edges to
    /// every other real node (the clones themselves relay nothing useful).
    pub fn soap_virtual_node(&mut self, node: NodeId) -> bool {
        if !self.graph.contains(node) {
            return false;
        }
        let peers: Vec<NodeId> = self
            .graph
            .neighbors(node)
            .map(<[NodeId]>::to_vec)
            .unwrap_or_default();
        for p in peers {
            self.graph.remove_edge(node, p);
        }
        true
    }

    /// Runs a host's connectivity probe: gossip injected at one of its
    /// virtual nodes (flooding across the whole overlay, since messages are
    /// indistinguishable and every node relays) must reach its other virtual
    /// nodes.
    pub fn probe(&self, host: HostId) -> ProbeReport {
        let virtuals = self.virtual_nodes(host);
        // Inject the probe at a virtual node that still has live peers; a
        // soaped source would make every sibling look unreachable even when
        // the rest of the host is healthy.
        let source = virtuals
            .iter()
            .copied()
            .find(|&v| self.graph.degree(v).unwrap_or(0) > 0)
            .or_else(|| virtuals.first().copied());
        let Some(source) = source else {
            return ProbeReport {
                host,
                reachable: Vec::new(),
                unreachable: Vec::new(),
                messages: 0,
            };
        };
        // One reusable-scratch BFS yields both answers a probe needs:
        // membership (which siblings the gossip reached) and the message
        // count. In a flood every informed node forwards to all of its
        // peers exactly once, so total messages equal the degree sum over
        // the reached set — the same value `flood_broadcast` counts, for
        // one traversal and zero steady-state allocation instead of two
        // traversals and a fresh `DistanceMap` per probe.
        let mut scratch = self.scratch.borrow_mut();
        scratch.run(&self.graph, source);
        let messages: usize = scratch
            .reached()
            .iter()
            .map(|&v| self.graph.degree(v).unwrap_or(0))
            .sum();
        let mut reachable = Vec::new();
        let mut unreachable = Vec::new();
        for &v in &virtuals {
            if scratch.contains(v) {
                reachable.push(v);
            } else {
                unreachable.push(v);
            }
        }
        ProbeReport {
            host,
            reachable,
            unreachable,
            messages,
        }
    }

    /// Recovery step after a probe: every unreachable virtual node is
    /// discarded and replaced by a fresh virtual node bootstrapped from the
    /// peers of the host's healthy virtual nodes (and, failing that, any
    /// other live foreign virtual node).
    pub fn recover<R: Rng + ?Sized>(&mut self, host: HostId, rng: &mut R) -> usize {
        let probe = self.probe(host);
        let mut replaced = 0usize;
        for dead in probe.unreachable {
            // Discard the soaped virtual node.
            self.graph.remove_node(dead);
            self.owner.remove(&dead);
            if let Some(list) = self.virtuals.get_mut(&host) {
                list.retain(|&v| v != dead);
            }
            // Bootstrap a replacement.
            let fresh = self.graph.add_node();
            self.owner.insert(fresh, host);
            self.virtuals.entry(host).or_default().push(fresh);
            let candidates: Vec<NodeId> = self.graph.nodes();
            self.peer_virtual_node(fresh, &candidates, rng);
            replaced += 1;
        }
        replaced
    }

    /// A host is operational while at least one of its virtual nodes can
    /// still reach the rest of the overlay (i.e. has at least one live,
    /// un-soaped peer).
    pub fn host_operational(&self, host: HostId) -> bool {
        let probe = self.probe(host);
        probe
            .reachable
            .iter()
            .any(|&v| self.graph.degree(v).unwrap_or(0) > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn figure8(seed: u64) -> (SuperOnion, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let so = SuperOnion::build(SuperOnionConfig::figure8(), &mut rng);
        (so, rng)
    }

    #[test]
    fn figure8_construction_shape() {
        let (so, _) = figure8(1);
        assert_eq!(so.virtual_node_count(), 15, "n * m = 5 * 3 virtual nodes");
        for h in 0..5 {
            assert_eq!(so.virtual_nodes(HostId(h)).len(), 3);
        }
        // Virtual nodes never peer with siblings on the same host.
        for (a, b) in so.graph().edges() {
            assert_ne!(so.owner_of(a), so.owner_of(b));
        }
        // Each virtual node has at most i = 2 outgoing peer choices, but may
        // have a higher total degree because other nodes also chose it.
        assert!(so.graph().min_degree() >= 1);
    }

    #[test]
    fn probes_pass_on_a_healthy_overlay() {
        let (so, _) = figure8(2);
        for h in 0..5 {
            let probe = so.probe(HostId(h));
            assert!(probe.unreachable.is_empty(), "host {h} probe failed");
            assert_eq!(probe.reachable.len(), 3);
            assert!(probe.messages > 0);
        }
    }

    #[test]
    fn soaped_virtual_node_is_detected_and_replaced() {
        let (mut so, mut rng) = figure8(3);
        let host = HostId(0);
        let victim = so.virtual_nodes(host)[1];
        assert!(so.soap_virtual_node(victim));
        let probe = so.probe(host);
        assert!(probe.unreachable.contains(&victim));
        let replaced = so.recover(host, &mut rng);
        assert_eq!(replaced, 1);
        assert_eq!(so.virtual_nodes(host).len(), 3);
        assert!(
            so.probe(host).unreachable.is_empty(),
            "recovered host is healthy again"
        );
    }

    #[test]
    fn host_survives_soaping_of_a_strict_subset_of_virtual_nodes() {
        let (mut so, _) = figure8(4);
        let host = HostId(2);
        let virtuals = so.virtual_nodes(host);
        so.soap_virtual_node(virtuals[0]);
        so.soap_virtual_node(virtuals[1]);
        assert!(
            so.host_operational(host),
            "one healthy virtual node keeps the host in the botnet"
        );
        so.soap_virtual_node(virtuals[2]);
        assert!(
            !so.host_operational(host),
            "soaping all m virtual nodes isolates the host"
        );
    }

    #[test]
    fn soaping_missing_node_is_rejected() {
        let (mut so, _) = figure8(5);
        assert!(!so.soap_virtual_node(NodeId(10_000)));
    }

    #[test]
    fn probe_message_count_equals_flood_broadcast() {
        // The scratch-based probe counts messages as the degree sum over
        // the reached set; that must stay equal to what an actual flood
        // simulation reports, healthy or soaped.
        let (mut so, _) = figure8(7);
        for round in 0..2 {
            for h in 0..5 {
                let host = HostId(h);
                let probe = so.probe(host);
                let source = so
                    .virtual_nodes(host)
                    .iter()
                    .copied()
                    .find(|&v| so.graph().degree(v).unwrap_or(0) > 0)
                    .or_else(|| so.virtual_nodes(host).first().copied())
                    .unwrap();
                let flood = onionbots_core::routing::flood_broadcast(so.graph(), source);
                assert_eq!(probe.messages, flood.messages, "host {h} round {round}");
            }
            // Second round probes a soaped overlay.
            let victim = so.virtual_nodes(HostId(0))[0];
            so.soap_virtual_node(victim);
        }
    }

    #[test]
    fn recovery_is_idempotent_on_healthy_hosts() {
        let (mut so, mut rng) = figure8(6);
        assert_eq!(so.recover(HostId(1), &mut rng), 0);
        assert_eq!(so.virtual_node_count(), 15);
    }
}
