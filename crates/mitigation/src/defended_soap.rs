//! SOAP against a *defended* OnionBot (§VII-A): quantifying the trade-off
//! between adversarial resilience and recoverability.
//!
//! The paper anticipates that attackers will respond to SOAP with proof of
//! work and rate limiting on peering acceptance, and leaves "finding the
//! right balance between the recoverability and adversarial resilience" as
//! an open question. This module runs the same SOAP campaign against an
//! overlay whose peering path is gated by those defenses and reports the
//! cost on both sides:
//!
//! * defender cost — hash evaluations and simulated wall-clock time spent
//!   getting clones accepted;
//! * attacker (botnet) cost — the same gates delay legitimate repair after
//!   takedowns, measured as extra time per repaired edge.

use onion_graph::graph::NodeId;
use onionbots_core::overlay::DdsrOverlay;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::defenses::{PeeringRateLimiter, PowChallenge};
use crate::soap::{SoapAttack, SoapConfig, SoapOutcome};

/// Defense configuration applied to every peering acceptance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefenseConfig {
    /// Base proof-of-work difficulty in bits (0 disables PoW).
    pub pow_base_bits: u32,
    /// Rate limiter applied per accepting node (delays in simulated
    /// seconds).
    pub rate_limiter: PeeringRateLimiter,
}

impl DefenseConfig {
    /// No defenses: the basic OnionBot of §IV.
    pub fn none() -> Self {
        DefenseConfig {
            pow_base_bits: 0,
            rate_limiter: PeeringRateLimiter {
                base_delay_secs: 0,
                per_peer_delay_secs: 0,
            },
        }
    }

    /// The defended configuration the ablation bench uses.
    pub fn standard() -> Self {
        DefenseConfig {
            pow_base_bits: 10,
            rate_limiter: PeeringRateLimiter {
                base_delay_secs: 60,
                per_peer_delay_secs: 300,
            },
        }
    }
}

/// Outcome of a SOAP campaign against a defended overlay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefendedSoapOutcome {
    /// The underlying SOAP result (containment trace, clone count, ...).
    pub soap: SoapOutcome,
    /// Total hash evaluations the defender spent solving PoW challenges.
    pub defender_hash_evaluations: u64,
    /// Total simulated seconds the defender waited on rate limits.
    pub defender_wait_secs: u64,
    /// Simulated seconds of rate-limit delay a *legitimate* repair of one
    /// average takedown would incur under the same defenses (the
    /// recoverability cost).
    pub repair_delay_secs_per_takedown: u64,
}

/// Runs SOAP against an overlay whose peering acceptance is gated by the
/// given defenses, and accounts for both sides' costs.
pub fn run_defended_soap<R: Rng + ?Sized>(
    overlay: &mut DdsrOverlay,
    compromised: NodeId,
    soap_config: SoapConfig,
    defenses: DefenseConfig,
    rng: &mut R,
) -> DefendedSoapOutcome {
    // Account defender-side costs for each clone acceptance the campaign
    // will make. The SOAP campaign itself is unchanged — the defenses do not
    // stop it, they only make it more expensive — which is exactly the
    // paper's conclusion about basic PoW/rate limiting.
    let mut attack = SoapAttack::new(soap_config, compromised);
    let soap = attack.run(overlay, rng);

    let mut defender_hash_evaluations = 0u64;
    let mut defender_wait_secs = 0u64;
    if defenses.pow_base_bits > 0 {
        for i in 0..soap.clones_created {
            // Difficulty grows with how many requests the victim node has
            // already served; clones arrive in bursts, so scale by the index
            // within the campaign.
            let challenge = PowChallenge::for_request_load(
                i.to_be_bytes().to_vec(),
                defenses.pow_base_bits,
                (i % 64) as u64,
            );
            // Expected work for a d-bit challenge is 2^d hashes; use the
            // expectation rather than solving every instance so large
            // campaigns stay cheap to simulate.
            defender_hash_evaluations += 1u64 << challenge.difficulty_bits.min(40);
        }
    }
    let avg_degree = overlay.config().d_max;
    for i in 0..soap.clones_created {
        defender_wait_secs += defenses
            .rate_limiter
            .delay_for(avg_degree + (i % avg_degree.max(1)));
    }

    // Recoverability cost: repairing one takedown re-establishes on the
    // order of d_max edges, each gated by the same defenses.
    let repair_delay_secs_per_takedown = defenses.rate_limiter.total_delay(0, avg_degree)
        + if defenses.pow_base_bits > 0 {
            avg_degree as u64 // one challenge solve per edge, amortized to 1s each
        } else {
            0
        };

    DefendedSoapOutcome {
        soap,
        defender_hash_evaluations,
        defender_wait_secs,
        repair_delay_secs_per_takedown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onionbots_core::DdsrConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn overlay(seed: u64) -> (DdsrOverlay, Vec<NodeId>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (ov, ids) = DdsrOverlay::new_regular(40, 6, DdsrConfig::for_degree(6), &mut rng);
        (ov, ids, rng)
    }

    #[test]
    fn defenses_do_not_prevent_neutralization_of_the_basic_design() {
        let (mut ov, ids, mut rng) = overlay(1);
        let outcome = run_defended_soap(
            &mut ov,
            ids[0],
            SoapConfig::default(),
            DefenseConfig::standard(),
            &mut rng,
        );
        assert!(outcome.soap.neutralized);
    }

    #[test]
    fn defended_campaign_is_strictly_more_expensive_for_the_defender() {
        let (mut ov_a, ids_a, mut rng_a) = overlay(2);
        let undefended = run_defended_soap(
            &mut ov_a,
            ids_a[0],
            SoapConfig::default(),
            DefenseConfig::none(),
            &mut rng_a,
        );
        let (mut ov_b, ids_b, mut rng_b) = overlay(2);
        let defended = run_defended_soap(
            &mut ov_b,
            ids_b[0],
            SoapConfig::default(),
            DefenseConfig::standard(),
            &mut rng_b,
        );
        assert_eq!(undefended.defender_hash_evaluations, 0);
        assert_eq!(undefended.defender_wait_secs, 0);
        assert!(defended.defender_hash_evaluations > 0);
        assert!(defended.defender_wait_secs > 0);
    }

    #[test]
    fn defenses_also_slow_legitimate_repair() {
        let (mut ov, ids, mut rng) = overlay(3);
        let defended = run_defended_soap(
            &mut ov,
            ids[0],
            SoapConfig::default(),
            DefenseConfig::standard(),
            &mut rng,
        );
        assert!(
            defended.repair_delay_secs_per_takedown > 0,
            "the recoverability cost of the defenses must be visible"
        );
        let (mut ov2, ids2, mut rng2) = overlay(3);
        let undefended = run_defended_soap(
            &mut ov2,
            ids2[0],
            SoapConfig::default(),
            DefenseConfig::none(),
            &mut rng2,
        );
        assert_eq!(undefended.repair_delay_secs_per_takedown, 0);
    }

    #[test]
    fn stronger_pow_increases_cost_superlinearly() {
        let weak = DefenseConfig {
            pow_base_bits: 8,
            ..DefenseConfig::standard()
        };
        let strong = DefenseConfig {
            pow_base_bits: 16,
            ..DefenseConfig::standard()
        };
        let (mut ov_a, ids_a, mut rng_a) = overlay(4);
        let weak_outcome =
            run_defended_soap(&mut ov_a, ids_a[0], SoapConfig::default(), weak, &mut rng_a);
        let (mut ov_b, ids_b, mut rng_b) = overlay(4);
        let strong_outcome = run_defended_soap(
            &mut ov_b,
            ids_b[0],
            SoapConfig::default(),
            strong,
            &mut rng_b,
        );
        assert!(
            strong_outcome.defender_hash_evaluations > weak_outcome.defender_hash_evaluations * 10
        );
    }
}
