//! SOAP — the Sybil Onion Attack Protocol (§VI-B), the paper's proposed
//! mitigation against basic OnionBots.
//!
//! The defender first obtains the `.onion` address of some bot (honeypot or
//! reverse engineering), then "runs many hidden services, disclosing a subset
//! of these as neighbors to each peer we encounter, so gradually over time
//! our clone nodes dominate the neighborhood of each bot and contain it."
//! Clones declare a small random degree (e.g. 2) so the target's peering
//! policy keeps replacing real peers with clones, until the bot is entirely
//! surrounded (Figure 7) and eventually the whole botnet is partitioned into
//! contained nodes.
//!
//! Because Tor decouples addresses from hosts, all clones can run on one
//! machine — the attack is cheap for the defender.

use std::collections::{BTreeSet, VecDeque};

use onion_graph::graph::NodeId;
use onionbots_core::overlay::DdsrOverlay;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a SOAP campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoapConfig {
    /// Upper bound (exclusive) of the small random degree clones declare.
    pub max_declared_degree: usize,
    /// Maximum peering attempts per target per iteration.
    pub attempts_per_iteration: usize,
    /// Safety cap on campaign iterations.
    pub max_iterations: usize,
}

impl Default for SoapConfig {
    fn default() -> Self {
        SoapConfig {
            max_declared_degree: 3,
            attempts_per_iteration: 4,
            max_iterations: 10_000,
        }
    }
}

/// One sample of campaign progress (a row of the Figure-7 style trace).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoapProgress {
    /// Campaign iteration index.
    pub iteration: usize,
    /// Bots whose entire neighborhood is clones.
    pub contained_bots: usize,
    /// Bots discovered so far (via traversal from the initially compromised
    /// bot).
    pub discovered_bots: usize,
    /// Total live bots in the overlay.
    pub total_bots: usize,
    /// Clone nodes created so far.
    pub clones_created: usize,
}

/// Result of a full SOAP campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoapOutcome {
    /// Progress trace, one entry per iteration (plus the initial state).
    pub trace: Vec<SoapProgress>,
    /// Whether every discovered bot ended up contained.
    pub neutralized: bool,
    /// Iterations executed.
    pub iterations: usize,
    /// Clones created in total.
    pub clones_created: usize,
}

/// The state of a SOAP campaign against a [`DdsrOverlay`].
///
/// Both sets are ordered: the campaign iterates `discovered` to pick
/// peering targets while drawing from the seeded RNG, so hash-randomized
/// iteration order would make two same-seed campaigns diverge (and break
/// the result cache's byte-identical-replay contract).
#[derive(Debug)]
pub struct SoapAttack {
    config: SoapConfig,
    clones: BTreeSet<NodeId>,
    discovered: BTreeSet<NodeId>,
}

impl SoapAttack {
    /// Starts a campaign from one compromised bot whose peer list the
    /// defender has recovered.
    pub fn new(config: SoapConfig, initially_compromised: NodeId) -> Self {
        let mut discovered = BTreeSet::new();
        discovered.insert(initially_compromised);
        SoapAttack {
            config,
            clones: BTreeSet::new(),
            discovered,
        }
    }

    /// Nodes known to be defender clones.
    pub fn clones(&self) -> &BTreeSet<NodeId> {
        &self.clones
    }

    /// Real bots discovered so far.
    pub fn discovered_bots(&self) -> usize {
        self.discovered.len()
    }

    /// Returns `true` if the given bot is fully surrounded by clones (or has
    /// lost all of its peers).
    pub fn is_contained(&self, overlay: &DdsrOverlay, bot: NodeId) -> bool {
        match overlay.peers(bot) {
            Some(peers) => peers.iter().all(|p| self.clones.contains(p)),
            None => true,
        }
    }

    /// Number of discovered, still-alive bots that are fully contained.
    pub fn contained_count(&self, overlay: &DdsrOverlay) -> usize {
        self.discovered
            .iter()
            .filter(|&&b| overlay.graph().contains(b) && self.is_contained(overlay, b))
            .count()
    }

    /// Expands the defender's knowledge: every peer of a discovered,
    /// non-contained bot is discovered too (the defender's clones learn peer
    /// lists as they are accepted).
    fn expand_discovery(&mut self, overlay: &DdsrOverlay) {
        let mut queue: VecDeque<NodeId> = self.discovered.iter().copied().collect();
        while let Some(bot) = queue.pop_front() {
            let Some(peers) = overlay.peers(bot) else {
                continue;
            };
            for p in peers {
                if !self.clones.contains(&p) && self.discovered.insert(p) {
                    queue.push_back(p);
                }
            }
        }
    }

    /// Runs a single campaign iteration: for every discovered, not-yet
    /// contained bot, spawn clones and request peering with a small declared
    /// degree. Returns the progress sample after the iteration.
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        overlay: &mut DdsrOverlay,
        iteration: usize,
        rng: &mut R,
    ) -> SoapProgress {
        self.expand_discovery(overlay);
        let targets: Vec<NodeId> = self
            .discovered
            .iter()
            .copied()
            .filter(|&b| overlay.graph().contains(b) && !self.is_contained(overlay, b))
            .collect();
        for target in targets {
            for _ in 0..self.config.attempts_per_iteration {
                if self.is_contained(overlay, target) {
                    break;
                }
                // Spawn a fresh clone hidden service (free thanks to the
                // address/host decoupling) and request peering, declaring a
                // small random degree.
                let clone = overlay.add_isolated_node();
                self.clones.insert(clone);
                let declared = rng.gen_range(1..self.config.max_declared_degree.max(2));
                overlay.request_peering(clone, target, declared, rng);
            }
        }
        SoapProgress {
            iteration,
            contained_bots: self.contained_count(overlay),
            discovered_bots: self.discovered.len(),
            total_bots: overlay
                .graph()
                .nodes()
                .iter()
                .filter(|n| !self.clones.contains(n))
                .count(),
            clones_created: self.clones.len(),
        }
    }

    /// Runs the campaign until every discovered bot is contained or the
    /// iteration cap is reached.
    pub fn run<R: Rng + ?Sized>(&mut self, overlay: &mut DdsrOverlay, rng: &mut R) -> SoapOutcome {
        let mut trace = Vec::new();
        trace.push(SoapProgress {
            iteration: 0,
            contained_bots: self.contained_count(overlay),
            discovered_bots: self.discovered.len(),
            total_bots: overlay.node_count(),
            clones_created: 0,
        });
        let mut iterations = 0usize;
        for i in 1..=self.config.max_iterations {
            iterations = i;
            let progress = self.step(overlay, i, rng);
            let done = progress.contained_bots >= progress.discovered_bots
                || progress.discovered_bots == 0;
            trace.push(progress);
            if done {
                break;
            }
        }
        let neutralized = self
            .discovered
            .iter()
            .all(|&b| !overlay.graph().contains(b) || self.is_contained(overlay, b));
        SoapOutcome {
            neutralized,
            iterations,
            clones_created: self.clones.len(),
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onionbots_core::config::DdsrConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn overlay(n: usize, k: usize, seed: u64) -> (DdsrOverlay, Vec<NodeId>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (ov, ids) = DdsrOverlay::new_regular(n, k, DdsrConfig::for_degree(k), &mut rng);
        (ov, ids, rng)
    }

    #[test]
    fn single_target_is_fully_surrounded() {
        let (mut ov, ids, mut rng) = overlay(30, 6, 1);
        let mut attack = SoapAttack::new(SoapConfig::default(), ids[0]);
        // Run a handful of iterations focused on the whole botnet; the first
        // target must become contained quickly.
        for i in 1..=50 {
            attack.step(&mut ov, i, &mut rng);
            if attack.is_contained(&ov, ids[0]) {
                break;
            }
        }
        assert!(attack.is_contained(&ov, ids[0]), "target never contained");
        let peers = ov.peers(ids[0]).unwrap();
        assert!(!peers.is_empty());
        assert!(peers.iter().all(|p| attack.clones().contains(p)));
    }

    #[test]
    fn full_campaign_neutralizes_a_basic_onionbot() {
        let (mut ov, ids, mut rng) = overlay(40, 6, 2);
        let mut attack = SoapAttack::new(SoapConfig::default(), ids[0]);
        let outcome = attack.run(&mut ov, &mut rng);
        assert!(outcome.neutralized, "basic OnionBot must be soapable");
        assert!(outcome.clones_created > 0);
        assert_eq!(
            outcome.trace.last().unwrap().contained_bots,
            outcome.trace.last().unwrap().discovered_bots
        );
        // Containment is monotonically non-decreasing in the trace tail.
        let contained: Vec<usize> = outcome.trace.iter().map(|p| p.contained_bots).collect();
        assert!(*contained.last().unwrap() >= contained[0]);
    }

    #[test]
    fn discovery_spreads_through_the_peer_graph() {
        let (mut ov, ids, mut rng) = overlay(25, 4, 3);
        let mut attack = SoapAttack::new(SoapConfig::default(), ids[0]);
        attack.step(&mut ov, 1, &mut rng);
        assert!(
            attack.discovered_bots() > 1,
            "peers of the compromised bot must be discovered"
        );
    }

    #[test]
    fn contained_bots_cannot_receive_benign_peers_back() {
        let (mut ov, ids, mut rng) = overlay(20, 4, 4);
        let mut attack = SoapAttack::new(SoapConfig::default(), ids[0]);
        let outcome = attack.run(&mut ov, &mut rng);
        assert!(outcome.neutralized);
        // Every surviving discovered bot's neighborhood is clones only, so a
        // broadcast starting from any real bot reaches no other real bot.
        for &bot in &ids {
            if !ov.graph().contains(bot) {
                continue;
            }
            let report = onionbots_core::routing::flood_broadcast(ov.graph(), bot);
            let real_reached = report.reached
                - ov.graph()
                    .nodes()
                    .iter()
                    .filter(|n| attack.clones().contains(n))
                    .count()
                    .min(report.reached - 1);
            // The bot itself plus possibly clones; no other real bot.
            assert!(real_reached <= 1 || report.reached <= 1 + attack.clones().len());
        }
    }

    #[test]
    fn missing_target_is_trivially_contained() {
        let (ov, _, _) = overlay(10, 4, 5);
        let attack = SoapAttack::new(SoapConfig::default(), NodeId(99_999));
        assert!(attack.is_contained(&ov, NodeId(99_999)));
    }
}
