//! Attacker-side countermeasures against SOAP (§VII-A): proof of work and
//! rate limiting on new peering requests.
//!
//! "In the proof of work scheme each new node needs to do some work before
//! being accepted as a peer of an already existing node. As more nodes
//! request peering with a node, the complexity of the task is increased to
//! give preference to the older nodes. The same approach can be used in the
//! rate limiting, where the delay of accepting new nodes is increased
//! proportional to the size of peer list." These defenses raise the cost of
//! flooding a node with clones, at the price of slower legitimate repair —
//! the trade-off the paper leaves as an open question and which the ablation
//! bench explores.

use onion_crypto::digest::Digest;
use onion_crypto::sha256::Sha256;
use serde::{Deserialize, Serialize};

/// A proof-of-work challenge for one peering request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowChallenge {
    /// Random challenge bytes chosen by the accepting node.
    pub challenge: Vec<u8>,
    /// Required number of leading zero bits in `SHA-256(challenge || nonce)`.
    pub difficulty_bits: u32,
}

impl PowChallenge {
    /// Creates a challenge with difficulty scaled to how many peering
    /// requests the node has recently received: `base + log2(1 + requests)`.
    pub fn for_request_load(
        challenge: Vec<u8>,
        base_difficulty: u32,
        recent_requests: u64,
    ) -> Self {
        let scaled =
            base_difficulty + (64 - (recent_requests + 1).leading_zeros()).saturating_sub(1);
        PowChallenge {
            challenge,
            difficulty_bits: scaled,
        }
    }

    /// Checks whether `nonce` solves the challenge.
    pub fn verify(&self, nonce: u64) -> bool {
        let mut data = self.challenge.clone();
        data.extend_from_slice(&nonce.to_be_bytes());
        let digest = Sha256::digest(&data);
        leading_zero_bits(&digest) >= self.difficulty_bits
    }

    /// Solves the challenge by brute force, returning the nonce and the
    /// number of hash evaluations spent (the attacker's cost).
    pub fn solve(&self, max_attempts: u64) -> Option<(u64, u64)> {
        for nonce in 0..max_attempts {
            if self.verify(nonce) {
                return Some((nonce, nonce + 1));
            }
        }
        None
    }
}

fn leading_zero_bits(digest: &[u8]) -> u32 {
    let mut bits = 0u32;
    for &byte in digest {
        if byte == 0 {
            bits += 8;
        } else {
            bits += byte.leading_zeros();
            break;
        }
    }
    bits
}

/// Rate limiter for peering acceptance: the waiting period grows linearly
/// with the current peer-list size, so an attacker who has already displaced
/// some peers pays more and more simulated time per additional clone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeeringRateLimiter {
    /// Base delay (in simulated seconds) applied to every request.
    pub base_delay_secs: u64,
    /// Additional delay per existing peer.
    pub per_peer_delay_secs: u64,
}

impl PeeringRateLimiter {
    /// Delay before a request is even evaluated, for a node that currently
    /// has `current_peer_count` peers.
    pub fn delay_for(&self, current_peer_count: usize) -> u64 {
        self.base_delay_secs + self.per_peer_delay_secs * current_peer_count as u64
    }

    /// Total simulated time needed to accept `requests` sequential peering
    /// requests starting from `initial_peers` peers.
    pub fn total_delay(&self, initial_peers: usize, requests: usize) -> u64 {
        (0..requests)
            .map(|i| self.delay_for(initial_peers + i))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difficulty_scales_with_request_load() {
        let quiet = PowChallenge::for_request_load(vec![1, 2, 3], 8, 0);
        let busy = PowChallenge::for_request_load(vec![1, 2, 3], 8, 1024);
        assert_eq!(quiet.difficulty_bits, 8);
        assert_eq!(busy.difficulty_bits, 8 + 10);
    }

    #[test]
    fn solving_and_verifying_work() {
        let challenge = PowChallenge {
            challenge: b"peer-with-me".to_vec(),
            difficulty_bits: 8,
        };
        let (nonce, cost) = challenge.solve(1_000_000).expect("8 bits is easy");
        assert!(challenge.verify(nonce));
        assert!(cost >= 1);
        assert!(
            !challenge.verify(nonce.wrapping_add(1)) || challenge.verify(nonce.wrapping_add(1))
        );
    }

    #[test]
    fn higher_difficulty_costs_more_on_average() {
        // Average solving cost over a few challenges should grow with
        // difficulty (8 bits ≈ 256 hashes, 12 bits ≈ 4096 hashes).
        let mut easy_total = 0u64;
        let mut hard_total = 0u64;
        for i in 0..5u8 {
            let easy = PowChallenge {
                challenge: vec![i, 1],
                difficulty_bits: 6,
            };
            let hard = PowChallenge {
                challenge: vec![i, 2],
                difficulty_bits: 12,
            };
            easy_total += easy.solve(1 << 22).unwrap().1;
            hard_total += hard.solve(1 << 22).unwrap().1;
        }
        assert!(
            hard_total > easy_total,
            "easy {easy_total}, hard {hard_total}"
        );
    }

    #[test]
    fn unsolvable_budget_returns_none() {
        let challenge = PowChallenge {
            challenge: b"x".to_vec(),
            difficulty_bits: 64,
        };
        assert!(challenge.solve(1000).is_none());
    }

    #[test]
    fn rate_limiter_grows_with_peer_count() {
        let limiter = PeeringRateLimiter {
            base_delay_secs: 10,
            per_peer_delay_secs: 5,
        };
        assert_eq!(limiter.delay_for(0), 10);
        assert_eq!(limiter.delay_for(10), 60);
        // Soaping a node from 10 peers with 10 clones takes much longer than
        // the first 10 legitimate rallies did.
        let attack_cost = limiter.total_delay(10, 10);
        let rally_cost = limiter.total_delay(0, 10);
        assert!(attack_cost > rally_cost);
    }

    #[test]
    fn leading_zero_bits_counts_correctly() {
        assert_eq!(leading_zero_bits(&[0, 0, 0xff]), 16);
        assert_eq!(leading_zero_bits(&[0x0f]), 4);
        assert_eq!(leading_zero_bits(&[0x80]), 0);
        assert_eq!(leading_zero_bits(&[0x01]), 7);
    }
}
