//! # mitigation
//!
//! Mitigations and counter-mitigations from the OnionBots paper (§VI–VII):
//!
//! * [`soap`] — the **Sybil Onion Attack Protocol**, the paper's proposed
//!   defender-side mitigation: surround every bot with clone hidden services
//!   until the botnet is partitioned into contained nodes (Figure 7).
//! * [`hsdir_attack`] — the generic Tor-level mitigation: position
//!   adversarial relays on the HSDir ring to deny a bot's descriptors, and
//!   why address rotation blunts it.
//! * [`defenses`] — the attacker-side responses the paper anticipates
//!   (proof of work, rate limiting) and their costs.
//! * [`superonion`] — the SuperOnion construction (§VII-B, Figure 8) that
//!   survives soaping of a strict subset of its virtual nodes.
//!
//! This crate exists so defenders can study containment dynamics; the
//! "attacker" counter-measures are implemented to measure how much they slow
//! the mitigation down, which is exactly the open trade-off the paper asks
//! the community to quantify.
//!
//! ```
//! use mitigation::soap::{SoapAttack, SoapConfig};
//! use onionbots_core::{DdsrConfig, DdsrOverlay};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let (mut overlay, ids) = DdsrOverlay::new_regular(30, 6, DdsrConfig::for_degree(6), &mut rng);
//! let mut soap = SoapAttack::new(SoapConfig::default(), ids[0]);
//! let outcome = soap.run(&mut overlay, &mut rng);
//! assert!(outcome.neutralized);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod defended_soap;
pub mod defenses;
pub mod hsdir_attack;
pub mod soap;
pub mod superonion;

pub use soap::{SoapAttack, SoapConfig, SoapOutcome};
pub use superonion::{SuperOnion, SuperOnionConfig};

#[cfg(test)]
mod property_tests {
    use crate::soap::{SoapAttack, SoapConfig};
    use onionbots_core::{DdsrConfig, DdsrOverlay};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// SOAP neutralizes any small basic OnionBot overlay regardless of
        /// its seed or degree.
        #[test]
        fn soap_always_neutralizes_basic_onionbots(seed in 0u64..100, k in 3usize..7) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 24usize;
            let (mut overlay, ids) = DdsrOverlay::new_regular(n, k, DdsrConfig::for_degree(k), &mut rng);
            let mut soap = SoapAttack::new(SoapConfig::default(), ids[0]);
            let outcome = soap.run(&mut overlay, &mut rng);
            prop_assert!(outcome.neutralized);
            // At the end of the campaign every discovered bot is contained.
            let last = outcome.trace.last().unwrap();
            prop_assert_eq!(last.contained_bots, last.discovered_bots);
        }
    }
}
