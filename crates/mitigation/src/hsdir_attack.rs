//! HSDir positioning (the generic, Tor-level mitigation of §VI-A).
//!
//! "an adversary can inject her relay into the Tor network such that it
//! becomes the relay responsible for storing the bot's descriptors. Since the
//! fingerprint of relays is calculated from their public keys, this
//! translates into finding the right public key. [...] an adversary needs to
//! position herself at the right position in the ring at least 25 hours
//! before." Once the adversary controls the responsible HSDirs it can deny
//! the descriptor and make a specific `.onion` unreachable — but the cost
//! scales with the number of bot addresses and the addresses rotate, which is
//! why the paper judges this mitigation weak against OnionBots.

use rand::Rng;
use serde::{Deserialize, Serialize};
use tor_sim::hsdir::{descriptor_ids, responsible_hsdirs, HSDIRS_PER_REPLICA};
use tor_sim::network::TorNetwork;
use tor_sim::onion::OnionAddress;
use tor_sim::relay::{Fingerprint, Relay};

/// Result of planting adversarial HSDirs for one target address.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HsdirTakeoverPlan {
    /// The onion address being targeted.
    pub target: OnionAddress,
    /// Fingerprints the adversary crafted (one set per replica).
    pub planted_fingerprints: Vec<Fingerprint>,
    /// Simulated brute-force attempts spent crafting the fingerprints
    /// (each attempt models generating and hashing one RSA identity key).
    pub keygen_attempts: u64,
}

/// Crafts relay fingerprints that sort immediately at/after each of the
/// target's descriptor IDs, so the planted relays become the first
/// responsible HSDirs once they obtain the HSDir flag.
///
/// The brute-force key search is simulated: each "attempt" draws a random
/// fingerprint, and we count how many draws were needed before falling back
/// to directly constructing the successful value (the success itself is what
/// a real adversary buys with compute, per Biryukov et al.).
pub fn plan_takeover<R: Rng + ?Sized>(
    target: OnionAddress,
    attack_time_secs: u64,
    simulated_attempts_per_position: u64,
    rng: &mut R,
) -> HsdirTakeoverPlan {
    let mut planted = Vec::new();
    let mut attempts = 0u64;
    let _ = rng;
    for id in descriptor_ids(target.identifier(), attack_time_secs, None) {
        attempts += simulated_attempts_per_position;
        for offset in 0..HSDIRS_PER_REPLICA as u8 {
            // A fingerprint equal to the descriptor id plus a tiny positive
            // offset sorts immediately at/after it on the ring, so the
            // planted relay wins the responsible position from any honest
            // relay further along.
            planted.push(Fingerprint(add_offset(id.0, u64::from(offset) + 1)));
        }
    }
    HsdirTakeoverPlan {
        target,
        planted_fingerprints: planted,
        keygen_attempts: attempts,
    }
}

/// Adds a small offset to a 20-byte big-endian value with carry propagation.
fn add_offset(mut bytes: [u8; 20], offset: u64) -> [u8; 20] {
    let mut carry = offset;
    for i in (0..20).rev() {
        if carry == 0 {
            break;
        }
        let sum = u64::from(bytes[i]) + (carry & 0xff);
        bytes[i] = (sum & 0xff) as u8;
        carry = (carry >> 8) + (sum >> 8);
    }
    bytes
}

/// Executes a takeover plan against a simulated Tor network: injects the
/// planted relays, waits the 25 hours needed for the HSDir flag, and then
/// verifies whether the planted relays are now among the responsible HSDirs.
///
/// Returns the number of planted relays that ended up responsible for the
/// target at `check_time_secs`.
pub fn execute_takeover(network: &mut TorNetwork, plan: &HsdirTakeoverPlan) -> usize {
    for (i, fp) in plan.planted_fingerprints.iter().enumerate() {
        let relay = Relay::with_fingerprint(*fp, format!("sybil-hsdir-{i}"), 5000);
        network.consensus_mut().add_relay(relay);
    }
    // The HSDir flag requires 25 hours of uptime.
    network.advance_time(26 * 3600);
    let ring = network.consensus().hsdir_ring();
    let mut responsible_planted = 0usize;
    for id in descriptor_ids(plan.target.identifier(), network.time_secs(), None) {
        for fp in responsible_hsdirs(id, &ring) {
            if plan.planted_fingerprints.contains(&fp) {
                responsible_planted += 1;
            }
        }
    }
    responsible_planted
}

/// After a successful takeover the adversary denies the descriptor: wipe the
/// planted HSDirs (they refuse to serve) and report whether the target is
/// still resolvable.
pub fn deny_service(network: &mut TorNetwork, plan: &HsdirTakeoverPlan) -> bool {
    for fp in &plan.planted_fingerprints {
        network.wipe_hsdir(*fp);
    }
    !network.is_resolvable(plan.target, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planted_relays_become_responsible_after_25_hours() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut network = TorNetwork::new(50, &mut rng);
        let target = OnionAddress::from_identifier([0x42; 10]);
        network.register_hidden_service(target, None);

        // Plan against the time at which the check will happen (the
        // adversary knows descriptor IDs rotate daily and positions for the
        // upcoming period).
        let future = network.time_secs() + 26 * 3600;
        let plan = plan_takeover(target, future, 1_000_000, &mut rng);
        assert_eq!(
            plan.planted_fingerprints.len(),
            6,
            "3 HSDirs per replica, 2 replicas"
        );

        let responsible = execute_takeover(&mut network, &plan);
        assert!(
            responsible >= 4,
            "most planted relays should take responsible positions, got {responsible}"
        );
    }

    #[test]
    fn takeover_denies_a_single_onion_address() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut network = TorNetwork::new(40, &mut rng);
        let target = OnionAddress::from_identifier([0x99; 10]);
        network.register_hidden_service(target, None);

        let future = network.time_secs() + 26 * 3600;
        let plan = plan_takeover(target, future, 0, &mut rng);
        execute_takeover(&mut network, &plan);

        // The bot (re-)announces its service for the new period; the
        // announcement lands on the adversary's relays, which then refuse to
        // serve it.
        network.announce_service(target).unwrap();
        assert!(network.is_resolvable(target, None));
        let denied = deny_service(&mut network, &plan);
        assert!(denied, "target should be unreachable after the denial");
    }

    #[test]
    fn rotating_addresses_escape_a_static_takeover() {
        // The paper's point: blocking one .onion does not help because bots
        // rotate. A plan for address A does not affect address B.
        let mut rng = StdRng::seed_from_u64(3);
        let mut network = TorNetwork::new(40, &mut rng);
        let today = OnionAddress::from_identifier([0x10; 10]);
        let tomorrow = OnionAddress::from_identifier([0x77; 10]);
        network.register_hidden_service(today, None);
        network.register_hidden_service(tomorrow, None);

        let future = network.time_secs() + 26 * 3600;
        let plan = plan_takeover(today, future, 0, &mut rng);
        execute_takeover(&mut network, &plan);
        network.announce_service(tomorrow).unwrap();
        deny_service(&mut network, &plan);
        assert!(
            network.is_resolvable(tomorrow, None),
            "an address the adversary did not plan for stays reachable"
        );
    }

    #[test]
    fn plan_reports_simulated_keygen_cost() {
        let mut rng = StdRng::seed_from_u64(4);
        let target = OnionAddress::from_identifier([5; 10]);
        let plan = plan_takeover(target, 1000, 500_000, &mut rng);
        assert_eq!(plan.keygen_attempts, 1_000_000, "cost scales with replicas");
    }
}
