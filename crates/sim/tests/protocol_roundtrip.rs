//! Property tests for the worker protocol: arbitrary [`WorkItem`]s and
//! [`PartResult`]s must survive the newline-delimited JSON framing the
//! [`ProcessExecutor`](sim::ProcessExecutor) and the worker loop use —
//! one message per line, parse(render(m)) == m, no embedded newlines.

use proptest::prelude::*;
use sim::executor::{PartResult, WorkItem};
use sim::experiment::{ExperimentReport, Series};
use sim::scenario_api::ScenarioParams;

/// A printable-ASCII identifier-ish string (scenario ids, override keys
/// and values all live in this alphabet in practice; the JSON layer must
/// not care either way).
fn ident(rng_bytes: Vec<u8>) -> String {
    if rng_bytes.is_empty() {
        return "x".to_string();
    }
    rng_bytes
        .into_iter()
        .map(|b| {
            const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-_/. ";
            ALPHABET[b as usize % ALPHABET.len()] as char
        })
        .collect()
}

fn ident_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 1..16).prop_map(ident)
}

fn params_strategy() -> impl Strategy<Value = ScenarioParams> {
    (
        any::<bool>(),
        any::<u64>(),
        prop::collection::vec((ident_strategy(), ident_strategy()), 0..4),
    )
        .prop_map(|(full_scale, seed, overrides)| {
            let mut params = ScenarioParams::with_seed(seed);
            params.full_scale = full_scale;
            for (key, value) in overrides {
                params.overrides.insert(key, value);
            }
            params
        })
}

fn report_strategy() -> impl Strategy<Value = ExperimentReport> {
    (
        ident_strategy(),
        ident_strategy(),
        prop::collection::vec((0.0f64..1e9, 0.0f64..1e9), 0..8),
        prop::collection::vec(ident_strategy(), 0..3),
    )
        .prop_map(|(id, title, points, notes)| {
            let mut report = ExperimentReport::new(id, title, "x", "y");
            let (x, y): (Vec<f64>, Vec<f64>) = points.into_iter().unzip();
            report.push_series(Series::new("trace", x, y));
            for note in notes {
                report.push_note(note);
            }
            report
        })
}

fn work_item_strategy() -> impl Strategy<Value = WorkItem> {
    (
        (ident_strategy(), 0usize..64),
        any::<u64>(),
        prop::collection::vec(any::<u8>(), 32..33).prop_map(hex::encode_like),
        params_strategy(),
        1usize..64,
    )
        .prop_map(
            |((scenario_id, part), part_seed, fingerprint, params, threads)| WorkItem {
                scenario_id,
                part,
                part_seed,
                fingerprint,
                params,
                threads,
            },
        )
}

/// Minimal hex rendering for fingerprint-shaped strings.
mod hex {
    pub fn encode_like(bytes: Vec<u8>) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn work_items_roundtrip_the_line_protocol(item in work_item_strategy()) {
        let line = serde_json::to_string(&item).unwrap();
        prop_assert!(!line.contains('\n'), "one item per line: {line}");
        let parsed: WorkItem = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(parsed, item);
    }

    #[test]
    fn part_results_roundtrip_the_line_protocol(
        item in work_item_strategy(),
        reports in prop::collection::vec(report_strategy(), 0..4),
        failed in any::<bool>(),
        error in ident_strategy(),
    ) {
        let result = if failed {
            PartResult::failed(&item, error)
        } else {
            PartResult::ok(&item, reports)
        };
        let line = serde_json::to_string(&result).unwrap();
        prop_assert!(!line.contains('\n'), "one result per line: {line}");
        let parsed: PartResult = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(&parsed, &result);
        // Identity echo survives framing: results can always be matched
        // back to the item that produced them.
        prop_assert_eq!(&parsed.scenario_id, &item.scenario_id);
        prop_assert_eq!(parsed.part, item.part);
        prop_assert_eq!(&parsed.fingerprint, &item.fingerprint);
    }
}
