//! Property tests for the wire protocols: arbitrary [`WorkItem`]s and
//! [`PartResult`]s must survive the newline-delimited JSON framing the
//! [`ProcessExecutor`](sim::ProcessExecutor) and the worker loop use —
//! one message per line, parse(render(m)) == m, no embedded newlines —
//! and the simulation service's job API ([`Request`]/[`Event`] frames,
//! with every payload type they embed) must survive the same framing.
//! The remote backend's handshake/assignment frames
//! ([`DispatchFrame`]/[`WorkerFrame`]) ride the same one-line-JSON
//! contract, and the worker-host side must *reject* — never execute —
//! malformed or version-skewed handshakes.

use std::sync::Arc;

use proptest::prelude::*;
use sim::executor::{PartResult, WorkItem};
use sim::experiment::{ExperimentReport, Series};
use sim::remote::{serve_remote_connection, DispatchFrame, WorkerFrame, REMOTE_PROTOCOL_VERSION};
use sim::scenario_api::{Scenario, ScenarioParams};
use sim::service::{Event, Request};
use sim::{
    BackendSpec, CacheStats, JobSpec, JobState, JobStatus, PartEvent, PartState, RunSummary,
    ScenarioInfo, ScenarioOutcome, ThreadsSpec,
};

/// A printable-ASCII identifier-ish string (scenario ids, override keys
/// and values all live in this alphabet in practice; the JSON layer must
/// not care either way).
fn ident(rng_bytes: Vec<u8>) -> String {
    if rng_bytes.is_empty() {
        return "x".to_string();
    }
    rng_bytes
        .into_iter()
        .map(|b| {
            const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-_/. ";
            ALPHABET[b as usize % ALPHABET.len()] as char
        })
        .collect()
}

fn ident_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 1..16).prop_map(ident)
}

fn params_strategy() -> impl Strategy<Value = ScenarioParams> {
    (
        any::<bool>(),
        any::<u64>(),
        prop::collection::vec((ident_strategy(), ident_strategy()), 0..4),
    )
        .prop_map(|(full_scale, seed, overrides)| {
            let mut params = ScenarioParams::with_seed(seed);
            params.full_scale = full_scale;
            for (key, value) in overrides {
                params.overrides.insert(key, value);
            }
            params
        })
}

fn report_strategy() -> impl Strategy<Value = ExperimentReport> {
    (
        ident_strategy(),
        ident_strategy(),
        prop::collection::vec((0.0f64..1e9, 0.0f64..1e9), 0..8),
        prop::collection::vec(ident_strategy(), 0..3),
    )
        .prop_map(|(id, title, points, notes)| {
            let mut report = ExperimentReport::new(id, title, "x", "y");
            let (x, y): (Vec<f64>, Vec<f64>) = points.into_iter().unzip();
            report.push_series(Series::new("trace", x, y));
            for note in notes {
                report.push_note(note);
            }
            report
        })
}

fn work_item_strategy() -> impl Strategy<Value = WorkItem> {
    (
        (ident_strategy(), 0usize..64),
        any::<u64>(),
        prop::collection::vec(any::<u8>(), 32..33).prop_map(hex::encode_like),
        params_strategy(),
        1usize..64,
    )
        .prop_map(
            |((scenario_id, part), part_seed, fingerprint, params, threads)| WorkItem {
                scenario_id,
                part,
                part_seed,
                fingerprint,
                params,
                threads,
            },
        )
}

/// Minimal hex rendering for fingerprint-shaped strings.
mod hex {
    pub fn encode_like(bytes: Vec<u8>) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }
}

/// An optional value: roughly half the samples are `None`, so absent
/// wire fields get as much coverage as present ones.
fn opt<S: Strategy>(inner: S) -> impl Strategy<Value = Option<S::Value>> {
    (any::<bool>(), inner).prop_map(|(present, value)| if present { Some(value) } else { None })
}

fn fingerprint_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 32..33).prop_map(hex::encode_like)
}

fn part_state_strategy() -> impl Strategy<Value = PartState> {
    // The vendored proptest has no prop_oneof; variants are selected by
    // index, with unused payloads simply dropped.
    (0u8..5, ident_strategy()).prop_map(|(variant, message)| match variant {
        0 => PartState::Queued,
        1 => PartState::CacheHit,
        2 => PartState::Started,
        3 => PartState::Finished,
        _ => PartState::Error(message),
    })
}

fn part_event_strategy() -> impl Strategy<Value = PartEvent> {
    (
        ident_strategy(),
        0usize..64,
        fingerprint_strategy(),
        part_state_strategy(),
    )
        .prop_map(|(scenario_id, part, fingerprint, state)| PartEvent {
            scenario_id,
            part,
            fingerprint,
            state,
        })
}

fn cache_stats_strategy() -> impl Strategy<Value = CacheStats> {
    (
        0usize..999,
        0usize..999,
        0usize..999,
        0usize..999,
        0usize..999,
    )
        .prop_map(
            |(hits, misses, invalidated, stored, store_failures)| CacheStats {
                hits,
                misses,
                invalidated,
                stored,
                store_failures,
            },
        )
}

fn job_spec_strategy() -> impl Strategy<Value = JobSpec> {
    (
        (
            opt(prop::collection::vec(ident_strategy(), 0..3)),
            opt(any::<u64>()),
            opt(any::<bool>()),
            opt(prop::collection::vec(
                (ident_strategy(), ident_strategy()),
                0..3,
            )),
        ),
        (
            opt(any::<bool>()),
            opt(1usize..9),
            opt(0u8..3),
            opt(prop::collection::vec(ident_strategy(), 0..3)),
            opt((0u8..3, 1usize..9)),
        ),
    )
        .prop_map(
            |((only, seed, full_scale, overrides), (refresh, jobs, backend, workers, threads))| {
                JobSpec {
                    only,
                    seed,
                    full_scale,
                    overrides: overrides.map(|pairs| pairs.into_iter().collect()),
                    refresh,
                    jobs,
                    backend: backend.map(|variant| match variant {
                        0 => BackendSpec::Local,
                        1 => BackendSpec::Process,
                        _ => BackendSpec::Remote,
                    }),
                    workers,
                    threads_per_item: threads.map(|(variant, count)| match variant {
                        0 => ThreadsSpec::Sequential,
                        1 => ThreadsSpec::Auto,
                        _ => ThreadsSpec::Fixed(count),
                    }),
                }
            },
        )
}

fn dispatch_frame_strategy() -> impl Strategy<Value = DispatchFrame> {
    (0u8..2, any::<u32>(), work_item_strategy()).prop_map(|(variant, protocol, item)| match variant
    {
        0 => DispatchFrame::Hello { protocol },
        _ => DispatchFrame::Assign(item),
    })
}

fn worker_frame_strategy() -> impl Strategy<Value = WorkerFrame> {
    (
        0u8..3,
        any::<u32>(),
        ident_strategy(),
        work_item_strategy(),
        prop::collection::vec(report_strategy(), 0..3),
    )
        .prop_map(|(variant, protocol, reason, item, reports)| match variant {
            0 => WorkerFrame::Welcome { protocol },
            1 => WorkerFrame::Reject { reason },
            _ => WorkerFrame::Completed(PartResult::ok(&item, reports)),
        })
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (0u8..4, job_spec_strategy(), opt(any::<u64>())).prop_map(
        |(variant, spec, job)| match variant {
            0 => Request::Submit(spec),
            1 => Request::Status { job },
            2 => Request::List,
            _ => Request::Shutdown,
        },
    )
}

fn job_status_strategy() -> impl Strategy<Value = JobStatus> {
    (
        (any::<u64>(), 0u8..3, ident_strategy()),
        prop::collection::vec(ident_strategy(), 0..4),
        (0usize..64, 0usize..64),
        opt(cache_stats_strategy()),
    )
        .prop_map(
            |((job, state, failure), scenarios, (parts_total, parts_done), cache)| JobStatus {
                job,
                state: match state {
                    0 => JobState::Running,
                    1 => JobState::Done,
                    _ => JobState::Failed(failure),
                },
                scenarios,
                parts_total,
                parts_done,
                cache,
            },
        )
}

fn scenario_info_strategy() -> impl Strategy<Value = ScenarioInfo> {
    (
        ident_strategy(),
        ident_strategy(),
        1usize..16,
        opt(prop::collection::vec(ident_strategy(), 0..4)),
    )
        .prop_map(|(id, title, parts, override_keys)| ScenarioInfo {
            id,
            title,
            parts,
            override_keys,
        })
}

fn summary_strategy() -> impl Strategy<Value = RunSummary> {
    let outcome = (
        (ident_strategy(), ident_strategy()),
        1usize..8,
        prop::collection::vec(report_strategy(), 0..3),
    )
        .prop_map(|((scenario_id, title), parts, reports)| ScenarioOutcome {
            scenario_id,
            title,
            parts,
            reports,
        });
    (params_strategy(), prop::collection::vec(outcome, 0..3))
        .prop_map(|(params, outcomes)| RunSummary { params, outcomes })
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (
        (0u8..7, any::<u64>(), ident_strategy()),
        (
            part_event_strategy(),
            summary_strategy(),
            opt(cache_stats_strategy()),
        ),
        (
            prop::collection::vec(job_status_strategy(), 0..3),
            prop::collection::vec(scenario_info_strategy(), 0..3),
            opt(any::<u64>()),
        ),
    )
        .prop_map(
            |((variant, job, message), (part, summary, cache), (jobs, scenarios, failed_job))| {
                match variant {
                    0 => Event::Accepted { job },
                    1 => Event::Part { job, event: part },
                    2 => Event::Done {
                        job,
                        summary,
                        cache,
                    },
                    3 => Event::Error {
                        job: failed_job,
                        message,
                    },
                    4 => Event::Jobs(jobs),
                    5 => Event::Scenarios(scenarios),
                    _ => Event::ShuttingDown,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn work_items_roundtrip_the_line_protocol(item in work_item_strategy()) {
        let line = serde_json::to_string(&item).unwrap();
        prop_assert!(!line.contains('\n'), "one item per line: {line}");
        let parsed: WorkItem = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(parsed, item);
    }

    #[test]
    fn part_results_roundtrip_the_line_protocol(
        item in work_item_strategy(),
        reports in prop::collection::vec(report_strategy(), 0..4),
        failed in any::<bool>(),
        error in ident_strategy(),
    ) {
        let result = if failed {
            PartResult::failed(&item, error)
        } else {
            PartResult::ok(&item, reports)
        };
        let line = serde_json::to_string(&result).unwrap();
        prop_assert!(!line.contains('\n'), "one result per line: {line}");
        let parsed: PartResult = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(&parsed, &result);
        // Identity echo survives framing: results can always be matched
        // back to the item that produced them.
        prop_assert_eq!(&parsed.scenario_id, &item.scenario_id);
        prop_assert_eq!(parsed.part, item.part);
        prop_assert_eq!(&parsed.fingerprint, &item.fingerprint);
    }

    #[test]
    fn service_requests_roundtrip_the_line_protocol(request in request_strategy()) {
        let line = serde_json::to_string(&request).unwrap();
        prop_assert!(!line.contains('\n'), "one request per line: {line}");
        let parsed: Request = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(parsed, request);
    }

    #[test]
    fn service_events_roundtrip_the_line_protocol(event in event_strategy()) {
        let line = serde_json::to_string(&event).unwrap();
        prop_assert!(!line.contains('\n'), "one event per line: {line}");
        let parsed: Event = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(parsed, event);
    }

    #[test]
    fn dispatch_frames_roundtrip_the_line_protocol(frame in dispatch_frame_strategy()) {
        let line = serde_json::to_string(&frame).unwrap();
        prop_assert!(!line.contains('\n'), "one frame per line: {line}");
        let parsed: DispatchFrame = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(parsed, frame);
    }

    #[test]
    fn worker_frames_roundtrip_the_line_protocol(frame in worker_frame_strategy()) {
        let line = serde_json::to_string(&frame).unwrap();
        prop_assert!(!line.contains('\n'), "one frame per line: {line}");
        let parsed: WorkerFrame = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(parsed, frame);
    }
}

#[test]
fn absent_job_spec_fields_fall_back_to_defaults() {
    // A client may send a bare submission; every omitted field must read
    // back as None (the daemon's defaults), not a parse error.
    let parsed: Request = serde_json::from_str(r#"{"Submit":{}}"#).unwrap();
    assert_eq!(parsed, Request::Submit(JobSpec::default()));
    // And the defaults resolve to the one-shot CLI's parameters.
    let params = JobSpec::default().params();
    assert_eq!(params, ScenarioParams::default());
}

/// One-part toy scenario so the worker-host loop has something to run.
struct Toy;

impl Scenario for Toy {
    fn id(&self) -> &str {
        "toy"
    }
    fn title(&self) -> &str {
        "toy"
    }
    fn run_part(
        &self,
        _part: usize,
        _params: &ScenarioParams,
        _rng: &mut rand::rngs::StdRng,
    ) -> Vec<ExperimentReport> {
        vec![ExperimentReport::new("toy", "toy", "x", "y")]
    }
}

/// Drives [`serve_remote_connection`] over in-memory buffers: `lines`
/// become the dispatcher's input; returns the loop outcome and the
/// worker frames it wrote back.
fn serve_lines(lines: &[&str]) -> (std::io::Result<()>, Vec<WorkerFrame>) {
    let input = lines
        .iter()
        .map(|line| format!("{line}\n"))
        .collect::<String>();
    let mut output = Vec::new();
    let outcome = serve_remote_connection(input.as_bytes(), &mut output, |id| {
        (id == "toy").then(|| Arc::new(Toy) as Arc<dyn Scenario>)
    });
    let frames = String::from_utf8(output)
        .unwrap()
        .lines()
        .map(|line| serde_json::from_str(line).unwrap())
        .collect();
    (outcome, frames)
}

fn hello() -> String {
    serde_json::to_string(&DispatchFrame::Hello {
        protocol: REMOTE_PROTOCOL_VERSION,
    })
    .unwrap()
}

fn assign(scenario_id: &str) -> String {
    serde_json::to_string(&DispatchFrame::Assign(WorkItem {
        scenario_id: scenario_id.to_string(),
        part: 0,
        part_seed: 7,
        fingerprint: "f".repeat(64),
        params: ScenarioParams::default(),
        threads: 1,
    }))
    .unwrap()
}

#[test]
fn worker_host_welcomes_a_matching_dispatcher_and_answers_items() {
    let (outcome, frames) = serve_lines(&[&hello(), &assign("toy")]);
    outcome.unwrap();
    assert_eq!(frames.len(), 2, "welcome then one result: {frames:?}");
    assert_eq!(
        frames[0],
        WorkerFrame::Welcome {
            protocol: REMOTE_PROTOCOL_VERSION
        }
    );
    match &frames[1] {
        WorkerFrame::Completed(result) => {
            assert!(result.error.is_none(), "toy part must succeed: {result:?}");
            assert_eq!(result.scenario_id, "toy");
        }
        other => panic!("expected a completed result, got {other:?}"),
    }
}

#[test]
fn worker_host_rejects_a_version_skewed_dispatcher() {
    let skewed = serde_json::to_string(&DispatchFrame::Hello {
        protocol: REMOTE_PROTOCOL_VERSION + 1,
    })
    .unwrap();
    let (outcome, frames) = serve_lines(&[&skewed, &assign("toy")]);
    outcome.unwrap_err();
    assert_eq!(frames.len(), 1, "reject and stop: {frames:?}");
    match &frames[0] {
        WorkerFrame::Reject { reason } => {
            assert!(
                reason.contains("protocol"),
                "reason names the skew: {reason}"
            )
        }
        other => panic!("expected a rejection, got {other:?}"),
    }
}

#[test]
fn worker_host_rejects_a_garbage_hello() {
    let (outcome, frames) = serve_lines(&["{\"not\": \"a frame\"}"]);
    outcome.unwrap_err();
    assert!(
        matches!(&frames[..], [WorkerFrame::Reject { .. }]),
        "garbage handshake draws a rejection, nothing runs: {frames:?}"
    );
}

#[test]
fn worker_host_rejects_an_assignment_before_the_handshake() {
    let (outcome, frames) = serve_lines(&[&assign("toy")]);
    outcome.unwrap_err();
    assert!(
        matches!(&frames[..], [WorkerFrame::Reject { .. }]),
        "no handshake, no work: {frames:?}"
    );
}

#[test]
fn worker_host_dies_on_a_malformed_assignment_without_answering_it() {
    let (outcome, frames) = serve_lines(&[&hello(), "not json at all"]);
    let error = outcome.unwrap_err();
    assert_eq!(error.kind(), std::io::ErrorKind::InvalidData);
    assert_eq!(
        frames,
        vec![WorkerFrame::Welcome {
            protocol: REMOTE_PROTOCOL_VERSION
        }],
        "a malformed frame terminates the connection before any result"
    );
}

#[test]
fn worker_host_answers_unknown_scenarios_with_a_failed_result() {
    let (outcome, frames) = serve_lines(&[&hello(), &assign("nonesuch")]);
    outcome.unwrap();
    match &frames[..] {
        [WorkerFrame::Welcome { .. }, WorkerFrame::Completed(result)] => {
            assert!(result.error.is_some(), "unknown scenario fails the item");
            assert!(
                result.error.as_deref().unwrap_or("").contains("nonesuch"),
                "error names the missing scenario: {:?}",
                result.error
            );
        }
        other => panic!("expected welcome + failed result, got {other:?}"),
    }
}

#[test]
fn worker_host_treats_a_probe_connection_as_clean() {
    // Port scanners and health checks connect and immediately hang up;
    // that must not be a protocol error.
    let (outcome, frames) = serve_lines(&[]);
    outcome.unwrap();
    assert!(frames.is_empty(), "no hello, no frames: {frames:?}");
}
