//! Pluggable execution backends for the experiment [`Runner`]
//! (`crate::runner::Runner`).
//!
//! The unit of execution is a [`WorkItem`]: one *(scenario id, part,
//! derived part seed, scale, scoped overrides)* tuple, self-contained
//! enough that any process holding the scenario registry can execute it
//! without further context. A work item's identity **is** its cache
//! fingerprint (the same SHA-256 digest [`PartFingerprint`] derives), so
//! the cache-aware path — replay hits, execute only misses, store fresh
//! results — lives entirely above the backend and behaves identically no
//! matter which backend runs the misses.
//!
//! Two backends implement the [`Executor`] trait:
//!
//! * [`LocalExecutor`] — the in-process `std::thread` fan-out the
//!   `Runner` used to hard-wire, extracted with its behavior pinned:
//!   sequential in-order execution for one job or one item, a shared
//!   work queue drained by `jobs` scoped threads otherwise.
//! * [`ProcessExecutor`] — spawns `jobs` worker subprocesses (a
//!   [`WorkerCommand`], e.g. `run_experiments worker`) and streams
//!   newline-delimited JSON: one [`WorkItem`] per line down a worker's
//!   stdin, one [`PartResult`] per line back up its stdout. A worker that
//!   dies mid-item is reaped, its in-flight item re-queued, and a fresh
//!   worker spawned in its place; an item that keeps killing workers
//!   fails the run after a bounded number of retries instead of looping
//!   forever.
//!
//! Because both backends consume the same serialized work items and
//! per-part seeding makes results position-independent, a `RunSummary`
//! is byte-identical across backends and worker counts — and the
//! multi-host [`RemoteExecutor`](crate::remote::RemoteExecutor) speaks
//! the same one-line-JSON protocol over TCP.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::cache::PartFingerprint;
use crate::experiment::ExperimentReport;
use crate::faults;
use crate::scenario_api::{part_seed, Scenario, ScenarioParams};

/// One self-contained unit of executable work: a single part of a single
/// scenario under fully resolved parameters.
///
/// The `fingerprint` field is the part's content address — the exact hex
/// digest [`PartFingerprint::compute`] derives — so work items double as
/// cache keys and cross-host dedup keys. `params` carries the base seed
/// and scale verbatim but only the *scoped* overrides: the keys the
/// scenario declares via [`Scenario::override_keys`] (all of them when
/// the scenario declares none). Scoping makes the item's bytes match its
/// identity — two items with equal fingerprints are bytewise equal up to
/// the `threads` execution hint — and keeps undeclared-key leakage from
/// ever differing between backends.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkItem {
    /// Registry id of the scenario to run.
    pub scenario_id: String,
    /// Part index within the scenario.
    pub part: usize,
    /// The derived per-part RNG seed ([`part_seed`]), precomputed so a
    /// worker does not need to re-derive it.
    pub part_seed: u64,
    /// Hex SHA-256 content address; equals
    /// [`PartFingerprint::compute`]`(..).hex()` for this item.
    pub fingerprint: String,
    /// Base seed, scale and scoped overrides the part runs with.
    pub params: ScenarioParams,
    /// Intra-item thread budget **hint**: how many threads this item's
    /// graph sweeps may use (scoped around execution via
    /// [`onion_graph::budget`]). Execution metadata, *not* identity — it
    /// is excluded from the fingerprint and can never change a byte of
    /// the part's output (the BFS kernel writes results by source index,
    /// so any thread count produces identical bytes); it only bounds
    /// resource use. The runner assigns it by splitting the machine
    /// across in-flight items (`Runner::threads_per_item`).
    pub threads: usize,
}

/// Hand-written because the offline serde_derive stub has no
/// `#[serde(default)]`: `threads` is an *optional* execution hint, so an
/// item stream in the pre-hint wire shape — the documented ndjson
/// protocol surface a custom/multi-host dispatcher may speak — still
/// parses, defaulting to sequential. Every identity field stays
/// required.
impl serde::Deserialize for WorkItem {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("WorkItem: expected a JSON object"))?;
        let field = |name: &str| serde::obj_get(entries, name);
        Ok(WorkItem {
            scenario_id: serde::Deserialize::from_value(field("scenario_id"))?,
            part: serde::Deserialize::from_value(field("part"))?,
            part_seed: serde::Deserialize::from_value(field("part_seed"))?,
            fingerprint: serde::Deserialize::from_value(field("fingerprint"))?,
            params: serde::Deserialize::from_value(field("params"))?,
            threads: match field("threads") {
                serde::Value::Null => 1,
                raw => serde::Deserialize::from_value(raw)?,
            },
        })
    }
}

impl WorkItem {
    /// Builds the work item for `part` of `scenario` under `params`,
    /// scoping the overrides and computing the content address.
    pub fn new(scenario: &dyn Scenario, part: usize, params: &ScenarioParams) -> Self {
        let declared = scenario.override_keys();
        let mut scoped = params.clone();
        scoped
            .overrides
            .retain(|key, _| crate::cache::override_relevant(declared.as_deref(), key));
        let fingerprint = PartFingerprint::compute(scenario, part, params);
        WorkItem {
            scenario_id: scenario.id().to_string(),
            part,
            part_seed: part_seed(params.seed, scenario.id(), part),
            fingerprint: fingerprint.hex().to_string(),
            params: scoped,
            threads: 1,
        }
    }

    /// Sets the intra-item thread budget hint (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The item's identity as a [`PartFingerprint`] (for cache lookups
    /// and stores).
    pub fn part_fingerprint(&self) -> PartFingerprint {
        PartFingerprint::from_parts(&self.scenario_id, self.part, &self.fingerprint)
    }
}

/// The result of executing one [`WorkItem`]: the reports, or a per-item
/// error the backend could not recover from (e.g. the worker process does
/// not have the scenario registered).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartResult {
    /// Echo of [`WorkItem::scenario_id`].
    pub scenario_id: String,
    /// Echo of [`WorkItem::part`].
    pub part: usize,
    /// Echo of [`WorkItem::fingerprint`], so results can be matched to
    /// items (and stored in the cache) without positional bookkeeping.
    pub fingerprint: String,
    /// The reports the part produced (empty on error).
    pub reports: Vec<ExperimentReport>,
    /// Per-item status: `None` means success, `Some(message)` means the
    /// item could not be executed. Workers report status per item; the
    /// parent aggregates and reports, so a worker never prints summaries.
    pub error: Option<String>,
}

impl PartResult {
    /// A successful result for `item`.
    pub fn ok(item: &WorkItem, reports: Vec<ExperimentReport>) -> Self {
        PartResult {
            scenario_id: item.scenario_id.clone(),
            part: item.part,
            fingerprint: item.fingerprint.clone(),
            reports,
            error: None,
        }
    }

    /// A failed result for `item`.
    pub fn failed(item: &WorkItem, error: impl Into<String>) -> Self {
        PartResult {
            scenario_id: item.scenario_id.clone(),
            part: item.part,
            fingerprint: item.fingerprint.clone(),
            reports: Vec::new(),
            error: Some(error.into()),
        }
    }
}

/// Executes one work item against its (already resolved) scenario: scope
/// the item's thread-budget hint, seed the part RNG from the precomputed
/// [`WorkItem::part_seed`] and run the part. This is the one place both
/// backends (and the worker loop) call, so local and remote execution
/// cannot drift apart — and the one place the budget is applied, so a
/// part's graph sweeps see the same budget whether they run on a local
/// worker thread or inside a worker subprocess.
pub fn run_work_item(scenario: &dyn Scenario, item: &WorkItem) -> Vec<ExperimentReport> {
    onion_graph::budget::with_thread_budget(item.threads, || {
        let mut rng = StdRng::seed_from_u64(item.part_seed);
        scenario.run_part(item.part, &item.params, &mut rng)
    })
}

/// Error produced when a backend cannot complete its batch of work items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutorError {
    message: String,
}

impl ExecutorError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        ExecutorError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ExecutorError {}

/// Live notifications emitted while a backend executes a batch, so a
/// caller (the simulation service daemon, a progress UI) can stream
/// per-item lifecycle events instead of waiting for the whole batch.
///
/// Events are **informational**: they are emitted from worker threads in
/// completion order, before the `Runner`'s validation pass, and a retried
/// item (e.g. after a worker death) emits `item_started` again without an
/// intervening `item_finished`. The batch's returned `Vec<PartResult>`
/// stays the single source of truth.
pub trait ExecutionObserver: Sync {
    /// An item is about to execute (again, if it was re-queued).
    fn item_started(&self, item: &WorkItem) {
        let _ = item;
    }

    /// An item's result landed (successful or carrying a per-item error).
    fn item_finished(&self, result: &PartResult) {
        let _ = result;
    }
}

/// The no-op observer: `execute` is `execute_observed` with `&()`.
impl ExecutionObserver for () {}

/// A pluggable execution backend.
///
/// `execute` consumes a batch of [`WorkItem`]s and returns one successful
/// [`PartResult`] per item, in **completion order** (callers reassemble
/// by `(scenario, part)`; nothing about the output order is guaranteed).
/// Backends retry transient failures themselves; an `Err` means the batch
/// could not be completed and the run must fail.
pub trait Executor: Send + Sync {
    /// Executes every item, returning their results in completion order.
    ///
    /// # Errors
    /// Returns an [`ExecutorError`] when any item cannot be executed
    /// (unknown scenario, worker that keeps dying, ...).
    fn execute(&self, items: Vec<WorkItem>) -> Result<Vec<PartResult>, ExecutorError>;

    /// Like [`execute`](Self::execute), additionally streaming per-item
    /// lifecycle events to `observer` as items start and finish.
    ///
    /// The default implementation is the batch fallback for custom
    /// executors that cannot observe their items mid-flight: it runs
    /// [`execute`](Self::execute) and then reports every result as
    /// finished. The built-in backends override it to emit events live
    /// from their worker threads; either way the returned results are
    /// bit-identical to an unobserved `execute` call.
    ///
    /// # Errors
    /// Returns an [`ExecutorError`] exactly like [`execute`](Self::execute).
    fn execute_observed(
        &self,
        items: Vec<WorkItem>,
        observer: &dyn ExecutionObserver,
    ) -> Result<Vec<PartResult>, ExecutorError> {
        let results = self.execute(items)?;
        for result in &results {
            observer.item_finished(result);
        }
        Ok(results)
    }
}

/// The in-process backend: the `std::thread` fan-out previously embedded
/// in the `Runner`, extracted verbatim.
///
/// One job (or at most one item) executes sequentially in submission
/// order on the calling thread; otherwise `jobs` scoped threads drain a
/// shared queue.
pub struct LocalExecutor {
    scenarios: Vec<Arc<dyn Scenario>>,
    jobs: usize,
}

impl LocalExecutor {
    /// Creates a single-threaded local executor resolving ids against
    /// `scenarios`.
    pub fn new(scenarios: Vec<Arc<dyn Scenario>>) -> Self {
        LocalExecutor { scenarios, jobs: 1 }
    }

    /// Sets the number of worker threads (clamped to at least 1).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    fn resolve(&self, id: &str) -> Result<&Arc<dyn Scenario>, ExecutorError> {
        self.scenarios.iter().find(|s| s.id() == id).ok_or_else(|| {
            ExecutorError::new(format!("scenario '{id}' is not known to this executor"))
        })
    }
}

impl Executor for LocalExecutor {
    fn execute(&self, items: Vec<WorkItem>) -> Result<Vec<PartResult>, ExecutorError> {
        self.execute_observed(items, &())
    }

    fn execute_observed(
        &self,
        items: Vec<WorkItem>,
        observer: &dyn ExecutionObserver,
    ) -> Result<Vec<PartResult>, ExecutorError> {
        // The failpoint turns into the same clean typed error on both
        // paths: an injected fault fails the batch, never a single item
        // silently.
        let injected = |item: &WorkItem, e: io::Error| {
            ExecutorError::new(format!(
                "local executor failed on {}#{}: {e}",
                item.scenario_id, item.part
            ))
        };
        if self.jobs == 1 || items.len() <= 1 {
            return items
                .into_iter()
                .map(|item| {
                    let scenario = self.resolve(&item.scenario_id)?;
                    faults::hit_io(faults::points::LOCAL_ITEM).map_err(|e| injected(&item, e))?;
                    observer.item_started(&item);
                    let reports = run_work_item(&**scenario, &item);
                    let result = PartResult::ok(&item, reports);
                    observer.item_finished(&result);
                    Ok(result)
                })
                .collect();
        }
        // Resolve every id up front so an unknown scenario fails before
        // any thread starts, then drain a shared queue exactly like the
        // pre-extraction Runner did.
        let resolved: Vec<(Arc<dyn Scenario>, WorkItem)> = items
            .into_iter()
            .map(|item| Ok((self.resolve(&item.scenario_id)?.clone(), item)))
            .collect::<Result<_, ExecutorError>>()?;
        let workers = self.jobs.min(resolved.len());
        let queue = Mutex::new(VecDeque::from(resolved));
        let results = Mutex::new(Vec::new());
        let fatal: Mutex<Option<ExecutorError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if fatal.lock().expect("fatal lock").is_some() {
                        break;
                    }
                    let next = queue.lock().expect("queue lock").pop_front();
                    let Some((scenario, item)) = next else {
                        break;
                    };
                    if let Err(e) = faults::hit_io(faults::points::LOCAL_ITEM) {
                        fatal
                            .lock()
                            .expect("fatal lock")
                            .get_or_insert(injected(&item, e));
                        break;
                    }
                    observer.item_started(&item);
                    let reports = run_work_item(&*scenario, &item);
                    let result = PartResult::ok(&item, reports);
                    observer.item_finished(&result);
                    results.lock().expect("results lock").push(result);
                });
            }
        });
        if let Some(error) = fatal.into_inner().expect("fatal lock") {
            return Err(error);
        }
        Ok(results.into_inner().expect("results lock"))
    }
}

/// How to launch one worker subprocess for the [`ProcessExecutor`]:
/// program, arguments and any extra environment variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerCommand {
    program: PathBuf,
    args: Vec<String>,
    envs: Vec<(String, String)>,
}

impl WorkerCommand {
    /// A worker launched as `program` with no arguments.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        WorkerCommand {
            program: program.into(),
            args: Vec::new(),
            envs: Vec::new(),
        }
    }

    /// Appends one argument.
    #[must_use]
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Sets one extra environment variable for the worker (on top of the
    /// inherited environment). Used, among other things, to inject
    /// deterministic crashes in the worker-recovery tests.
    #[must_use]
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }

    fn command(&self) -> Command {
        let mut command = Command::new(&self.program);
        command.args(&self.args);
        for (key, value) in &self.envs {
            command.env(key, value);
        }
        command
    }
}

/// A live worker subprocess with line-buffered JSON pipes.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    /// Items this incarnation answered successfully — distinguishes a
    /// worker that dies on its very first item (the item is suspect) from
    /// one that wears out after completing work (the item is innocent).
    completed: usize,
}

impl Worker {
    fn spawn(command: &WorkerCommand) -> io::Result<Self> {
        let mut child = command
            .command()
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            // stderr is inherited: worker panics and warnings surface on
            // the parent's stderr, but workers never print summaries.
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Ok(Worker {
            child,
            stdin,
            stdout,
            completed: 0,
        })
    }

    /// Sends one item and reads back its result. Any error here means the
    /// worker is unusable (died, closed its pipes, emitted garbage) and
    /// must be replaced.
    fn round_trip(&mut self, item: &WorkItem) -> io::Result<PartResult> {
        let line = serde_json::to_string(item).expect("work items serialize");
        self.stdin.write_all(line.as_bytes())?;
        self.stdin.write_all(b"\n")?;
        self.stdin.flush()?;
        let mut response = String::new();
        if self.stdout.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "worker closed its stdout mid-item",
            ));
        }
        serde_json::from_str(&response).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("worker sent an unparseable result line: {e}"),
            )
        })
    }

    /// Reaps a worker that is known or suspected dead.
    fn reap(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Shuts a healthy worker down: closing stdin delivers EOF, the
    /// worker loop exits, and the child is reaped.
    fn shutdown(self) {
        let Worker {
            mut child, stdin, ..
        } = self;
        drop(stdin);
        let _ = child.wait();
    }
}

/// Default bound on how many *freshly spawned* workers one item may kill
/// before the run fails.
pub const DEFAULT_MAX_ITEM_RETRIES: usize = 3;

/// The multi-process backend: `jobs` worker subprocesses speaking
/// newline-delimited JSON over stdin/stdout.
///
/// Each parent-side thread owns one worker and drains the shared queue
/// through it. When a worker dies mid-item the item is re-queued and a
/// replacement worker is spawned on demand, so a crashing worker costs
/// retries, never results. Only deaths of *fresh* workers (no completed
/// items since spawn) are charged to the in-flight item — that is the
/// toxic-item signature — and an item that kills more than
/// [`DEFAULT_MAX_ITEM_RETRIES`] fresh workers fails the run; workers
/// that wear out after completing items can die indefinitely as long as
/// each incarnation makes progress.
pub struct ProcessExecutor {
    command: WorkerCommand,
    jobs: usize,
    max_item_retries: usize,
}

impl ProcessExecutor {
    /// Creates a process executor with one worker.
    pub fn new(command: WorkerCommand) -> Self {
        ProcessExecutor {
            command,
            jobs: 1,
            max_item_retries: DEFAULT_MAX_ITEM_RETRIES,
        }
    }

    /// Sets the number of worker subprocesses (clamped to at least 1).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets how many times one item may be re-queued after a worker death
    /// before the run fails.
    #[must_use]
    pub fn max_item_retries(mut self, retries: usize) -> Self {
        self.max_item_retries = retries;
        self
    }
}

impl Executor for ProcessExecutor {
    fn execute(&self, items: Vec<WorkItem>) -> Result<Vec<PartResult>, ExecutorError> {
        self.execute_observed(items, &())
    }

    fn execute_observed(
        &self,
        items: Vec<WorkItem>,
        observer: &dyn ExecutionObserver,
    ) -> Result<Vec<PartResult>, ExecutorError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let workers = self.jobs.min(items.len());
        let queue: Mutex<VecDeque<(WorkItem, usize)>> =
            Mutex::new(items.into_iter().map(|item| (item, 0)).collect());
        let results: Mutex<Vec<PartResult>> = Mutex::new(Vec::new());
        let fatal: Mutex<Option<ExecutorError>> = Mutex::new(None);
        let fail = |message: String| {
            fatal
                .lock()
                .expect("fatal lock")
                .get_or_insert(ExecutorError::new(message));
        };
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut worker: Option<Worker> = None;
                    loop {
                        if fatal.lock().expect("fatal lock").is_some() {
                            break;
                        }
                        let next = queue.lock().expect("queue lock").pop_front();
                        let Some((item, retries)) = next else {
                            break;
                        };
                        if worker.is_none() {
                            match Worker::spawn(&self.command) {
                                Ok(spawned) => worker = Some(spawned),
                                Err(e) => {
                                    fail(format!(
                                        "cannot spawn worker process '{}': {e}",
                                        self.command.program.display()
                                    ));
                                    break;
                                }
                            }
                        }
                        let active = worker.as_mut().expect("worker just ensured");
                        observer.item_started(&item);
                        match active.round_trip(&item) {
                            Ok(result) => {
                                if let Some(error) = &result.error {
                                    fail(format!(
                                        "worker failed on {}#{}: {error}",
                                        item.scenario_id, item.part
                                    ));
                                    break;
                                }
                                if result.scenario_id != item.scenario_id
                                    || result.part != item.part
                                    || result.fingerprint != item.fingerprint
                                {
                                    fail(format!(
                                        "worker answered {}#{} with a result for {}#{} (protocol error)",
                                        item.scenario_id,
                                        item.part,
                                        result.scenario_id,
                                        result.part
                                    ));
                                    break;
                                }
                                active.completed += 1;
                                observer.item_finished(&result);
                                results.lock().expect("results lock").push(result);
                            }
                            Err(e) => {
                                // The worker is gone or confused: reap it,
                                // re-queue the in-flight item and respawn
                                // lazily on the next loop iteration. The
                                // death only counts against the item when
                                // the worker died on its *first* item
                                // since spawn — a toxic item kills every
                                // fresh worker it meets, while a worker
                                // wearing out after completed work says
                                // nothing about the item it happened to
                                // hold (charging those would fail runs
                                // whose workers crash every N items even
                                // though each incarnation makes progress).
                                let fresh_death = worker
                                    .take()
                                    .map(|dead| {
                                        let fresh = dead.completed == 0;
                                        dead.reap();
                                        fresh
                                    })
                                    .unwrap_or(true);
                                let retries = if fresh_death { retries + 1 } else { retries };
                                if retries > self.max_item_retries {
                                    fail(format!(
                                        "{}#{} killed {retries} fresh worker(s) ({e}); giving up",
                                        item.scenario_id, item.part
                                    ));
                                    break;
                                }
                                eprintln!(
                                    "warning: worker died while running {}#{} ({e}); re-queueing ({retries}/{} charged retries)",
                                    item.scenario_id,
                                    item.part,
                                    self.max_item_retries
                                );
                                queue
                                    .lock()
                                    .expect("queue lock")
                                    .push_back((item, retries));
                            }
                        }
                    }
                    if let Some(active) = worker.take() {
                        active.shutdown();
                    }
                });
            }
        });
        if let Some(error) = fatal.into_inner().expect("fatal lock") {
            return Err(error);
        }
        Ok(results.into_inner().expect("results lock"))
    }
}

/// The worker side of the process backend: read one [`WorkItem`] JSON
/// line at a time from `input`, execute it against `resolve`, and write
/// one [`PartResult`] JSON line to `output`.
///
/// An unknown scenario id becomes a per-item error result (the parent
/// decides whether that is fatal); a malformed input line is a protocol
/// violation and returns an error, terminating the worker. The loop exits
/// cleanly on EOF — the parent closes stdin to shut a worker down.
///
/// Every read assignment hits the `worker.item` failpoint
/// ([`faults::points::WORKER_ITEM`]) before it is answered, so a fault
/// schedule can crash, stall or kill this worker deterministically (the
/// bench worker translates the legacy `ONIONBOTS_WORKER_CRASH_AFTER_ITEMS`
/// hook into a `crash@N+1` spec on this point). An injected error
/// terminates the worker without answering — the parent treats that
/// exactly like a death and re-queues the item.
///
/// # Errors
/// Returns the underlying I/O error when a pipe breaks or an input line
/// is not a valid work item.
pub fn serve_work_items<R, W, F>(input: R, mut output: W, resolve: F) -> io::Result<()>
where
    R: BufRead,
    W: Write,
    F: Fn(&str) -> Option<Arc<dyn Scenario>>,
{
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let item: WorkItem = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed work item line: {e}"),
            )
        })?;
        faults::hit_io(faults::points::WORKER_ITEM)?;
        let result = match resolve(&item.scenario_id) {
            Some(scenario) => PartResult::ok(&item, run_work_item(&*scenario, &item)),
            None => PartResult::failed(
                &item,
                format!(
                    "scenario '{}' is not registered in this worker",
                    item.scenario_id
                ),
            ),
        };
        let rendered = serde_json::to_string(&result).expect("part results serialize");
        output.write_all(rendered.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
    }
    Ok(())
}

/// Builds one [`WorkItem`] per part of every scenario, in `(scenario,
/// part)` order, alongside the scenario's index in `scenarios` — the
/// planning step the `Runner` feeds into the cache pass and then an
/// [`Executor`].
pub fn plan_work_items(
    scenarios: &[Arc<dyn Scenario>],
    params: &ScenarioParams,
) -> Vec<(usize, WorkItem)> {
    let mut items = Vec::new();
    for (scenario_idx, scenario) in scenarios.iter().enumerate() {
        for part in 0..scenario.parts(params).max(1) {
            items.push((scenario_idx, WorkItem::new(&**scenario, part, params)));
        }
    }
    items
}

/// Maps scenario ids back to their index in `scenarios`, verifying
/// uniqueness — with ids as the wire identity, two scenarios sharing an
/// id would make results ambiguous.
///
/// # Panics
/// Panics when two scenarios share an id (the registry already rejects
/// this; direct `Runner` callers get the same contract).
pub fn index_by_id(scenarios: &[Arc<dyn Scenario>]) -> BTreeMap<String, usize> {
    let mut by_id = BTreeMap::new();
    for (idx, scenario) in scenarios.iter().enumerate() {
        let previous = by_id.insert(scenario.id().to_string(), idx);
        assert!(
            previous.is_none(),
            "scenario id '{}' appears twice in one run",
            scenario.id()
        );
    }
    by_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Series;
    use rand::Rng;

    struct Toy {
        id: &'static str,
        parts: usize,
        keys: Option<Vec<&'static str>>,
    }

    impl Scenario for Toy {
        fn id(&self) -> &str {
            self.id
        }
        fn title(&self) -> &str {
            "toy"
        }
        fn override_keys(&self) -> Option<Vec<&str>> {
            self.keys.clone()
        }
        fn parts(&self, _params: &ScenarioParams) -> usize {
            self.parts
        }
        fn run_part(
            &self,
            part: usize,
            params: &ScenarioParams,
            rng: &mut StdRng,
        ) -> Vec<ExperimentReport> {
            let offset = params.override_f64("offset", 0.0);
            let mut r = ExperimentReport::new(self.id, "toy", "part", "value");
            r.push_series(Series::new(
                "trace",
                vec![part as f64],
                vec![offset + rng.gen_range(0.0f64..1.0)],
            ));
            vec![r]
        }
    }

    fn toys() -> Vec<Arc<dyn Scenario>> {
        vec![
            Arc::new(Toy {
                id: "t1",
                parts: 3,
                keys: Some(vec!["offset"]),
            }),
            Arc::new(Toy {
                id: "t2",
                parts: 2,
                keys: None,
            }),
        ]
    }

    #[test]
    fn work_items_scope_overrides_to_declared_keys() {
        let params = ScenarioParams::with_seed(5)
            .with_override("offset", "2.0")
            .with_override("unrelated", "1");
        let declared = Toy {
            id: "t1",
            parts: 1,
            keys: Some(vec!["offset"]),
        };
        let item = WorkItem::new(&declared, 0, &params);
        assert_eq!(item.params.override_str("offset"), Some("2.0"));
        assert_eq!(
            item.params.override_str("unrelated"),
            None,
            "undeclared keys are stripped"
        );
        // A scenario with unknown keys keeps every override.
        let unknown = Toy {
            id: "t2",
            parts: 1,
            keys: None,
        };
        let item = WorkItem::new(&unknown, 0, &params);
        assert_eq!(item.params.override_str("unrelated"), Some("1"));
    }

    #[test]
    fn work_item_identity_is_the_cache_fingerprint() {
        let params = ScenarioParams::with_seed(9).with_override("unrelated", "x");
        let scenario = Toy {
            id: "t1",
            parts: 2,
            keys: Some(vec!["offset"]),
        };
        let item = WorkItem::new(&scenario, 1, &params);
        let fp = PartFingerprint::compute(&scenario, 1, &params);
        assert_eq!(item.fingerprint, fp.hex());
        assert_eq!(item.part_fingerprint(), fp);
        assert_eq!(item.part_seed, part_seed(params.seed, "t1", 1));
        // Equal fingerprints imply bytewise-equal items: the digest already
        // ignores undeclared overrides, and scoping strips them from the
        // serialized params too.
        let stripped = ScenarioParams::with_seed(9);
        assert_eq!(item, WorkItem::new(&scenario, 1, &stripped));
    }

    #[test]
    fn run_work_item_scopes_the_thread_budget_hint() {
        /// A scenario that (unlike any real one) leaks the ambient thread
        /// budget into its report, to prove the hint reaches `run_part`.
        struct BudgetProbe;
        impl Scenario for BudgetProbe {
            fn id(&self) -> &str {
                "budget-probe"
            }
            fn title(&self) -> &str {
                "budget probe"
            }
            fn run_part(
                &self,
                part: usize,
                _params: &ScenarioParams,
                _rng: &mut StdRng,
            ) -> Vec<ExperimentReport> {
                let mut r = ExperimentReport::new("budget-probe", "probe", "part", "budget");
                r.push_series(Series::new(
                    "budget",
                    vec![part as f64],
                    vec![onion_graph::budget::thread_budget() as f64],
                ));
                vec![r]
            }
        }

        let params = ScenarioParams::with_seed(1);
        let item = WorkItem::new(&BudgetProbe, 0, &params).with_threads(5);
        assert_eq!(item.threads, 5);
        // Capture the ambient budget (env-dependent) rather than assuming
        // 1, so the test is immune to an exported THREADS_ENV.
        let ambient = onion_graph::budget::thread_budget();
        let reports = run_work_item(&BudgetProbe, &item);
        assert_eq!(reports[0].series[0].y, vec![5.0], "hint visible in-part");
        assert_eq!(
            onion_graph::budget::thread_budget(),
            ambient,
            "budget restored after the item"
        );
        // The default hint keeps parts sequential; with_threads clamps.
        assert_eq!(WorkItem::new(&BudgetProbe, 0, &params).threads, 1);
        assert_eq!(
            WorkItem::new(&BudgetProbe, 0, &params)
                .with_threads(0)
                .threads,
            1
        );
    }

    #[test]
    fn work_items_without_a_threads_field_parse_with_the_default() {
        // Wire-compat: a dispatcher emitting the pre-hint item shape (no
        // `threads` key) must still be understood; the hint defaults to
        // sequential instead of failing the protocol.
        let params = ScenarioParams::with_seed(3).with_override("offset", "1.5");
        let scenario = Toy {
            id: "t1",
            parts: 1,
            keys: Some(vec!["offset"]),
        };
        let item = WorkItem::new(&scenario, 0, &params);
        let legacy_line = format!(
            "{{\"scenario_id\":\"{}\",\"part\":{},\"part_seed\":{},\"fingerprint\":\"{}\",\"params\":{}}}",
            item.scenario_id,
            item.part,
            item.part_seed,
            item.fingerprint,
            serde_json::to_string(&item.params).unwrap()
        );
        let parsed: WorkItem = serde_json::from_str(&legacy_line).unwrap();
        assert_eq!(parsed, item, "defaulted threads hint equals a fresh item's");
        assert_eq!(parsed.threads, 1);
        // Identity fields stay required: dropping one is still an error.
        let truncated = legacy_line.replace("\"part\":0,", "");
        assert!(serde_json::from_str::<WorkItem>(&truncated).is_err());
    }

    #[test]
    fn protocol_messages_roundtrip_through_json_lines() {
        let params = ScenarioParams::with_seed(3).with_override("offset", "1.5");
        let scenario = Toy {
            id: "t1",
            parts: 1,
            keys: Some(vec!["offset"]),
        };
        let item = WorkItem::new(&scenario, 0, &params);
        let line = serde_json::to_string(&item).unwrap();
        assert!(!line.contains('\n'), "one item per line");
        let parsed: WorkItem = serde_json::from_str(&line).unwrap();
        assert_eq!(parsed, item);

        let result = PartResult::ok(&item, run_work_item(&scenario, &item));
        let line = serde_json::to_string(&result).unwrap();
        assert!(!line.contains('\n'), "one result per line");
        let parsed: PartResult = serde_json::from_str(&line).unwrap();
        assert_eq!(parsed, result);

        let failed = PartResult::failed(&item, "boom");
        let parsed: PartResult =
            serde_json::from_str(&serde_json::to_string(&failed).unwrap()).unwrap();
        assert_eq!(parsed.error.as_deref(), Some("boom"));
        assert!(parsed.reports.is_empty());
    }

    #[test]
    fn local_executor_matches_sequential_scenario_runs_at_any_jobs() {
        let params = ScenarioParams::with_seed(11);
        let items: Vec<WorkItem> = plan_work_items(&toys(), &params)
            .into_iter()
            .map(|(_, item)| item)
            .collect();
        let reference = LocalExecutor::new(toys()).execute(items.clone()).unwrap();
        for jobs in [2, 8] {
            let mut parallel = LocalExecutor::new(toys())
                .jobs(jobs)
                .execute(items.clone())
                .unwrap();
            parallel.sort_by(|a, b| (&a.scenario_id, a.part).cmp(&(&b.scenario_id, b.part)));
            let mut sorted_reference = reference.clone();
            sorted_reference
                .sort_by(|a, b| (&a.scenario_id, a.part).cmp(&(&b.scenario_id, b.part)));
            assert_eq!(parallel, sorted_reference, "jobs={jobs}");
        }
    }

    #[test]
    fn local_executor_rejects_unknown_scenarios() {
        let params = ScenarioParams::with_seed(1);
        let stranger = Toy {
            id: "stranger",
            parts: 1,
            keys: None,
        };
        let item = WorkItem::new(&stranger, 0, &params);
        let error = LocalExecutor::new(toys()).execute(vec![item]).unwrap_err();
        assert!(error.to_string().contains("stranger"), "{error}");
    }

    #[test]
    fn serve_work_items_executes_and_reports_per_item_status() {
        let params = ScenarioParams::with_seed(2);
        let scenarios = toys();
        let known = WorkItem::new(&*scenarios[0], 0, &params);
        let stranger = Toy {
            id: "stranger",
            parts: 1,
            keys: None,
        };
        let unknown = WorkItem::new(&stranger, 0, &params);
        let input = format!(
            "{}\n\n{}\n",
            serde_json::to_string(&known).unwrap(),
            serde_json::to_string(&unknown).unwrap()
        );
        let mut output = Vec::new();
        let lookup = {
            let scenarios = scenarios.clone();
            move |id: &str| scenarios.iter().find(|s| s.id() == id).cloned()
        };
        serve_work_items(input.as_bytes(), &mut output, lookup).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(
            lines.len(),
            2,
            "one result line per item, blank lines skipped"
        );
        let first: PartResult = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.error, None);
        assert_eq!(first.fingerprint, known.fingerprint);
        assert_eq!(
            first.reports,
            run_work_item(&*scenarios[0], &known),
            "worker output equals in-process execution"
        );
        let second: PartResult = serde_json::from_str(lines[1]).unwrap();
        assert!(second.error.as_deref().unwrap().contains("stranger"));
    }

    #[test]
    fn serve_work_items_rejects_malformed_lines() {
        let mut output = Vec::new();
        let error = serve_work_items("this is not json\n".as_bytes(), &mut output, |_| {
            None::<Arc<dyn Scenario>>
        })
        .unwrap_err();
        assert_eq!(error.kind(), io::ErrorKind::InvalidData);
        assert!(output.is_empty());
    }

    #[test]
    fn plan_work_items_enumerates_every_part_in_order() {
        let params = ScenarioParams::with_seed(4);
        let planned = plan_work_items(&toys(), &params);
        let shape: Vec<(usize, &str, usize)> = planned
            .iter()
            .map(|(idx, item)| (*idx, item.scenario_id.as_str(), item.part))
            .collect();
        assert_eq!(
            shape,
            vec![
                (0, "t1", 0),
                (0, "t1", 1),
                (0, "t1", 2),
                (1, "t2", 0),
                (1, "t2", 1)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_ids_in_one_run_are_rejected() {
        let twins: Vec<Arc<dyn Scenario>> = vec![
            Arc::new(Toy {
                id: "twin",
                parts: 1,
                keys: None,
            }),
            Arc::new(Toy {
                id: "twin",
                parts: 1,
                keys: None,
            }),
        ];
        index_by_id(&twins);
    }

    #[test]
    fn process_executor_fails_cleanly_when_the_worker_cannot_spawn() {
        let params = ScenarioParams::with_seed(1);
        let scenario = Toy {
            id: "t1",
            parts: 1,
            keys: None,
        };
        let item = WorkItem::new(&scenario, 0, &params);
        let command = WorkerCommand::new("/nonexistent/onionbots-worker-binary");
        let error = ProcessExecutor::new(command)
            .execute(vec![item])
            .unwrap_err();
        assert!(error.to_string().contains("cannot spawn worker"), "{error}");
    }
}
