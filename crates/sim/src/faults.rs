//! Deterministic fault injection ("failpoints") for the execution stack.
//!
//! A *failpoint* is a named hook compiled into a hot path — executor item
//! dispatch, the remote dispatcher's connect/read calls, cache loads and
//! stores, the daemon's job intake ([`points`] is the full catalog). In a
//! normal run every hook is free: [`hit`] reads one relaxed atomic, sees
//! nothing armed and returns. Under a *fault schedule* — armed from the
//! `--faults NAME=SPEC` CLI flag or the [`FAULTS_ENV`] environment
//! variable — a hook can inject an I/O error, a delay or hang, a partial
//! write, or an abrupt process crash, and the hardened call sites must
//! resolve every injection into a re-queue, a clean typed error, or a
//! graceful degradation — never a wedged run.
//!
//! Triggering is **count-based and therefore deterministic**: each
//! failpoint carries a process-wide hit counter and a spec fires on exact
//! hit ordinals (`@2,5`) or open ranges (`@3..`), never on wall-clock
//! time or ambient randomness. A "randomized" chaos schedule is produced
//! by seeding a generator *outside* this module and rendering the
//! resulting specs; replaying the same schedule byte-for-byte replays the
//! same faults.
//!
//! The spec grammar, one entry per `--faults` flag (or `;`-separated in
//! the environment variable):
//!
//! ```text
//! ENTRY   := POINT '=' ACTION [':' MILLIS] '@' TRIGGERS
//! ACTION  := 'err' | 'delay' | 'hang' | 'crash' | 'partial'
//! TRIGGERS:= ORDINAL [',' ORDINAL]*      1-based hit numbers
//! ORDINAL := N | N '..'                  exact hit, or every hit from N on
//! ```
//!
//! `delay` sleeps its argument (default 100 ms) and continues; `hang` is
//! `delay` with a ten-minute duration — long enough that only a deadline
//! or watchdog ends the wait. `crash` exits the process with status 101
//! without answering, subsuming the older `ONIONBOTS_WORKER_CRASH_AFTER_ITEMS`
//! hook (which the bench worker now translates into a `crash@N+1` spec on
//! its serve failpoint). `partial` asks a write site to truncate its
//! payload mid-write; sites without a payload treat it as `err`.
//!
//! This module is the **only sanctioned home for injected
//! nondeterminism**: its env read and its sleeps are exempted by name in
//! `detlint.toml` (rules D002/D003), so any sleep or env read added
//! elsewhere still fails the determinism lint.

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Environment variable carrying a `;`-separated fault schedule.
///
/// Worker subprocesses inherit the parent's environment, so arming a
/// schedule here (as `--faults` does) also arms every process-backend
/// worker; remote worker hosts read it at startup via [`arm_from_env`].
pub const FAULTS_ENV: &str = "ONIONBOTS_FAULTS";

/// Exit status used by injected crashes (matches a Rust panic's status,
/// i.e. the shape of a real worker falling over).
pub const CRASH_EXIT_CODE: i32 = 101;

/// The failpoint catalog. Arming an unknown name is a spec error, so a
/// typo in a chaos schedule fails fast instead of silently never firing.
pub mod points {
    /// [`LocalExecutor`](crate::executor::LocalExecutor): before each
    /// item executes (both the sequential and the threaded path).
    pub const LOCAL_ITEM: &str = "local.item";
    /// Worker side of the process backend
    /// ([`serve_work_items`](crate::executor::serve_work_items)): before
    /// each assignment is answered.
    pub const WORKER_ITEM: &str = "worker.item";
    /// [`RemoteExecutor`](crate::remote::RemoteExecutor) dispatcher:
    /// before each host connection attempt.
    pub const REMOTE_CONNECT: &str = "remote.connect";
    /// `RemoteExecutor` dispatcher: before each reply read.
    pub const REMOTE_READ: &str = "remote.read";
    /// Worker-host side of the remote backend
    /// ([`serve_remote_connection`](crate::remote::serve_remote_connection)):
    /// before each assignment is answered.
    pub const REMOTE_HOST_ITEM: &str = "remote.host.item";
    /// [`ResultCache::lookup`](crate::cache::ResultCache::lookup): before
    /// the entry file is read.
    pub const CACHE_LOAD: &str = "cache.load";
    /// [`ResultCache::store`](crate::cache::ResultCache::store): before
    /// the entry file is written (`partial` truncates the payload).
    pub const CACHE_STORE: &str = "cache.store";
    /// [`Service::run_job`](crate::service::Service::run_job): at job
    /// intake, after admission control.
    pub const SERVICE_JOB: &str = "service.job";
    /// [`EventSink::send`](crate::service::EventSink::send): before each
    /// event frame is written.
    pub const SERVICE_SINK: &str = "service.sink";
    /// Reserved for this module's unit tests; no production code hits it.
    pub const TEST_PROBE: &str = "test.probe";

    /// Every known failpoint name.
    pub const ALL: [&str; 10] = [
        LOCAL_ITEM,
        WORKER_ITEM,
        REMOTE_CONNECT,
        REMOTE_READ,
        REMOTE_HOST_ITEM,
        CACHE_LOAD,
        CACHE_STORE,
        SERVICE_JOB,
        SERVICE_SINK,
        TEST_PROBE,
    ];
}

/// What an armed spec does when it triggers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Return an injected `io::Error` from the failpoint.
    Err,
    /// Sleep for the given number of milliseconds, then continue.
    Delay(u64),
    /// Exit the process with [`CRASH_EXIT_CODE`] without answering.
    Crash,
    /// Ask a write site to truncate its payload; `err` elsewhere.
    PartialWrite,
}

/// When a spec triggers: on an exact 1-based hit ordinal, or on every
/// hit from an ordinal onwards.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Trigger {
    At(u64),
    From(u64),
}

impl Trigger {
    fn matches(&self, hit: u64) -> bool {
        match *self {
            Trigger::At(n) => hit == n,
            Trigger::From(n) => hit >= n,
        }
    }
}

/// One armed fault: an action plus the hit ordinals that trigger it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    action: FaultAction,
    triggers: Vec<Trigger>,
}

impl FaultSpec {
    fn triggered(&self, hit: u64) -> bool {
        self.triggers.iter().any(|t| t.matches(hit))
    }
}

/// Per-failpoint state: the process-wide hit counter and the specs armed
/// against it.
#[derive(Debug, Default)]
struct PointState {
    hits: u64,
    specs: Vec<FaultSpec>,
}

/// Process-wide "is any spec armed at all" gate, kept in sync with the
/// plan by [`arm`] / [`disarm_all`] so [`hit`] can skip the plan lock
/// entirely in unarmed processes.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

/// The armed plan. Entries exist exactly for the points something armed,
/// and [`ANY_ARMED`] gates the lock away entirely while the map is empty.
fn plan() -> &'static Mutex<BTreeMap<String, PointState>> {
    static PLAN: OnceLock<Mutex<BTreeMap<String, PointState>>> = OnceLock::new();
    PLAN.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Parses one `POINT=ACTION[:MILLIS]@TRIGGERS` entry.
///
/// # Errors
/// Returns a human-readable message naming the offending part when the
/// point is unknown, the action unrecognized, or the triggers malformed.
pub fn parse_entry(entry: &str) -> Result<(String, FaultSpec), String> {
    let entry = entry.trim();
    let (name, spec) = entry
        .split_once('=')
        .ok_or_else(|| format!("fault entry '{entry}' is missing '=' (POINT=ACTION@TRIGGERS)"))?;
    let name = name.trim();
    if !points::ALL.contains(&name) {
        return Err(format!(
            "unknown failpoint '{name}' (known: {})",
            points::ALL.join(", ")
        ));
    }
    let (action_part, trigger_part) = spec
        .split_once('@')
        .ok_or_else(|| format!("fault entry '{entry}' is missing '@TRIGGERS'"))?;
    let (action_name, action_arg) = match action_part.split_once(':') {
        Some((a, arg)) => (a.trim(), Some(arg.trim())),
        None => (action_part.trim(), None),
    };
    let parse_millis = |arg: Option<&str>, default: u64| -> Result<u64, String> {
        match arg {
            None => Ok(default),
            Some(raw) => raw
                .parse::<u64>()
                .map_err(|_| format!("bad delay milliseconds '{raw}' in fault entry '{entry}'")),
        }
    };
    let action = match action_name {
        "err" => FaultAction::Err,
        "delay" => FaultAction::Delay(parse_millis(action_arg, 100)?),
        // Long enough that only a deadline or watchdog ends the wait.
        "hang" => FaultAction::Delay(parse_millis(action_arg, 600_000)?),
        "crash" => FaultAction::Crash,
        "partial" => FaultAction::PartialWrite,
        other => {
            return Err(format!(
                "unknown fault action '{other}' (known: err, delay[:ms], hang[:ms], crash, partial)"
            ))
        }
    };
    if action_arg.is_some() && !matches!(action, FaultAction::Delay(_)) {
        return Err(format!(
            "fault action '{action_name}' takes no ':' argument in entry '{entry}'"
        ));
    }
    let mut triggers = Vec::new();
    for raw in trigger_part.split(',') {
        let raw = raw.trim();
        let trigger = match raw.strip_suffix("..") {
            Some(from) => Trigger::From(parse_ordinal(from, entry)?),
            None => Trigger::At(parse_ordinal(raw, entry)?),
        };
        triggers.push(trigger);
    }
    Ok((name.to_string(), FaultSpec { action, triggers }))
}

fn parse_ordinal(raw: &str, entry: &str) -> Result<u64, String> {
    let n = raw
        .parse::<u64>()
        .map_err(|_| format!("bad trigger ordinal '{raw}' in fault entry '{entry}'"))?;
    if n == 0 {
        return Err(format!(
            "trigger ordinals are 1-based; '0' in fault entry '{entry}' would never fire"
        ));
    }
    Ok(n)
}

/// Parses and arms one entry, merging it into the process-wide plan.
///
/// # Errors
/// Propagates [`parse_entry`] errors.
pub fn arm(entry: &str) -> Result<(), String> {
    let (name, spec) = parse_entry(entry)?;
    let mut plan = plan().lock().expect("fault plan lock");
    plan.entry(name).or_default().specs.push(spec);
    ANY_ARMED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Arms a whole `;`-separated schedule (empty segments are skipped, so a
/// trailing `;` is harmless).
///
/// # Errors
/// Propagates the first entry's parse error.
pub fn arm_schedule(schedule: &str) -> Result<(), String> {
    for entry in schedule.split(';') {
        if entry.trim().is_empty() {
            continue;
        }
        arm(entry)?;
    }
    Ok(())
}

/// Arms the schedule in [`FAULTS_ENV`], if set. Call once at process
/// startup (the bench binary and both worker entry points do).
///
/// # Errors
/// Propagates parse errors, prefixed with the variable name.
pub fn arm_from_env() -> Result<(), String> {
    match std::env::var(FAULTS_ENV) {
        Ok(schedule) => arm_schedule(&schedule).map_err(|e| format!("{FAULTS_ENV}: {e}")),
        Err(_) => Ok(()),
    }
}

/// Clears every armed spec and resets every hit counter (tests only; a
/// production process arms once at startup and never disarms).
pub fn disarm_all() {
    let mut plan = plan().lock().expect("fault plan lock");
    plan.clear();
    ANY_ARMED.store(false, Ordering::Relaxed);
}

/// Whether any fault is currently armed (drives the CLI's banner).
pub fn armed() -> bool {
    plan()
        .lock()
        .expect("fault plan lock")
        .values()
        .any(|p| !p.specs.is_empty())
}

/// What a triggered failpoint injected, for sites that can act on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injected {
    /// Nothing triggered (or only a delay, which already elapsed).
    None,
    /// A write site should truncate its payload mid-write.
    PartialWrite,
}

/// Registers one hit at `name` and applies whatever is armed there.
///
/// Delays sleep inline and return [`Injected::None`]; crashes never
/// return. When several specs trigger on the same hit, the first armed
/// one wins.
///
/// # Errors
/// Returns the injected `io::Error` when an `err` spec triggers.
pub fn hit(name: &str) -> io::Result<Injected> {
    // Fast path: with nothing armed anywhere (every production run), a
    // failpoint costs one relaxed atomic load — no lock, no counting.
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return Ok(Injected::None);
    }
    let action = {
        let mut plan = plan().lock().expect("fault plan lock");
        let Some(point) = plan.get_mut(name) else {
            return Ok(Injected::None);
        };
        point.hits += 1;
        let hit = point.hits;
        point
            .specs
            .iter()
            .find(|spec| spec.triggered(hit))
            .map(|spec| (spec.action.clone(), hit))
    };
    let Some((action, ordinal)) = action else {
        return Ok(Injected::None);
    };
    match action {
        FaultAction::Err => Err(io::Error::other(format!(
            "injected fault at failpoint `{name}` (hit {ordinal})"
        ))),
        FaultAction::Delay(millis) => {
            std::thread::sleep(Duration::from_millis(millis));
            Ok(Injected::None)
        }
        FaultAction::Crash => {
            eprintln!("fault injection: crashing at failpoint `{name}` (hit {ordinal})");
            std::process::exit(CRASH_EXIT_CODE);
        }
        FaultAction::PartialWrite => Ok(Injected::PartialWrite),
    }
}

/// [`hit`] for sites without a write payload: a triggered `partial` is
/// downgraded to the injected error.
///
/// # Errors
/// Returns the injected `io::Error` when an `err` or `partial` spec
/// triggers.
pub fn hit_io(name: &str) -> io::Result<()> {
    match hit(name)? {
        Injected::None => Ok(()),
        Injected::PartialWrite => Err(io::Error::other(format!(
            "injected fault (partial write) at failpoint `{name}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The plan is process-global, so tests that arm it must not overlap.
    fn test_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    struct Armed<'a> {
        _serialized: std::sync::MutexGuard<'a, ()>,
    }

    fn arm_probe(schedule: &str) -> Armed<'static> {
        let guard = test_lock().lock().expect("test lock");
        disarm_all();
        arm_schedule(schedule).expect("schedule parses");
        Armed { _serialized: guard }
    }

    impl Drop for Armed<'_> {
        fn drop(&mut self) {
            disarm_all();
        }
    }

    #[test]
    fn spec_grammar_parses_actions_and_triggers() {
        let (name, spec) = parse_entry("test.probe=err@1,3").unwrap();
        assert_eq!(name, "test.probe");
        assert_eq!(spec.action, FaultAction::Err);
        assert!(spec.triggered(1) && !spec.triggered(2) && spec.triggered(3));

        let (_, spec) = parse_entry("test.probe=delay:250@2..").unwrap();
        assert_eq!(spec.action, FaultAction::Delay(250));
        assert!(!spec.triggered(1) && spec.triggered(2) && spec.triggered(9));

        let (_, spec) = parse_entry("test.probe=hang@1").unwrap();
        assert_eq!(spec.action, FaultAction::Delay(600_000));

        let (_, spec) = parse_entry("test.probe=crash@4").unwrap();
        assert_eq!(spec.action, FaultAction::Crash);

        let (_, spec) = parse_entry("test.probe=partial@1").unwrap();
        assert_eq!(spec.action, FaultAction::PartialWrite);
    }

    #[test]
    fn spec_grammar_rejects_garbage_with_named_errors() {
        for (entry, needle) in [
            ("test.probe", "missing '='"),
            ("nope.nope=err@1", "unknown failpoint"),
            ("test.probe=err", "missing '@TRIGGERS'"),
            ("test.probe=explode@1", "unknown fault action"),
            ("test.probe=delay:soon@1", "bad delay milliseconds"),
            ("test.probe=err:5@1", "takes no ':' argument"),
            ("test.probe=err@x", "bad trigger ordinal"),
            ("test.probe=err@0", "1-based"),
        ] {
            let error = parse_entry(entry).unwrap_err();
            assert!(error.contains(needle), "{entry}: {error}");
        }
    }

    #[test]
    fn unarmed_points_are_free_and_silent() {
        let _guard = test_lock().lock().expect("test lock");
        disarm_all();
        for _ in 0..100 {
            assert_eq!(hit(points::TEST_PROBE).unwrap(), Injected::None);
        }
        assert!(!armed());
    }

    #[test]
    fn count_based_triggers_fire_on_exact_hits() {
        let _armed = arm_probe("test.probe=err@2,4");
        assert!(hit(points::TEST_PROBE).is_ok(), "hit 1 clean");
        assert!(hit(points::TEST_PROBE).is_err(), "hit 2 fires");
        assert!(hit(points::TEST_PROBE).is_ok(), "hit 3 clean");
        assert!(hit(points::TEST_PROBE).is_err(), "hit 4 fires");
        assert!(hit(points::TEST_PROBE).is_ok(), "hit 5 clean");
    }

    #[test]
    fn open_ranges_fire_forever_and_merge_with_other_entries() {
        let _armed = arm_probe("test.probe=partial@1;test.probe=err@3..");
        assert_eq!(hit(points::TEST_PROBE).unwrap(), Injected::PartialWrite);
        assert_eq!(hit(points::TEST_PROBE).unwrap(), Injected::None);
        for _ in 0..5 {
            assert!(hit(points::TEST_PROBE).is_err(), "open range keeps firing");
        }
        assert!(armed());
    }

    #[test]
    fn hit_io_downgrades_partial_writes_to_errors() {
        let _armed = arm_probe("test.probe=partial@1");
        let error = hit_io(points::TEST_PROBE).unwrap_err();
        assert!(error.to_string().contains("partial write"), "{error}");
        assert!(hit_io(points::TEST_PROBE).is_ok());
    }

    #[test]
    fn injected_errors_name_the_failpoint_and_ordinal() {
        let _armed = arm_probe("test.probe=err@1");
        let error = hit(points::TEST_PROBE).unwrap_err();
        let message = error.to_string();
        assert!(
            message.contains("test.probe") && message.contains("hit 1"),
            "{message}"
        );
    }

    #[test]
    fn schedules_skip_empty_segments() {
        let _armed = arm_probe("test.probe=err@1;;");
        assert!(hit(points::TEST_PROBE).is_err());
    }
}
