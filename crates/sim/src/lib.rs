//! # sim
//!
//! Experiment infrastructure for the OnionBots (DSN 2015) evaluation:
//!
//! * [`engine`] — a deterministic discrete-event queue for scenario
//!   scheduling.
//! * [`scenario`] — the takedown experiments behind Figures 4, 5 and 6:
//!   gradual (self-repairing vs. normal) takedowns with metric sampling, and
//!   the simultaneous-deletion partition threshold.
//! * [`experiment`] — data series, CSV / table / JSON rendering shared by the
//!   figure-regeneration binaries in `crates/bench`.
//!
//! ```
//! use sim::scenario::{gradual_takedown, TakedownMode, TakedownParams};
//! use onionbots_core::{DdsrConfig, DdsrOverlay};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let (mut overlay, ids) = DdsrOverlay::new_regular(120, 10, DdsrConfig::for_degree(10), &mut rng);
//! let samples = gradual_takedown(
//!     &mut overlay,
//!     &ids,
//!     TakedownMode::SelfRepairing,
//!     TakedownParams { deletions: 36, sample_every: 12, metric_samples: 30 },
//!     &mut rng,
//! );
//! assert_eq!(samples.last().unwrap().connected_components, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod experiment;
pub mod scenario;

pub use experiment::{ExperimentReport, Series};
pub use scenario::{gradual_takedown, partition_threshold, TakedownMode, TakedownParams};
