//! # sim
//!
//! Experiment infrastructure for the OnionBots (DSN 2015) evaluation:
//!
//! * [`engine`] — a deterministic discrete-event queue for scenario
//!   scheduling.
//! * [`scenario`] — the takedown primitives behind Figures 4, 5 and 6:
//!   gradual (self-repairing vs. normal) takedowns with metric sampling, and
//!   the simultaneous-deletion partition threshold.
//! * [`scenario_api`] — the first-class scenario layer: the [`Scenario`]
//!   trait (named, seeded, parameterized experiments split into
//!   independently runnable parts), [`ScenarioParams`] and the
//!   [`ScenarioRegistry`] that `crates/bench` populates with every paper
//!   figure/table/ablation.
//! * [`runner`] — the [`Runner`]: plans *(scenario, part)* work items
//!   with per-part deterministic seeds, resolves them against the result
//!   cache, dispatches the misses to a pluggable execution [`Backend`]
//!   and collects a [`RunSummary`] whose JSON is byte-identical for any
//!   worker count and backend.
//! * [`executor`] — the execution backends behind the runner: the
//!   [`Executor`] trait over serializable [`WorkItem`]s (whose identity
//!   is the cache fingerprint), the in-process [`LocalExecutor`] thread
//!   pool and the [`ProcessExecutor`], which streams newline-delimited
//!   JSON work items to `run_experiments worker` subprocesses and
//!   re-queues items when a worker dies.
//! * [`service`] — the always-on simulation service: a persistent
//!   daemon over the same runner pipeline, speaking an NDJSON job API
//!   ([`service::Request`]/[`service::Event`] frames) over Unix-domain
//!   or TCP loopback sockets, streaming per-part lifecycle events and
//!   fronting one shared result cache for every client.
//! * [`faults`] — deterministic fault injection: named failpoints
//!   compiled into the executors, the remote dispatcher, the cache and
//!   the service, armed via `--faults NAME=SPEC` schedules with
//!   count-based (never wall-clock) triggers — the chaos layer behind
//!   the robustness tests.
//! * [`cache`] — the persistent, content-addressed [`ResultCache`]: stores
//!   each part's reports under a SHA-256 fingerprint of *(scenario id,
//!   part, seed, scale, overrides, format version)* so re-runs only
//!   execute changed parts, with byte-identical summaries either way.
//! * [`experiment`] — data series, CSV / table / JSON rendering and the
//!   pluggable [`ReportSink`]s (console table, CSV directory, JSON
//!   directory) used by the `run_experiments` binary in `crates/bench`.
//!
//! ```
//! use sim::scenario::{gradual_takedown, TakedownMode, TakedownParams};
//! use onionbots_core::{DdsrConfig, DdsrOverlay};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let (mut overlay, ids) = DdsrOverlay::new_regular(120, 10, DdsrConfig::for_degree(10), &mut rng);
//! let samples = gradual_takedown(
//!     &mut overlay,
//!     &ids,
//!     TakedownMode::SelfRepairing,
//!     TakedownParams { deletions: 36, sample_every: 12, metric_samples: 30 },
//!     &mut rng,
//! );
//! assert_eq!(samples.last().unwrap().connected_components, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod engine;
pub mod executor;
pub mod experiment;
pub mod faults;
pub mod remote;
pub mod runner;
pub mod scenario;
pub mod scenario_api;
pub mod service;

pub use cache::{CacheLookup, CacheStats, PartFingerprint, ResultCache, CACHE_FORMAT_VERSION};
pub use executor::{
    Executor, ExecutorError, LocalExecutor, PartResult, ProcessExecutor, WorkItem, WorkerCommand,
};
pub use experiment::{CsvDirSink, ExperimentReport, JsonDirSink, ReportSink, Series, TableSink};
pub use faults::FAULTS_ENV;
pub use remote::{
    serve_remote_connection, serve_remote_host, DispatchFrame, RemoteExecutor, WorkerFrame,
    REMOTE_PROTOCOL_VERSION,
};
pub use runner::{
    Backend, PartEvent, PartState, RunObserver, RunSummary, Runner, ScenarioOutcome, ThreadsPerItem,
};
pub use scenario::{gradual_takedown, partition_threshold, TakedownMode, TakedownParams};
pub use scenario_api::{
    merge_reports, parse_override, part_seed, Scenario, ScenarioParams, ScenarioRegistry,
    UnknownScenario,
};
// The service's `Request`/`Event` frame types stay namespaced
// (`sim::service::{Request, Event}`) so they cannot be confused with the
// discrete-event `engine` types; the nouns below are unambiguous.
pub use service::{
    BackendSpec, JobSpec, JobState, JobStatus, ScenarioInfo, Service, ServiceConfig, ThreadsSpec,
};
