//! A small discrete-event simulation engine.
//!
//! The figure experiments are step-driven, but the botnet-level scenarios
//! (staggered takedowns, daily address rotation, SOAP campaigns racing
//! against repair) need events ordered on a virtual clock. [`EventQueue`] is
//! a deterministic priority queue of `(time, sequence, event)` entries; ties
//! are broken by insertion order so runs are reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled event of type `E`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Virtual time at which the event fires.
    pub at: u64,
    /// Insertion sequence number (tie-breaker).
    pub sequence: u64,
    /// The event payload.
    pub event: E,
}

/// A deterministic discrete-event queue.
#[derive(Debug, Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    entries: std::collections::HashMap<(u64, u64), E>,
    next_sequence: u64,
    now: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            entries: std::collections::HashMap::new(),
            next_sequence: 0,
            now: 0,
        }
    }

    /// Current virtual time (the firing time of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules an event at absolute virtual time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule(&mut self, at: u64, event: E) {
        assert!(at >= self.now, "cannot schedule an event in the past");
        let key = (at, self.next_sequence);
        self.next_sequence += 1;
        self.heap.push(Reverse(key));
        self.entries.insert(key, event);
    }

    /// Schedules an event `delay` ticks from the current time.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let Reverse(key) = self.heap.pop()?;
        let event = self.entries.remove(&key).expect("entry exists for key");
        self.now = key.0;
        Some(Scheduled {
            at: key.0,
            sequence: key.1,
            event,
        })
    }

    /// Pops and handles every event up to and including time `until`,
    /// invoking `handler` for each. The handler may schedule further events.
    pub fn run_until<F>(&mut self, until: u64, mut handler: F) -> usize
    where
        F: FnMut(&mut Self, Scheduled<E>),
    {
        let mut handled = 0usize;
        loop {
            let next_time = match self.heap.peek() {
                Some(Reverse((t, _))) => *t,
                None => break,
            };
            if next_time > until {
                break;
            }
            let scheduled = self.pop().expect("peeked entry exists");
            handler(self, scheduled);
            handled += 1;
        }
        self.now = self.now.max(until);
        handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order_with_stable_ties() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(10, "b");
        q.schedule(5, "a");
        q.schedule(10, "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.now(), 5);
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn run_until_handles_cascading_events() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(1, 1);
        let mut fired = Vec::new();
        let handled = q.run_until(5, |queue, ev| {
            fired.push((ev.at, ev.event));
            if ev.event < 4 {
                queue.schedule_in(1, ev.event + 1);
            }
        });
        assert_eq!(handled, 4);
        assert_eq!(fired, vec![(1, 1), (2, 2), (3, 3), (4, 4)]);
        assert_eq!(q.now(), 5);
    }

    #[test]
    fn run_until_leaves_later_events_pending() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(3, "early");
        q.schedule(100, "late");
        let handled = q.run_until(10, |_, _| {});
        assert_eq!(handled, 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.now(), 10);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(5, "x");
        q.pop();
        q.schedule(1, "too late");
    }

    #[test]
    fn empty_queue_reports_empty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.now(), 0);
    }
}
