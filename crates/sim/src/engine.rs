//! A small discrete-event simulation engine.
//!
//! The figure experiments are step-driven, but the botnet-level scenarios
//! (staggered takedowns, daily address rotation, SOAP campaigns racing
//! against repair) need events ordered on a virtual clock. [`EventQueue`] is
//! a deterministic priority queue of `(time, sequence, event)` entries; ties
//! are broken by insertion order so runs are reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled event of type `E`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Virtual time at which the event fires.
    pub at: u64,
    /// Insertion sequence number (tie-breaker).
    pub sequence: u64,
    /// The event payload.
    pub event: E,
}

/// Heap entry ordered by `(at, sequence)` only; the payload rides along
/// instead of living in a side map.
#[derive(Debug)]
struct Entry<E> {
    at: u64,
    sequence: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.sequence) == (other.at, other.sequence)
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.sequence).cmp(&(other.at, other.sequence))
    }
}

/// A deterministic discrete-event queue: a single min-heap on
/// `(time, sequence)` carrying the payloads directly.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_sequence: u64,
    now: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_sequence: 0,
            now: 0,
        }
    }

    /// Current virtual time (the firing time of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules an event at absolute virtual time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule(&mut self, at: u64, event: E) {
        assert!(at >= self.now, "cannot schedule an event in the past");
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(Reverse(Entry {
            at,
            sequence,
            event,
        }));
    }

    /// Schedules an event `delay` ticks from the current time.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        Some(Scheduled {
            at: entry.at,
            sequence: entry.sequence,
            event: entry.event,
        })
    }

    /// Pops and handles every event up to and including time `until`,
    /// invoking `handler` for each. The handler may schedule further events.
    pub fn run_until<F>(&mut self, until: u64, mut handler: F) -> usize
    where
        F: FnMut(&mut Self, Scheduled<E>),
    {
        let mut handled = 0usize;
        while let Some(Reverse(entry)) = self.heap.peek() {
            if entry.at > until {
                break;
            }
            let scheduled = self.pop().expect("peeked entry exists");
            handler(self, scheduled);
            handled += 1;
        }
        self.now = self.now.max(until);
        handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order_with_stable_ties() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(10, "b");
        q.schedule(5, "a");
        q.schedule(10, "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.now(), 5);
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn run_until_handles_cascading_events() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(1, 1);
        let mut fired = Vec::new();
        let handled = q.run_until(5, |queue, ev| {
            fired.push((ev.at, ev.event));
            if ev.event < 4 {
                queue.schedule_in(1, ev.event + 1);
            }
        });
        assert_eq!(handled, 4);
        assert_eq!(fired, vec![(1, 1), (2, 2), (3, 3), (4, 4)]);
        assert_eq!(q.now(), 5);
    }

    #[test]
    fn run_until_leaves_later_events_pending() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(3, "early");
        q.schedule(100, "late");
        let handled = q.run_until(10, |_, _| {});
        assert_eq!(handled, 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.now(), 10);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(5, "x");
        q.pop();
        q.schedule(1, "too late");
    }

    #[test]
    fn empty_queue_reports_empty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.now(), 0);
    }
}
