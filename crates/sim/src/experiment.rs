//! Experiment series, reports, renderers and output sinks shared by the
//! scenario registry and the figure-generation binaries.

use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

/// A named data series: `(x, y)` pairs plus a label, the unit the figures
/// plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. `"deg = 5"`, `"DDSR"`, `"Normal"`).
    pub label: String,
    /// X values (e.g. nodes deleted).
    pub x: Vec<f64>,
    /// Y values (e.g. average closeness centrality).
    pub y: Vec<f64>,
}

impl Series {
    /// Creates a series from parallel vectors.
    ///
    /// # Panics
    /// Panics if `x` and `y` differ in length.
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series axes must have equal length");
        Series {
            label: label.into(),
            x,
            y,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The final y value, if any.
    pub fn last_y(&self) -> Option<f64> {
        self.y.last().copied()
    }
}

/// A complete experiment report: the figure/table it reproduces plus its
/// series, renderable as CSV or a fixed-width table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment identifier, e.g. `"fig4a"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// The measured series.
    pub series: Vec<Series>,
    /// Free-form annotation lines (trace output, per-row commentary),
    /// rendered after the table.
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Adds an annotation line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Builds the aligned row grid: the sorted union of every series' x
    /// values, with each series contributing `Some(y)` exactly where it has
    /// a point at that x. Series with different x grids (e.g. a takedown
    /// sampled every 10 deletions next to one sampled every 25) no longer
    /// get their y values attributed to another series' x positions.
    ///
    /// A series may legally contain the same x more than once (e.g. two
    /// merged parts that both sampled one x); every occurrence gets its
    /// own row — the j-th row for an x value pairs the j-th occurrence in
    /// each series — so no point is silently dropped.
    fn aligned_rows(&self) -> Vec<(f64, Vec<Option<f64>>)> {
        let mut grid: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.x.iter().copied())
            .collect();
        grid.sort_by(|a, b| a.partial_cmp(b).expect("x values are comparable"));
        grid.dedup();
        let mut rows = Vec::new();
        for x in grid {
            let occurrences = self
                .series
                .iter()
                .map(|s| s.x.iter().filter(|&&sx| sx == x).count())
                .max()
                .unwrap_or(0);
            for occurrence in 0..occurrences {
                let ys = self
                    .series
                    .iter()
                    .map(|s| {
                        s.x.iter()
                            .enumerate()
                            .filter(|&(_, &sx)| sx == x)
                            .nth(occurrence)
                            .map(|(i, _)| s.y[i])
                    })
                    .collect();
                rows.push((x, ys));
            }
        }
        rows
    }

    /// Renders as CSV: header `x,<label1>,<label2>,...` with one row per
    /// distinct x value across all series (aligned by x value); cells are
    /// blank where a series has no point at that x.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut header = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.label.clone()));
        let _ = writeln!(out, "{}", header.join(","));
        for (x, ys) in self.aligned_rows() {
            let mut row = vec![format_num(x)];
            row.extend(
                ys.into_iter()
                    .map(|y| y.map(format_num).unwrap_or_default()),
            );
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Renders as an aligned text table with the title (rows aligned by x
    /// value, like [`to_csv`](Self::to_csv)), followed by any notes —
    /// suitable for the console output of the figure binaries.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ({}) ==", self.title, self.id);
        let _ = write!(out, "{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>16}", s.label);
        }
        let _ = writeln!(out);
        for (x, ys) in self.aligned_rows() {
            let _ = write!(out, "{:>14}", format_num(x));
            for y in ys {
                let _ = write!(out, " {:>16}", y.map(format_num).unwrap_or_default());
            }
            let _ = writeln!(out);
        }
        for note in &self.notes {
            let _ = writeln!(out, "{note}");
        }
        out
    }

    /// Serializes the report as pretty JSON (for EXPERIMENTS.md provenance).
    ///
    /// # Panics
    /// Never panics in practice; the structure is always serializable.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// A destination for finished reports, pluggable into the experiment
/// runner's CLI (console table, CSV files, JSON files, ...).
pub trait ReportSink {
    /// Consumes one report from the named scenario.
    ///
    /// # Errors
    /// Returns any I/O error from the underlying destination.
    fn write_report(&mut self, scenario_id: &str, report: &ExperimentReport) -> io::Result<()>;

    /// Flushes buffered state after the last report.
    ///
    /// # Errors
    /// Returns any I/O error from the underlying destination.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Renders every report as an aligned text table to a writer.
#[derive(Debug)]
pub struct TableSink<W: io::Write> {
    out: W,
}

impl<W: io::Write> TableSink<W> {
    /// Creates a table sink over any writer (e.g. stdout).
    pub fn new(out: W) -> Self {
        TableSink { out }
    }
}

impl<W: io::Write> ReportSink for TableSink<W> {
    fn write_report(&mut self, _scenario_id: &str, report: &ExperimentReport) -> io::Result<()> {
        writeln!(self.out, "{}", report.to_table())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Resolves `<dir>/<scenario id>/<report id>.<ext>`, creating the
/// scenario subdirectory. Namespacing by scenario keeps reports from two
/// scenarios that happen to reuse a report id (easy with user-registered
/// scenarios) from silently overwriting each other.
fn report_path(
    dir: &std::path::Path,
    scenario_id: &str,
    report_id: &str,
    ext: &str,
) -> io::Result<PathBuf> {
    let scenario_dir = dir.join(scenario_id);
    std::fs::create_dir_all(&scenario_dir)?;
    Ok(scenario_dir.join(format!("{report_id}.{ext}")))
}

/// Writes `<dir>/<scenario id>/<report id>.csv` per report.
#[derive(Debug)]
pub struct CsvDirSink {
    dir: PathBuf,
}

impl CsvDirSink {
    /// Creates the sink, creating `dir` if needed.
    ///
    /// # Errors
    /// Returns the error from `create_dir_all`.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CsvDirSink { dir })
    }
}

impl ReportSink for CsvDirSink {
    fn write_report(&mut self, scenario_id: &str, report: &ExperimentReport) -> io::Result<()> {
        std::fs::write(
            report_path(&self.dir, scenario_id, &report.id, "csv")?,
            report.to_csv(),
        )
    }
}

/// Writes `<dir>/<scenario id>/<report id>.json` per report.
#[derive(Debug)]
pub struct JsonDirSink {
    dir: PathBuf,
}

impl JsonDirSink {
    /// Creates the sink, creating `dir` if needed.
    ///
    /// # Errors
    /// Returns the error from `create_dir_all`.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(JsonDirSink { dir })
    }
}

impl ReportSink for JsonDirSink {
    fn write_report(&mut self, scenario_id: &str, report: &ExperimentReport) -> io::Result<()> {
        std::fs::write(
            report_path(&self.dir, scenario_id, &report.id, "json")?,
            report.to_json(),
        )
    }
}

fn format_num(v: f64) -> String {
    if (v.fract()).abs() < 1e-9 && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExperimentReport {
        let mut r = ExperimentReport::new("fig-test", "Test figure", "x", "y");
        r.push_series(Series::new(
            "a",
            vec![0.0, 1.0, 2.0],
            vec![0.5, 0.25, 0.125],
        ));
        r.push_series(Series::new("b", vec![0.0, 1.0], vec![3.0, 4.0]));
        r
    }

    #[test]
    fn series_construction_and_accessors() {
        let s = Series::new("deg = 5", vec![0.0, 10.0], vec![0.9, 0.8]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.last_y(), Some(0.8));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_series_axes_panic() {
        Series::new("bad", vec![1.0], vec![]);
    }

    #[test]
    fn csv_has_header_and_all_rows() {
        let csv = report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0,"));
        assert!(lines[3].ends_with(','), "short series leaves a blank cell");
    }

    #[test]
    fn table_contains_title_and_labels() {
        let table = report().to_table();
        assert!(table.contains("Test figure"));
        assert!(table.contains("fig-test"));
        assert!(table.contains('a'));
        assert!(table.contains('b'));
    }

    #[test]
    fn mismatched_x_grids_align_by_x_value() {
        // Regression: row i used to take x from the first series long
        // enough and pair it with y[i] of *every* series, which misplaced
        // values when series were sampled on different x grids.
        let mut r = ExperimentReport::new("fig-align", "Alignment", "x", "y");
        r.push_series(Series::new(
            "coarse",
            vec![0.0, 10.0, 20.0],
            vec![1.0, 2.0, 3.0],
        ));
        r.push_series(Series::new(
            "fine",
            vec![0.0, 5.0, 10.0, 15.0],
            vec![9.0, 8.0, 7.0, 6.0],
        ));
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,coarse,fine");
        assert_eq!(lines[1], "0,1,9");
        assert_eq!(lines[2], "5,,8", "fine-only x leaves coarse blank");
        assert_eq!(lines[3], "10,2,7", "shared x pairs the right values");
        assert_eq!(lines[4], "15,,6");
        assert_eq!(lines[5], "20,3,");
        assert_eq!(lines.len(), 6, "one row per distinct x value");
        let table = r.to_table();
        let row10: Vec<&str> = table
            .lines()
            .find(|l| l.trim_start().starts_with("10 ") || l.trim_start().starts_with("10"))
            .map(|l| l.split_whitespace().collect())
            .unwrap();
        assert_eq!(row10, vec!["10", "2", "7"]);
    }

    #[test]
    fn repeated_x_values_keep_every_point() {
        // A series may sample the same x twice (e.g. merged parts); both
        // points must survive rendering instead of the second vanishing.
        let mut r = ExperimentReport::new("fig-dup", "Duplicates", "x", "y");
        r.push_series(Series::new(
            "a",
            vec![0.0, 1.0, 1.0, 2.0],
            vec![9.0, 8.0, 7.0, 6.0],
        ));
        r.push_series(Series::new("b", vec![1.0], vec![5.0]));
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[1], "0,9,");
        assert_eq!(lines[2], "1,8,5", "first occurrence pairs with b");
        assert_eq!(lines[3], "1,7,", "second occurrence keeps its row");
        assert_eq!(lines[4], "2,6,");
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn notes_render_after_the_table_and_survive_json() {
        let mut r = report();
        r.push_note("first note");
        r.push_note("second note");
        let table = r.to_table();
        assert!(table.ends_with("first note\nsecond note\n"));
        let restored: ExperimentReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(restored, r);
    }

    #[test]
    fn sinks_write_expected_files() {
        let dir = std::env::temp_dir().join(format!("sim-sink-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = report();
        let mut json_sink = JsonDirSink::new(&dir).unwrap();
        json_sink.write_report("scenario", &r).unwrap();
        json_sink.finish().unwrap();
        let mut csv_sink = CsvDirSink::new(&dir).unwrap();
        csv_sink.write_report("scenario", &r).unwrap();
        let json = std::fs::read_to_string(dir.join("scenario/fig-test.json")).unwrap();
        let restored: ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, r);
        let csv = std::fs::read_to_string(dir.join("scenario/fig-test.csv")).unwrap();
        assert_eq!(csv, r.to_csv());
        // Same report id from a second scenario lands in its own
        // subdirectory instead of clobbering the first scenario's file.
        let mut other = report();
        other.push_note("other scenario's variant");
        let mut json_sink = JsonDirSink::new(&dir).unwrap();
        json_sink.write_report("other", &other).unwrap();
        assert!(dir.join("other/fig-test.json").exists());
        assert_eq!(
            std::fs::read_to_string(dir.join("scenario/fig-test.json")).unwrap(),
            json,
            "first scenario's report untouched"
        );
        let mut buf = Vec::new();
        let mut table_sink = TableSink::new(&mut buf);
        table_sink.write_report("scenario", &r).unwrap();
        table_sink.finish().unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("Test figure"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_roundtrip() {
        let r = report();
        let restored: ExperimentReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(restored, r);
    }

    #[test]
    fn numbers_are_formatted_compactly() {
        assert_eq!(format_num(5.0), "5");
        assert_eq!(format_num(0.12345678), "0.1235");
    }
}
