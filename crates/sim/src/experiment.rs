//! Experiment series, reports and renderers shared by the figure-generation
//! binaries.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// A named data series: `(x, y)` pairs plus a label, the unit the figures
/// plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. `"deg = 5"`, `"DDSR"`, `"Normal"`).
    pub label: String,
    /// X values (e.g. nodes deleted).
    pub x: Vec<f64>,
    /// Y values (e.g. average closeness centrality).
    pub y: Vec<f64>,
}

impl Series {
    /// Creates a series from parallel vectors.
    ///
    /// # Panics
    /// Panics if `x` and `y` differ in length.
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series axes must have equal length");
        Series {
            label: label.into(),
            x,
            y,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The final y value, if any.
    pub fn last_y(&self) -> Option<f64> {
        self.y.last().copied()
    }
}

/// A complete experiment report: the figure/table it reproduces plus its
/// series, renderable as CSV or a fixed-width table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment identifier, e.g. `"fig4a"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// The measured series.
    pub series: Vec<Series>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Renders as CSV: header `x,<label1>,<label2>,...` with one row per x
    /// value of the first (longest) series; missing values are blank.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut header = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.label.clone()));
        let _ = writeln!(out, "{}", header.join(","));
        let rows = self.series.iter().map(Series::len).max().unwrap_or(0);
        for i in 0..rows {
            let x = self
                .series
                .iter()
                .find(|s| i < s.len())
                .map(|s| s.x[i])
                .unwrap_or_default();
            let mut row = vec![format_num(x)];
            for s in &self.series {
                row.push(if i < s.len() {
                    format_num(s.y[i])
                } else {
                    String::new()
                });
            }
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Renders as an aligned text table with the title, suitable for the
    /// console output of the figure binaries.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ({}) ==", self.title, self.id);
        let _ = write!(out, "{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>16}", s.label);
        }
        let _ = writeln!(out);
        let rows = self.series.iter().map(Series::len).max().unwrap_or(0);
        for i in 0..rows {
            let x = self
                .series
                .iter()
                .find(|s| i < s.len())
                .map(|s| s.x[i])
                .unwrap_or_default();
            let _ = write!(out, "{:>14}", format_num(x));
            for s in &self.series {
                if i < s.len() {
                    let _ = write!(out, " {:>16}", format_num(s.y[i]));
                } else {
                    let _ = write!(out, " {:>16}", "");
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serializes the report as pretty JSON (for EXPERIMENTS.md provenance).
    ///
    /// # Panics
    /// Never panics in practice; the structure is always serializable.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

fn format_num(v: f64) -> String {
    if (v.fract()).abs() < 1e-9 && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExperimentReport {
        let mut r = ExperimentReport::new("fig-test", "Test figure", "x", "y");
        r.push_series(Series::new("a", vec![0.0, 1.0, 2.0], vec![0.5, 0.25, 0.125]));
        r.push_series(Series::new("b", vec![0.0, 1.0], vec![3.0, 4.0]));
        r
    }

    #[test]
    fn series_construction_and_accessors() {
        let s = Series::new("deg = 5", vec![0.0, 10.0], vec![0.9, 0.8]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.last_y(), Some(0.8));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_series_axes_panic() {
        Series::new("bad", vec![1.0], vec![]);
    }

    #[test]
    fn csv_has_header_and_all_rows() {
        let csv = report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0,"));
        assert!(lines[3].ends_with(','), "short series leaves a blank cell");
    }

    #[test]
    fn table_contains_title_and_labels() {
        let table = report().to_table();
        assert!(table.contains("Test figure"));
        assert!(table.contains("fig-test"));
        assert!(table.contains('a'));
        assert!(table.contains('b'));
    }

    #[test]
    fn json_roundtrip() {
        let r = report();
        let restored: ExperimentReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(restored, r);
    }

    #[test]
    fn numbers_are_formatted_compactly() {
        assert_eq!(format_num(5.0), "5");
        assert_eq!(format_num(0.12345678), "0.1235");
    }
}
