//! The always-on simulation service: a persistent daemon front-end over
//! the [`Runner`] pipeline.
//!
//! A [`Service`] loads the [`ScenarioRegistry`] once, owns the shared
//! [`ResultCache`] and the executor backend configuration, and serves
//! concurrent client connections over a Unix domain socket
//! ([`Service::serve_unix`]) or TCP loopback ([`Service::serve_tcp`]).
//! The wire protocol is newline-delimited JSON — the same framing
//! discipline as the worker protocol in [`crate::executor`]: one
//! [`Request`] frame per client line, one [`Event`] frame per daemon
//! line. No HTTP stack is involved; `std::net` and
//! `std::os::unix::net` suffice.
//!
//! A submitted job ([`JobSpec`]) runs through the exact pipeline the
//! one-shot CLI uses — [`Runner::try_run_observed`] — so for a fixed
//! seed the final [`RunSummary`] is **byte-identical** to a one-shot
//! run, cold or fully cached, no matter how many clients are connected.
//! While the job executes, the daemon streams per-part lifecycle frames
//! ([`Event::Part`] wrapping [`PartEvent`]:
//! queued/cache-hit/started/finished/error) as they land, so cached
//! parts answer instantly while cold parts trickle in; the final
//! [`Event::Done`] frame carries the summary plus the job's own
//! [`CacheStats`].
//!
//! Job lifecycle is tracked in a small job table ([`JobStatus`] rows)
//! that serves [`Request::Status`] from any connection. Shutdown is
//! graceful: once draining begins (SIGTERM/ctrl-c in the CLI, or a
//! [`Request::Shutdown`] frame), new submissions are refused with an
//! error frame, in-flight jobs run to completion (their fresh parts are
//! flushed to the cache by the runner as usual), idle connections are
//! told [`Event::ShuttingDown`], and the serve loop returns once every
//! connection has wound down.
//!
//! A misbehaving client cannot hurt the daemon: a malformed frame gets
//! an [`Event::Error`] answer and the connection keeps serving, and a
//! client that disconnects mid-job merely stops receiving events — the
//! job still runs to completion, so the shared cache is warmed, never
//! poisoned.
//!
//! Resource use is bounded and jobs are revocable: admission control
//! refuses submissions beyond [`ServiceConfig::max_active_jobs`]
//! concurrently running jobs with an [`Event::Rejected`] frame (nothing
//! queues — the client retries), and [`Request::Cancel`] drains a
//! running job's remaining work items at the next batch boundary.
//! Because the runner stores results only after a dispatch fully
//! succeeds, a cancelled job writes *nothing* to the shared cache — no
//! partial state can ever be replayed. The `service.job` and
//! `service.sink` failpoints ([`crate::faults`]) inject daemon-side job
//! deaths and mid-frame client disconnects for the robustness tests.

// The daemon must never die on a recoverable condition (the doc block
// above promises exactly that), so panicking extractors are banned in
// this module; the test module below opts back in, where a panic *is*
// the failure report.
#![deny(clippy::unwrap_used)]

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::cache::{CacheLookup, CacheStats, PartFingerprint, ResultCache};
use crate::executor::WorkerCommand;
use crate::faults;
use crate::runner::{
    Backend, PartEvent, RunObserver, RunSummary, Runner, ScenarioOutcome, ThreadsPerItem,
};
use crate::scenario_api::{ScenarioParams, ScenarioRegistry};

// The unused-import lint would otherwise flag these doc-link-only names.
#[allow(unused_imports)]
use crate::runner::PartState;
#[allow(unused_imports)]
use crate::scenario_api::Scenario;

/// One machine-readable registry entry, as listed by [`Request::List`]
/// (and by `run_experiments --list --json`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioInfo {
    /// The scenario's registry id (the `--only` selector).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Part count under the parameters the listing was taken with.
    pub parts: usize,
    /// The override keys the scenario declares ([`Scenario::override_keys`]);
    /// `None` means undeclared — every `--set` key is fingerprinted.
    pub override_keys: Option<Vec<String>>,
}

impl ScenarioInfo {
    /// Collects the listing for every registered scenario, in
    /// registration order, with part counts evaluated under `params`.
    pub fn collect(registry: &ScenarioRegistry, params: &ScenarioParams) -> Vec<ScenarioInfo> {
        registry
            .iter()
            .map(|scenario| ScenarioInfo {
                id: scenario.id().to_string(),
                title: scenario.title().to_string(),
                parts: scenario.parts(params).max(1),
                override_keys: scenario
                    .override_keys()
                    .map(|keys| keys.iter().map(|k| (*k).to_string()).collect()),
            })
            .collect()
    }
}

/// Which execution backend a job asks for, on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendSpec {
    /// In-process threads ([`Backend::Local`]).
    Local,
    /// Worker subprocesses ([`Backend::Process`]); requires the service
    /// to be configured with a [`WorkerCommand`].
    Process,
    /// A `serve-worker` fleet over TCP ([`Backend::Remote`]); requires
    /// worker host addresses on the job or in the service configuration.
    Remote,
}

/// The intra-item thread budget a job asks for, on the wire (mirrors
/// [`ThreadsPerItem`], which is not itself a protocol type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadsSpec {
    /// Sequential intra-item sweeps.
    Sequential,
    /// Split the machine's cores across in-flight items.
    Auto,
    /// A fixed thread count per item.
    Fixed(usize),
}

impl ThreadsSpec {
    /// The runner policy this wire value selects.
    pub fn to_policy(self) -> ThreadsPerItem {
        match self {
            ThreadsSpec::Sequential => ThreadsPerItem::Sequential,
            ThreadsSpec::Auto => ThreadsPerItem::Auto,
            ThreadsSpec::Fixed(threads) => ThreadsPerItem::Fixed(threads),
        }
    }
}

/// One job submission: scenario selector, seed, scale, overrides and
/// execution knobs. Every field is optional on the wire — an absent (or
/// `null`) field falls back to the daemon's configuration, and the
/// defaults reproduce the one-shot CLI's defaults (seed 2015, quick
/// scale, no overrides), so `{"Submit":{...all null...}}` runs the full
/// registry exactly like a bare `run_experiments` invocation.
///
/// Execution knobs (`jobs`, `backend`, `threads_per_item`) can never
/// change output bytes — the runner's determinism contract — so clients
/// may tune them freely without perturbing results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct JobSpec {
    /// Scenario ids to run; empty or absent selects the whole registry.
    pub only: Option<Vec<String>>,
    /// Base RNG seed (default: the [`ScenarioParams::default`] seed).
    pub seed: Option<u64>,
    /// Run at the paper's full population (default: quick scale).
    pub full_scale: Option<bool>,
    /// Scenario overrides, as `--set KEY=VALUE` pairs.
    pub overrides: Option<BTreeMap<String, String>>,
    /// Bypass and overwrite existing cache entries (default: false).
    pub refresh: Option<bool>,
    /// Worker count for this job (default: the service's configuration).
    pub jobs: Option<usize>,
    /// Execution backend (default: the service's configuration).
    pub backend: Option<BackendSpec>,
    /// Worker host addresses for [`BackendSpec::Remote`] jobs (default:
    /// the service's configuration).
    pub workers: Option<Vec<String>>,
    /// Intra-item thread budget (default: the service's configuration).
    pub threads_per_item: Option<ThreadsSpec>,
}

impl JobSpec {
    /// A spec that runs the whole registry with every default.
    pub fn all() -> Self {
        JobSpec::default()
    }

    /// The scenario parameters this spec resolves to — identical to what
    /// the one-shot CLI would build from the same seed/scale/overrides.
    pub fn params(&self) -> ScenarioParams {
        let mut params = ScenarioParams::default();
        if let Some(seed) = self.seed {
            params.seed = seed;
        }
        params.full_scale = self.full_scale.unwrap_or(false);
        if let Some(overrides) = &self.overrides {
            params.overrides = overrides.clone();
        }
        params
    }

    /// The scenario selector (empty = everything).
    pub fn selector(&self) -> Vec<String> {
        self.only.clone().unwrap_or_default()
    }
}

/// One client → daemon frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a job; the daemon answers [`Event::Accepted`], streams
    /// [`Event::Part`] frames, and closes the job with [`Event::Done`]
    /// or [`Event::Error`].
    Submit(JobSpec),
    /// Query the job table; `job: null` lists every job. Answered with
    /// [`Event::Jobs`].
    Status {
        /// A specific job id, or `None` for all jobs.
        job: Option<u64>,
    },
    /// List the registered scenarios. Answered with [`Event::Scenarios`].
    List,
    /// Cancel a running job: its remaining work items are drained, the
    /// submitting connection receives [`Event::Cancelled`] as the job's
    /// final frame, and — because the runner only writes results back
    /// after a dispatch fully succeeds — nothing from the cancelled job
    /// reaches the shared cache. Answered with [`Event::Cancelled`] (or
    /// [`Event::Error`] for an unknown or already finished job).
    Cancel {
        /// The job to cancel.
        job: u64,
    },
    /// Ask the daemon to drain and exit: submissions are refused from
    /// this point on, in-flight jobs finish, then the serve loop
    /// returns. Answered with [`Event::ShuttingDown`].
    Shutdown,
}

/// One daemon → client frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A submission was accepted and assigned a job id.
    Accepted {
        /// The new job's id.
        job: u64,
    },
    /// One part lifecycle transition of a running job, streamed live.
    Part {
        /// The job the part belongs to.
        job: u64,
        /// The transition ([`PartState`] queued/cache-hit/started/
        /// finished/error).
        event: PartEvent,
    },
    /// A job finished successfully: the final frame of a submission.
    Done {
        /// The finished job's id.
        job: u64,
        /// The deterministic summary — byte-identical to a one-shot CLI
        /// run with the same spec.
        summary: RunSummary,
        /// This job's cache counters (`None` when the daemon runs
        /// uncached).
        cache: Option<CacheStats>,
    },
    /// A request failed. `job` is set when a previously accepted job
    /// failed mid-run, `None` when the request itself was rejected
    /// (malformed frame, unknown scenario, draining daemon, ...).
    Error {
        /// The failed job, if one was accepted.
        job: Option<u64>,
        /// Human-readable reason.
        message: String,
    },
    /// A submission was refused by admission control: the daemon already
    /// runs its configured maximum of concurrent jobs. Nothing was
    /// queued — the client should retry after a running job finishes.
    Rejected {
        /// Why the submission was refused.
        reason: String,
    },
    /// A job was cancelled: sent as the acknowledgement to
    /// [`Request::Cancel`] and as the final frame of the cancelled
    /// submission.
    Cancelled {
        /// The cancelled job's id.
        job: u64,
    },
    /// The job-table snapshot answering [`Request::Status`].
    Jobs(Vec<JobStatus>),
    /// The registry listing answering [`Request::List`].
    Scenarios(Vec<ScenarioInfo>),
    /// The daemon is draining: no further submissions are accepted and
    /// the connection is about to close.
    ShuttingDown,
}

/// Lifecycle state of one job in the job table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobState {
    /// The job is executing.
    Running,
    /// The job finished and its summary was delivered.
    Done,
    /// The job was cancelled before completing; none of its results
    /// reached the cache.
    Cancelled,
    /// The job failed with the contained backend error.
    Failed(String),
}

/// One row of the daemon's job table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// The job's id (assigned in submission order, starting at 1).
    pub job: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// The scenario ids the job runs, in selection order.
    pub scenarios: Vec<String>,
    /// Total planned parts across those scenarios.
    pub parts_total: usize,
    /// Parts resolved so far (cache hits plus finished executions).
    pub parts_done: usize,
    /// The job's cache counters once it finished (`None` while running
    /// or when the daemon runs uncached).
    pub cache: Option<CacheStats>,
}

/// How a [`Service`] executes the jobs it accepts.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Default worker count per job.
    pub jobs: usize,
    /// Default execution backend.
    pub backend: BackendSpec,
    /// How to launch worker subprocesses for [`BackendSpec::Process`]
    /// jobs; `None` makes process-backend submissions fail cleanly.
    pub worker_command: Option<WorkerCommand>,
    /// Default worker host addresses for [`BackendSpec::Remote`] jobs;
    /// empty makes remote submissions without their own `workers` fail
    /// cleanly.
    pub workers: Vec<String>,
    /// Default intra-item thread budget.
    pub threads_per_item: ThreadsPerItem,
    /// The shared result cache every job resolves against; `None` runs
    /// every job uncached.
    pub cache: Option<ResultCache>,
    /// Admission bound: how many jobs may run concurrently. A submission
    /// arriving while this many jobs are `Running` is answered with
    /// [`Event::Rejected`] instead of being queued — the daemon's memory
    /// and thread use stay bounded no matter how many clients push work.
    pub max_active_jobs: usize,
    /// Per-item reply deadline (milliseconds) for remote-backend jobs;
    /// `None` keeps the executor default.
    pub remote_deadline_ms: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            jobs: 1,
            backend: BackendSpec::Local,
            worker_command: None,
            workers: Vec::new(),
            threads_per_item: ThreadsPerItem::Sequential,
            cache: None,
            max_active_jobs: DEFAULT_MAX_ACTIVE_JOBS,
            remote_deadline_ms: None,
        }
    }
}

/// Default admission bound for [`ServiceConfig::max_active_jobs`].
pub const DEFAULT_MAX_ACTIVE_JOBS: usize = 8;

/// The persistent simulation service: registry + cache + backend loaded
/// once, serving concurrent NDJSON clients.
///
/// `Service` itself is transport-agnostic — [`handle_connection`]
/// drives any `Read`/`Write` pair — and the serve loops
/// ([`serve_unix`], [`serve_tcp`]) layer socket accept/drain mechanics
/// on top.
///
/// [`handle_connection`]: Service::handle_connection
/// [`serve_unix`]: Service::serve_unix
/// [`serve_tcp`]: Service::serve_tcp
pub struct Service {
    registry: ScenarioRegistry,
    config: ServiceConfig,
    table: Mutex<Vec<JobStatus>>,
    cancels: Mutex<BTreeMap<u64, std::sync::Arc<AtomicBool>>>,
    next_job: AtomicU64,
    draining: AtomicBool,
    stop_requested: AtomicBool,
}

impl Service {
    /// Creates a service over `registry` with the given execution
    /// configuration.
    pub fn new(registry: ScenarioRegistry, config: ServiceConfig) -> Self {
        Service {
            registry,
            config,
            table: Mutex::new(Vec::new()),
            cancels: Mutex::new(BTreeMap::new()),
            next_job: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stop_requested: AtomicBool::new(false),
        }
    }

    /// The registry this service executes against.
    pub fn registry(&self) -> &ScenarioRegistry {
        &self.registry
    }

    /// The machine-readable scenario listing (quick-scale part counts).
    pub fn scenario_infos(&self) -> Vec<ScenarioInfo> {
        ScenarioInfo::collect(&self.registry, &ScenarioParams::default())
    }

    /// Starts draining: submissions are refused from this point on.
    /// In-flight jobs are unaffected — they run to completion and their
    /// fresh results still reach the cache.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether the service is draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Requests a full stop (what a [`Request::Shutdown`] frame does):
    /// begins draining and tells the serve loop to exit.
    pub fn request_stop(&self) {
        self.begin_drain();
        self.stop_requested.store(true, Ordering::SeqCst);
    }

    /// Whether a stop was requested via [`request_stop`](Self::request_stop).
    pub fn stop_requested(&self) -> bool {
        self.stop_requested.load(Ordering::SeqCst)
    }

    /// A snapshot of the job table; `job` filters to one id.
    pub fn jobs_snapshot(&self, job: Option<u64>) -> Vec<JobStatus> {
        let table = self.table.lock().expect("job table lock");
        table
            .iter()
            .filter(|row| job.is_none_or(|id| row.job == id))
            .cloned()
            .collect()
    }

    fn bump_parts_done(&self, job: u64) {
        let mut table = self.table.lock().expect("job table lock");
        if let Some(row) = table.iter_mut().find(|row| row.job == job) {
            row.parts_done += 1;
        }
    }

    fn finish_job(&self, job: u64, state: JobState, cache: Option<CacheStats>) {
        let mut table = self.table.lock().expect("job table lock");
        if let Some(row) = table.iter_mut().find(|row| row.job == job) {
            row.state = state;
            row.cache = cache;
        }
    }

    fn resolve_backend(&self, spec: &JobSpec) -> Result<Backend, String> {
        match spec.backend.unwrap_or(self.config.backend) {
            BackendSpec::Local => Ok(Backend::Local),
            BackendSpec::Process => self
                .config
                .worker_command
                .clone()
                .map(Backend::Process)
                .ok_or_else(|| {
                    "this service has no worker command configured; \
                     the process backend is unavailable"
                        .to_string()
                }),
            BackendSpec::Remote => {
                let workers = spec
                    .workers
                    .clone()
                    .filter(|workers| !workers.is_empty())
                    .unwrap_or_else(|| self.config.workers.clone());
                if workers.is_empty() {
                    Err("this service has no worker hosts configured; \
                         the remote backend is unavailable"
                        .to_string())
                } else {
                    Ok(Backend::Remote(workers))
                }
            }
        }
    }

    /// Executes one submission synchronously on the calling (connection)
    /// thread, streaming events into `sink`. Concurrency across clients
    /// comes from one connection thread per client; parallelism *within*
    /// a job comes from the runner's backend fan-out.
    ///
    /// A broken sink (client gone) never aborts the job: results are
    /// computed and cached regardless, so a disconnecting client cannot
    /// poison or cool the shared cache.
    pub fn run_job<W: Write + Send>(&self, spec: &JobSpec, sink: &EventSink<W>) {
        if self.is_draining() {
            sink.send(&Event::Error {
                job: None,
                message: "service is shutting down; submissions are refused".to_string(),
            });
            return;
        }
        let selected = match self.registry.select(&spec.selector()) {
            Ok(selected) => selected,
            Err(error) => {
                sink.send(&Event::Error {
                    job: None,
                    message: error.to_string(),
                });
                return;
            }
        };
        let params = spec.params();
        // Summary memoization: when every planned part is already a
        // *validated* cache hit (and the job is not a refresh), the run
        // replays entirely from the cache, so no backend dispatch is
        // planned at all — a fully-cached submission returns `Done` even
        // when its requested backend is currently unavailable (a remote
        // fleet that went home, a missing worker command).
        let fully_cached = !spec.refresh.unwrap_or(false)
            && self.config.cache.as_ref().is_some_and(|cache| {
                selected.iter().all(|scenario| {
                    (0..scenario.parts(&params).max(1)).all(|part| {
                        let fingerprint = PartFingerprint::compute(&**scenario, part, &params);
                        matches!(cache.lookup(&fingerprint), CacheLookup::Hit(_))
                    })
                })
            });
        let backend = if fully_cached {
            Backend::Local
        } else {
            match self.resolve_backend(spec) {
                Ok(backend) => backend,
                Err(message) => {
                    sink.send(&Event::Error { job: None, message });
                    return;
                }
            }
        };
        let parts_total: usize = selected.iter().map(|s| s.parts(&params).max(1)).sum();
        // Admission control: the Running count is checked and the new row
        // inserted under one table lock, so concurrent submissions cannot
        // both squeeze past the bound.
        let job = {
            let mut table = self.table.lock().expect("job table lock");
            let active = table
                .iter()
                .filter(|row| row.state == JobState::Running)
                .count();
            if active >= self.config.max_active_jobs.max(1) {
                sink.send(&Event::Rejected {
                    reason: format!(
                        "job queue is full ({active} of {} job slot(s) running); \
                         retry after a job finishes",
                        self.config.max_active_jobs.max(1)
                    ),
                });
                return;
            }
            let job = self.next_job.fetch_add(1, Ordering::SeqCst) + 1;
            table.push(JobStatus {
                job,
                state: JobState::Running,
                scenarios: selected.iter().map(|s| s.id().to_string()).collect(),
                parts_total,
                parts_done: 0,
                cache: None,
            });
            job
        };
        let cancel = std::sync::Arc::new(AtomicBool::new(false));
        self.cancels
            .lock()
            .expect("cancel map lock")
            .insert(job, cancel.clone());
        sink.send(&Event::Accepted { job });

        // The `service.job` failpoint models an accepted job dying inside
        // the daemon (OOM, a panicked scenario, ...): the table rows it
        // as Failed and the client gets the typed Error frame.
        if let Err(error) = faults::hit_io(faults::points::SERVICE_JOB) {
            let message = error.to_string();
            self.finish_job(job, JobState::Failed(message.clone()), None);
            self.cancels.lock().expect("cancel map lock").remove(&job);
            sink.send(&Event::Error {
                job: Some(job),
                message,
            });
            return;
        }

        let mut runner = Runner::new(params)
            .jobs(spec.jobs.unwrap_or(self.config.jobs))
            .backend(backend)
            .threads_per_item(
                spec.threads_per_item
                    .map_or(self.config.threads_per_item, ThreadsSpec::to_policy),
            )
            .cancel_token(cancel.clone());
        if let Some(millis) = self.config.remote_deadline_ms {
            runner = runner.remote_deadline_ms(millis);
        }
        if let Some(cache) = &self.config.cache {
            runner = runner
                .with_cache(cache.clone())
                .refresh(spec.refresh.unwrap_or(false));
        }
        let observer = JobObserver {
            service: self,
            job,
            sink,
        };
        let outcome = runner.try_run_observed(&selected, &observer);
        self.cancels.lock().expect("cancel map lock").remove(&job);
        match outcome {
            Ok((summary, cache)) => {
                self.finish_job(job, JobState::Done, cache);
                sink.send(&Event::Done {
                    job,
                    summary,
                    cache,
                });
            }
            Err(error) => {
                let message = error.to_string();
                // A cancel that actually drained the run (the token was
                // tripped *and* the runner aborted on it) closes the job
                // as Cancelled; any other failure — including one that
                // raced a late cancel — stays a Failed job with its real
                // error message.
                if cancel.load(Ordering::SeqCst) && message.starts_with("job cancelled") {
                    self.finish_job(job, JobState::Cancelled, None);
                    sink.send(&Event::Cancelled { job });
                } else {
                    self.finish_job(job, JobState::Failed(message.clone()), None);
                    sink.send(&Event::Error {
                        job: Some(job),
                        message,
                    });
                }
            }
        }
    }

    /// Requests cancellation of a running job. The job's remaining items
    /// are drained at the next batch boundary; its submitter receives
    /// [`Event::Cancelled`] as the final frame.
    ///
    /// # Errors
    /// Returns a human-readable reason when `job` is unknown or no longer
    /// running.
    pub fn cancel_job(&self, job: u64) -> Result<(), String> {
        let token = self
            .cancels
            .lock()
            .expect("cancel map lock")
            .get(&job)
            .cloned();
        match token {
            Some(token) => {
                token.store(true, Ordering::SeqCst);
                Ok(())
            }
            None => {
                let known = self
                    .jobs_snapshot(Some(job))
                    .first()
                    .map(|row| row.state.clone());
                Err(match known {
                    Some(state) => format!("job {job} is not running (state: {state:?})"),
                    None => format!("unknown job {job}"),
                })
            }
        }
    }

    fn handle_request<W: Write + Send>(&self, request: Request, sink: &EventSink<W>) {
        match request {
            Request::Submit(spec) => self.run_job(&spec, sink),
            Request::Status { job } => sink.send(&Event::Jobs(self.jobs_snapshot(job))),
            Request::List => sink.send(&Event::Scenarios(self.scenario_infos())),
            Request::Cancel { job } => match self.cancel_job(job) {
                Ok(()) => sink.send(&Event::Cancelled { job }),
                Err(message) => sink.send(&Event::Error {
                    job: Some(job),
                    message,
                }),
            },
            Request::Shutdown => {
                self.request_stop();
                sink.send(&Event::ShuttingDown);
            }
        }
    }

    /// Serves one client connection until EOF, a dead peer, or drain.
    ///
    /// Malformed frames are answered with [`Event::Error`] and the
    /// connection keeps serving — a bad client can cost itself, never
    /// the daemon. When the connection's transport has a read timeout
    /// (the serve loops set one), idle periods poll the drain flag so a
    /// silent client cannot stall shutdown.
    ///
    /// # Errors
    /// Returns the underlying I/O error when the transport fails in a
    /// way that is neither EOF nor a read timeout.
    pub fn handle_connection<R: Read, W: Write + Send>(
        &self,
        input: R,
        output: W,
    ) -> io::Result<()> {
        let sink = EventSink::new(output);
        let mut frames = FrameReader::new(input);
        loop {
            match frames.read_frame()? {
                Frame::Eof => return Ok(()),
                Frame::Idle => {
                    if self.is_draining() {
                        sink.send(&Event::ShuttingDown);
                        return Ok(());
                    }
                }
                Frame::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match serde_json::from_str::<Request>(&line) {
                        Ok(request) => self.handle_request(request, &sink),
                        Err(error) => sink.send(&Event::Error {
                            job: None,
                            message: format!("malformed request frame: {error}"),
                        }),
                    }
                }
            }
            if sink.is_broken() {
                // The client is gone; nothing further can be delivered.
                return Ok(());
            }
        }
    }

    /// The accept/drain loop shared by both transports: poll `accept`,
    /// spawn one scoped thread per connection, and — once `stop` (or a
    /// client's [`Request::Shutdown`]) fires — begin draining, stop
    /// accepting and join every connection thread before returning.
    fn serve_with<S, A>(&self, mut accept: A, stop: &AtomicBool) -> io::Result<()>
    where
        S: ServeStream,
        A: FnMut() -> io::Result<Option<S>>,
    {
        std::thread::scope(|scope| -> io::Result<()> {
            loop {
                if stop.load(Ordering::SeqCst) || self.stop_requested() {
                    self.begin_drain();
                    return Ok(());
                }
                match accept()? {
                    Some(stream) => {
                        // The per-read timeout turns blocked reads into
                        // Frame::Idle polls, so idle connections notice
                        // the drain instead of pinning the join below.
                        if stream.set_read_interval(Duration::from_millis(50)).is_err() {
                            continue;
                        }
                        let Ok(reader) = stream.duplicate() else {
                            continue;
                        };
                        scope.spawn(move || {
                            let _ = self.handle_connection(reader, stream);
                        });
                    }
                    // detlint: allow(D002) reason="accept-loop idle poll; paces the nonblocking accept() retry and can never reach an output path"
                    None => std::thread::sleep(Duration::from_millis(20)),
                }
            }
            // Scope exit joins every connection thread: in-flight jobs
            // finish (flushing fresh parts to the cache) before the
            // serve loop returns — the graceful-drain barrier.
        })
    }

    /// Serves clients on a Unix domain socket at `path` until `stop` is
    /// set (or a client requests shutdown), then drains and removes the
    /// socket file. A stale socket file from a previous run is replaced.
    ///
    /// # Errors
    /// Returns the I/O error when the socket cannot be bound or the
    /// accept loop fails.
    #[cfg(unix)]
    pub fn serve_unix(&self, path: &Path, stop: &AtomicBool) -> io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let result = self.serve_with(
            || match listener.accept() {
                Ok((stream, _addr)) => {
                    stream.set_nonblocking(false)?;
                    Ok(Some(stream))
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(error) => Err(error),
            },
            stop,
        );
        let _ = std::fs::remove_file(path);
        result
    }

    /// Serves clients on an already bound TCP listener (loopback
    /// recommended — the protocol is unauthenticated) until `stop` is
    /// set or a client requests shutdown, then drains.
    ///
    /// # Errors
    /// Returns the I/O error when the accept loop fails.
    pub fn serve_tcp(&self, listener: TcpListener, stop: &AtomicBool) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        self.serve_with(
            || match listener.accept() {
                Ok((stream, _addr)) => {
                    stream.set_nonblocking(false)?;
                    Ok(Some(stream))
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(error) => Err(error),
            },
            stop,
        )
    }
}

/// Forwards runner part events to one job's client and keeps the job
/// table's progress counter current.
struct JobObserver<'a, W: Write + Send> {
    service: &'a Service,
    job: u64,
    sink: &'a EventSink<W>,
}

impl<W: Write + Send> RunObserver for JobObserver<'_, W> {
    fn part_event(&self, event: PartEvent) {
        if matches!(event.state, PartState::CacheHit | PartState::Finished) {
            self.service.bump_parts_done(self.job);
        }
        self.sink.send(&Event::Part {
            job: self.job,
            event,
        });
    }
}

/// A concurrency-safe NDJSON event writer over one connection.
///
/// Events arrive from multiple backend worker threads (via the
/// [`RunObserver`]), so writes are serialized through a mutex and each
/// event is flushed as one complete line. A write failure marks the
/// sink broken and silences all further events instead of erroring:
/// a vanished client must never abort the job it submitted.
pub struct EventSink<W: Write> {
    writer: Mutex<W>,
    broken: AtomicBool,
}

impl<W: Write> EventSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        EventSink {
            writer: Mutex::new(writer),
            broken: AtomicBool::new(false),
        }
    }

    /// Sends one event frame (a no-op once the sink is broken).
    pub fn send(&self, event: &Event) {
        if self.is_broken() {
            return;
        }
        let line = serde_json::to_string(event).expect("events serialize");
        let mut writer = self.writer.lock().expect("sink lock");
        // The `service.sink` failpoint models the peer vanishing mid
        // stream; a `partial` action additionally delivers a truncated
        // frame first — the worst case a real half-closed socket can
        // produce — before the sink goes silent.
        match faults::hit(faults::points::SERVICE_SINK) {
            Ok(faults::Injected::None) => {}
            Ok(faults::Injected::PartialWrite) => {
                let _ = writer.write_all(&line.as_bytes()[..line.len() / 2]);
                let _ = writer.flush();
                self.broken.store(true, Ordering::SeqCst);
                return;
            }
            Err(_) => {
                self.broken.store(true, Ordering::SeqCst);
                return;
            }
        }
        let outcome = writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush());
        if outcome.is_err() {
            self.broken.store(true, Ordering::SeqCst);
        }
    }

    /// Whether a previous write failed (the peer is gone).
    pub fn is_broken(&self) -> bool {
        self.broken.load(Ordering::SeqCst)
    }
}

/// One read step of a [`FrameReader`].
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (without its terminator).
    Line(String),
    /// The read timed out with no complete line buffered — the caller
    /// may poll state (e.g. the drain flag) and try again.
    Idle,
    /// The peer closed the connection.
    Eof,
}

/// An incremental NDJSON line reader that survives read timeouts.
///
/// `BufRead::read_line` would lose buffered partial lines across a
/// timeout; this reader keeps partial bytes between calls, so a
/// transport with a read timeout (as the serve loops configure) yields
/// [`Frame::Idle`] without corrupting the stream.
pub struct FrameReader<R: Read> {
    input: R,
    buffer: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a reader.
    pub fn new(input: R) -> Self {
        FrameReader {
            input,
            buffer: Vec::new(),
        }
    }

    /// Reads until one complete line, a timeout, or EOF.
    ///
    /// # Errors
    /// Returns the underlying I/O error for failures that are neither
    /// timeouts nor EOF.
    pub fn read_frame(&mut self) -> io::Result<Frame> {
        loop {
            if let Some(pos) = self.buffer.iter().position(|&b| b == b'\n') {
                let rest = self.buffer.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buffer, rest);
                line.pop(); // the '\n'
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Frame::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            let mut chunk = [0u8; 4096];
            match self.input.read(&mut chunk) {
                Ok(0) => {
                    if self.buffer.is_empty() {
                        return Ok(Frame::Eof);
                    }
                    // A final unterminated line; the next call sees EOF.
                    let line = std::mem::take(&mut self.buffer);
                    return Ok(Frame::Line(String::from_utf8_lossy(&line).into_owned()));
                }
                Ok(read) => self.buffer.extend_from_slice(&chunk[..read]),
                Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                Err(error)
                    if matches!(
                        error.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(Frame::Idle)
                }
                Err(error) => return Err(error),
            }
        }
    }
}

/// What the serve loops need from a connection transport: a second
/// handle for the read side and a poll-friendly read timeout.
trait ServeStream: Read + Write + Send + Sized {
    fn duplicate(&self) -> io::Result<Self>;
    fn set_read_interval(&self, timeout: Duration) -> io::Result<()>;
}

#[cfg(unix)]
impl ServeStream for std::os::unix::net::UnixStream {
    fn duplicate(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn set_read_interval(&self, timeout: Duration) -> io::Result<()> {
        self.set_read_timeout(Some(timeout))
    }
}

impl ServeStream for std::net::TcpStream {
    fn duplicate(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn set_read_interval(&self, timeout: Duration) -> io::Result<()> {
        self.set_read_timeout(Some(timeout))
    }
}

/// Sums per-outcome report counts — a helper for clients rendering
/// progress from a final summary.
pub fn summary_parts(outcomes: &[ScenarioOutcome]) -> usize {
    outcomes.iter().map(|o| o.parts).sum()
}

#[cfg(all(test, unix))]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentReport, Series};
    use crate::scenario_api::Scenario;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;

    struct Toy {
        id: &'static str,
        parts: usize,
    }

    impl Scenario for Toy {
        fn id(&self) -> &str {
            self.id
        }
        fn title(&self) -> &str {
            "toy service scenario"
        }
        fn override_keys(&self) -> Option<Vec<&str>> {
            Some(vec!["offset"])
        }
        fn parts(&self, _params: &ScenarioParams) -> usize {
            self.parts
        }
        fn run_part(
            &self,
            part: usize,
            params: &ScenarioParams,
            rng: &mut StdRng,
        ) -> Vec<ExperimentReport> {
            let offset = params.override_f64("offset", 0.0);
            let mut r = ExperimentReport::new(self.id, "toy", "part", "value");
            r.push_series(Series::new(
                "trace",
                vec![part as f64],
                vec![offset + rng.gen_range(0.0f64..1.0)],
            ));
            vec![r]
        }
    }

    fn registry() -> ScenarioRegistry {
        let mut registry = ScenarioRegistry::new();
        registry
            .register(Toy { id: "s1", parts: 3 })
            .register(Toy { id: "s2", parts: 2 });
        registry
    }

    fn scenarios() -> Vec<Arc<dyn Scenario>> {
        registry().select(&[]).unwrap()
    }

    fn service(cache: Option<ResultCache>) -> Service {
        Service::new(
            registry(),
            ServiceConfig {
                jobs: 2,
                cache,
                ..ServiceConfig::default()
            },
        )
    }

    fn temp_cache(tag: &str) -> (ResultCache, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "sim-service-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (ResultCache::open(&dir).unwrap(), dir)
    }

    /// Drives one connection end-to-end: writes every request line, half
    /// closes, and collects every event frame the service answers.
    fn roundtrip(service: &Service, requests: &[String]) -> Vec<Event> {
        let (client, server) = UnixStream::pair().unwrap();
        std::thread::scope(|scope| {
            // The thread must *own* the server end: handle_connection
            // returning then drops every server-side fd, which is what
            // turns the client's read loop below into an EOF.
            let handle = scope.spawn(move || {
                let reader = server.try_clone().unwrap();
                service.handle_connection(reader, server).unwrap();
            });
            let mut out = client.try_clone().unwrap();
            for request in requests {
                writeln!(out, "{request}").unwrap();
            }
            client.shutdown(std::net::Shutdown::Write).unwrap();
            let mut events = Vec::new();
            let mut frames = FrameReader::new(&client);
            loop {
                match frames.read_frame().unwrap() {
                    Frame::Eof => break,
                    Frame::Idle => continue,
                    Frame::Line(line) => {
                        events.push(serde_json::from_str::<Event>(&line).unwrap());
                    }
                }
            }
            handle.join().unwrap();
            events
        })
    }

    fn submit_frame(spec: &JobSpec) -> String {
        serde_json::to_string(&Request::Submit(spec.clone())).unwrap()
    }

    fn spec_with_seed(seed: u64) -> JobSpec {
        JobSpec {
            seed: Some(seed),
            ..JobSpec::default()
        }
    }

    fn done_frame(events: &[Event]) -> (u64, RunSummary, Option<CacheStats>) {
        match events.last().expect("at least one event") {
            Event::Done {
                job,
                summary,
                cache,
            } => (*job, summary.clone(), *cache),
            other => panic!("expected a Done frame, got {other:?}"),
        }
    }

    #[test]
    fn submitted_job_streams_lifecycle_and_matches_one_shot_bytes() {
        let service = service(None);
        let events = roundtrip(&service, &[submit_frame(&spec_with_seed(42))]);
        assert_eq!(events.first(), Some(&Event::Accepted { job: 1 }));
        let states: Vec<&PartState> = events
            .iter()
            .filter_map(|e| match e {
                Event::Part { job: 1, event } => Some(&event.state),
                _ => None,
            })
            .collect();
        let count = |wanted: &PartState| states.iter().filter(|s| **s == wanted).count();
        assert_eq!(count(&PartState::Queued), 5, "3 + 2 parts queued");
        assert_eq!(count(&PartState::Started), 5);
        assert_eq!(count(&PartState::Finished), 5);
        assert_eq!(count(&PartState::CacheHit), 0);
        let (job, summary, cache) = done_frame(&events);
        assert_eq!(job, 1);
        assert_eq!(cache, None, "uncached service reports no stats");
        // The daemon path and the one-shot path share the pipeline:
        // summaries are byte-identical.
        let one_shot = Runner::new(ScenarioParams::with_seed(42))
            .jobs(2)
            .run(&scenarios());
        assert_eq!(summary.to_json(), one_shot.to_json());
        // The job table records completion.
        let jobs = service.jobs_snapshot(None);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].state, JobState::Done);
        assert_eq!(jobs[0].parts_total, 5);
        assert_eq!(jobs[0].parts_done, 5);
        assert_eq!(jobs[0].scenarios, vec!["s1", "s2"]);
    }

    #[test]
    fn warm_submission_is_all_hits_with_per_job_stats_and_identical_bytes() {
        let (cache, dir) = temp_cache("warm");
        let service = service(Some(cache));
        let cold = roundtrip(&service, &[submit_frame(&spec_with_seed(7))]);
        let warm = roundtrip(&service, &[submit_frame(&spec_with_seed(7))]);
        let (_, cold_summary, cold_stats) = done_frame(&cold);
        let (warm_job, warm_summary, warm_stats) = done_frame(&warm);
        assert_eq!(warm_job, 2, "job ids increment across connections");
        // Satellite: per-job cache stats surface in the final frame and
        // aggregate per job, not across the daemon's lifetime.
        let cold_stats = cold_stats.expect("cached service reports stats");
        assert_eq!(cold_stats.misses, 5);
        assert_eq!(cold_stats.stored, 5);
        assert_eq!(cold_stats.hits, 0);
        let warm_stats = warm_stats.expect("cached service reports stats");
        assert!(warm_stats.all_hits(), "{warm_stats:?}");
        assert_eq!(warm_stats.hits, 5);
        assert_eq!(warm_stats.misses, 0);
        // A warm job streams cache-hit frames and never starts a part.
        let warm_states: Vec<&PartState> = warm
            .iter()
            .filter_map(|e| match e {
                Event::Part { event, .. } => Some(&event.state),
                _ => None,
            })
            .collect();
        assert_eq!(warm_states.len(), 5);
        assert!(warm_states.iter().all(|s| **s == PartState::CacheHit));
        // Cold and warm submissions are byte-identical, and both match
        // the uncached one-shot run.
        assert_eq!(cold_summary.to_json(), warm_summary.to_json());
        let one_shot = Runner::new(ScenarioParams::with_seed(7)).run(&scenarios());
        assert_eq!(warm_summary.to_json(), one_shot.to_json());
        // The table keeps each job's own counters.
        let rows = service.jobs_snapshot(None);
        assert_eq!(rows[0].cache, Some(cold_stats));
        assert_eq!(rows[1].cache, Some(warm_stats));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_frames_get_an_error_and_the_connection_survives() {
        let service = service(None);
        let events = roundtrip(
            &service,
            &[
                "this is not json".to_string(),
                "{\"Submit\":{\"only\":42}}".to_string(),
                serde_json::to_string(&Request::List).unwrap(),
            ],
        );
        assert_eq!(events.len(), 3);
        for event in &events[..2] {
            let Event::Error { job: None, message } = event else {
                panic!("expected a job-less Error frame, got {event:?}");
            };
            assert!(message.contains("malformed"), "{message}");
        }
        let Event::Scenarios(infos) = &events[2] else {
            panic!("the connection must keep serving after a bad frame");
        };
        assert_eq!(infos.len(), 2);
    }

    #[test]
    fn unknown_scenarios_are_rejected_without_creating_a_job() {
        let service = service(None);
        let spec = JobSpec {
            only: Some(vec!["nope".to_string()]),
            ..JobSpec::default()
        };
        let events = roundtrip(&service, &[submit_frame(&spec)]);
        assert_eq!(events.len(), 1);
        let Event::Error { job: None, message } = &events[0] else {
            panic!("expected rejection, got {:?}", events[0]);
        };
        assert!(message.contains("unknown scenario"), "{message}");
        assert!(service.jobs_snapshot(None).is_empty());
    }

    #[test]
    fn process_backend_without_a_worker_command_fails_cleanly() {
        let service = service(None);
        let spec = JobSpec {
            backend: Some(BackendSpec::Process),
            ..JobSpec::default()
        };
        let events = roundtrip(&service, &[submit_frame(&spec)]);
        let Event::Error { job: None, message } = &events[0] else {
            panic!("expected rejection, got {:?}", events[0]);
        };
        assert!(message.contains("no worker command"), "{message}");
    }

    #[test]
    fn remote_backend_without_worker_hosts_fails_cleanly() {
        let service = service(None);
        let spec = JobSpec {
            backend: Some(BackendSpec::Remote),
            ..JobSpec::default()
        };
        let events = roundtrip(&service, &[submit_frame(&spec)]);
        let Event::Error { job: None, message } = &events[0] else {
            panic!("expected rejection, got {:?}", events[0]);
        };
        assert!(message.contains("no worker hosts"), "{message}");
    }

    #[test]
    fn fully_cached_submission_never_plans_a_backend_dispatch() {
        let (cache, dir) = temp_cache("memo");
        let service = service(Some(cache));
        let cold = roundtrip(&service, &[submit_frame(&spec_with_seed(11))]);
        let (_, cold_summary, _) = done_frame(&cold);
        // The sentinel: a remote submission with no fleet configured can
        // only succeed if the memoized summary short-circuits before the
        // backend is resolved.
        let spec = JobSpec {
            backend: Some(BackendSpec::Remote),
            ..spec_with_seed(11)
        };
        let warm = roundtrip(&service, &[submit_frame(&spec)]);
        let (_, warm_summary, warm_stats) = done_frame(&warm);
        assert!(warm_stats.expect("cached service reports stats").all_hits());
        assert_eq!(cold_summary.to_json(), warm_summary.to_json());
        // refresh=true must bypass the memoized summary and fail on the
        // missing fleet — a forced re-run really re-runs.
        let refresh = JobSpec {
            refresh: Some(true),
            ..spec.clone()
        };
        let events = roundtrip(&service, &[submit_frame(&refresh)]);
        let Event::Error { message, .. } = &events[0] else {
            panic!("refresh must reach the backend, got {:?}", events[0]);
        };
        assert!(message.contains("no worker hosts"), "{message}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn draining_service_refuses_submissions_but_answers_status() {
        let service = service(None);
        service.begin_drain();
        let events = roundtrip(
            &service,
            &[
                submit_frame(&spec_with_seed(1)),
                serde_json::to_string(&Request::Status { job: None }).unwrap(),
            ],
        );
        let Event::Error { job: None, message } = &events[0] else {
            panic!("expected refusal, got {:?}", events[0]);
        };
        assert!(message.contains("shutting down"), "{message}");
        assert_eq!(events[1], Event::Jobs(Vec::new()));
        assert!(service.jobs_snapshot(None).is_empty());
    }

    #[test]
    fn shutdown_request_marks_the_service_stopped() {
        let service = service(None);
        let events = roundtrip(
            &service,
            &[serde_json::to_string(&Request::Shutdown).unwrap()],
        );
        assert_eq!(events, vec![Event::ShuttingDown]);
        assert!(service.stop_requested());
        assert!(service.is_draining());
    }

    #[test]
    fn disconnecting_mid_job_still_completes_and_caches_the_job() {
        let (cache, dir) = temp_cache("disconnect");
        let service = service(Some(cache));
        // A sink over a closed pipe: every write fails, as if the client
        // vanished right after submitting.
        let (client, server) = UnixStream::pair().unwrap();
        drop(client);
        let sink = EventSink::new(server);
        service.run_job(&spec_with_seed(3), &sink);
        assert!(sink.is_broken());
        // The job completed and warmed the shared cache anyway: a fresh
        // submission over a healthy connection is all hits.
        let rows = service.jobs_snapshot(Some(1));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].state, JobState::Done);
        let events = roundtrip(&service, &[submit_frame(&spec_with_seed(3))]);
        let (_, _, stats) = done_frame(&events);
        assert!(stats.unwrap().all_hits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_job_table_rejects_submissions_without_queueing() {
        // Pin a fake Running row so the admission bound (1) is already
        // met; a real submission must bounce with Rejected and leave no
        // trace in the table.
        let service = Service::new(
            registry(),
            ServiceConfig {
                max_active_jobs: 1,
                ..ServiceConfig::default()
            },
        );
        service.table.lock().unwrap().push(JobStatus {
            job: 99,
            state: JobState::Running,
            scenarios: vec!["s1".to_string()],
            parts_total: 3,
            parts_done: 0,
            cache: None,
        });
        let events = roundtrip(&service, &[submit_frame(&spec_with_seed(5))]);
        assert_eq!(events.len(), 1);
        let Event::Rejected { reason } = &events[0] else {
            panic!("expected Rejected, got {:?}", events[0]);
        };
        assert!(reason.contains("job queue is full"), "{reason}");
        assert_eq!(service.jobs_snapshot(None).len(), 1, "nothing was queued");
        // Freeing the slot lets the next submission through.
        service.table.lock().unwrap()[0].state = JobState::Done;
        let events = roundtrip(&service, &[submit_frame(&spec_with_seed(5))]);
        let (_, _, _) = done_frame(&events);
    }

    #[test]
    fn cancelled_job_drains_and_poisons_nothing() {
        /// A scenario whose first part cancels its own job — a
        /// deterministic stand-in for a second client connection sending
        /// `Cancel` while the job is mid-run (no timing race: the token
        /// is guaranteed set before the second single-item batch).
        struct CancelSelf {
            service: std::sync::Weak<Service>,
        }
        impl Scenario for CancelSelf {
            fn id(&self) -> &str {
                "cancel-self"
            }
            fn title(&self) -> &str {
                "self-cancelling scenario"
            }
            fn parts(&self, _params: &ScenarioParams) -> usize {
                5
            }
            fn run_part(
                &self,
                part: usize,
                _params: &ScenarioParams,
                rng: &mut StdRng,
            ) -> Vec<ExperimentReport> {
                if part == 0 {
                    if let Some(service) = self.service.upgrade() {
                        // Ignored Err: on the *resubmission* below job 1
                        // is already gone, which is exactly the point.
                        let _ = service.cancel_job(1);
                    }
                }
                let mut r = ExperimentReport::new("cancel-self", "toy", "part", "value");
                r.push_series(Series::new(
                    "trace",
                    vec![part as f64],
                    vec![rng.gen_range(0.0f64..1.0)],
                ));
                vec![r]
            }
        }

        let (cache, dir) = temp_cache("cancel");
        let service = Arc::new_cyclic(|weak: &std::sync::Weak<Service>| {
            let mut registry = ScenarioRegistry::new();
            registry.register(CancelSelf {
                service: weak.clone(),
            });
            Service::new(
                registry,
                ServiceConfig {
                    jobs: 1,
                    cache: Some(cache),
                    ..ServiceConfig::default()
                },
            )
        });
        // jobs=1 → 5 single-item batches with a token check between each:
        // part 0 trips the token, the check before batch 2 drains.
        let events = roundtrip(&service, &[submit_frame(&spec_with_seed(13))]);
        assert_eq!(
            events.last(),
            Some(&Event::Cancelled { job: 1 }),
            "the submitter's final frame is Cancelled: {events:?}"
        );
        let rows = service.jobs_snapshot(Some(1));
        assert_eq!(rows[0].state, JobState::Cancelled);
        // Nothing from the cancelled job reached the shared cache — not
        // even the part that *did* complete before the cancel: the same
        // spec resubmitted misses everywhere.
        let redo = roundtrip(&service, &[submit_frame(&spec_with_seed(13))]);
        let (_, _, stats) = done_frame(&redo);
        let stats = stats.unwrap();
        assert_eq!(stats.hits, 0, "a cancelled job must not warm the cache");
        assert_eq!(stats.misses, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelling_unknown_or_finished_jobs_answers_an_error() {
        let service = service(None);
        let done = roundtrip(&service, &[submit_frame(&spec_with_seed(2))]);
        let (job, _, _) = done_frame(&done);
        let events = roundtrip(
            &service,
            &[
                serde_json::to_string(&Request::Cancel { job }).unwrap(),
                serde_json::to_string(&Request::Cancel { job: 77 }).unwrap(),
            ],
        );
        let Event::Error {
            job: Some(1),
            message,
        } = &events[0]
        else {
            panic!(
                "expected an Error for the finished job, got {:?}",
                events[0]
            );
        };
        assert!(message.contains("not running"), "{message}");
        let Event::Error {
            job: Some(77),
            message,
        } = &events[1]
        else {
            panic!("expected an Error for the unknown job, got {:?}", events[1]);
        };
        assert!(message.contains("unknown job"), "{message}");
    }

    #[test]
    fn scenario_infos_expose_ids_parts_and_override_keys() {
        let service = service(None);
        let infos = service.scenario_infos();
        assert_eq!(
            infos,
            vec![
                ScenarioInfo {
                    id: "s1".to_string(),
                    title: "toy service scenario".to_string(),
                    parts: 3,
                    override_keys: Some(vec!["offset".to_string()]),
                },
                ScenarioInfo {
                    id: "s2".to_string(),
                    title: "toy service scenario".to_string(),
                    parts: 2,
                    override_keys: Some(vec!["offset".to_string()]),
                },
            ]
        );
        assert_eq!(summary_parts(&[]), 0);
    }

    #[test]
    fn job_spec_defaults_reproduce_the_cli_defaults() {
        let params = JobSpec::all().params();
        assert_eq!(params, ScenarioParams::default());
        let spec = JobSpec {
            seed: Some(9),
            full_scale: Some(true),
            overrides: Some(
                [("offset".to_string(), "1.5".to_string())]
                    .into_iter()
                    .collect(),
            ),
            ..JobSpec::default()
        };
        let params = spec.params();
        assert_eq!(params.seed, 9);
        assert!(params.full_scale);
        assert_eq!(params.override_str("offset"), Some("1.5"));
        assert_eq!(spec.selector(), Vec::<String>::new());
    }

    #[test]
    fn frame_reader_survives_timeouts_and_split_lines() {
        // A reader that yields a line in fragments with timeouts between
        // them — the shape a socket with a read timeout produces.
        struct Choppy {
            steps: std::collections::VecDeque<Result<Vec<u8>, io::ErrorKind>>,
        }
        impl Read for Choppy {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                match self.steps.pop_front() {
                    None => Ok(0),
                    Some(Err(kind)) => Err(io::Error::new(kind, "injected")),
                    Some(Ok(bytes)) => {
                        buf[..bytes.len()].copy_from_slice(&bytes);
                        Ok(bytes.len())
                    }
                }
            }
        }
        let mut reader = FrameReader::new(Choppy {
            steps: [
                Ok(b"{\"half".to_vec()),
                Err(io::ErrorKind::WouldBlock),
                Err(io::ErrorKind::TimedOut),
                Ok(b"\":1}\r\nsecond".to_vec()),
                Err(io::ErrorKind::Interrupted),
                Ok(b" line\n".to_vec()),
                Ok(b"tail".to_vec()),
            ]
            .into_iter()
            .collect(),
        });
        assert_eq!(reader.read_frame().unwrap(), Frame::Idle);
        assert_eq!(reader.read_frame().unwrap(), Frame::Idle);
        assert_eq!(
            reader.read_frame().unwrap(),
            Frame::Line("{\"half\":1}".to_string()),
            "partial bytes survive timeouts; CRLF is stripped"
        );
        assert_eq!(
            reader.read_frame().unwrap(),
            Frame::Line("second line".to_string())
        );
        assert_eq!(
            reader.read_frame().unwrap(),
            Frame::Line("tail".to_string()),
            "a final unterminated line is delivered"
        );
        assert_eq!(reader.read_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn concurrent_clients_share_the_cache_and_agree_byte_for_byte() {
        let (cache, dir) = temp_cache("concurrent");
        let service = service(Some(cache));
        let (left, right) = std::thread::scope(|scope| {
            let left = scope.spawn(|| roundtrip(&service, &[submit_frame(&spec_with_seed(21))]));
            let right = scope.spawn(|| roundtrip(&service, &[submit_frame(&spec_with_seed(21))]));
            (left.join().unwrap(), right.join().unwrap())
        });
        let (_, left_summary, _) = done_frame(&left);
        let (_, right_summary, _) = done_frame(&right);
        assert_eq!(left_summary.to_json(), right_summary.to_json());
        let one_shot = Runner::new(ScenarioParams::with_seed(21)).run(&scenarios());
        assert_eq!(left_summary.to_json(), one_shot.to_json());
        // Both jobs are on the table with distinct ids.
        let mut ids: Vec<u64> = service.jobs_snapshot(None).iter().map(|r| r.job).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
