//! Takedown scenarios: the experiments behind Figures 4, 5 and 6.
//!
//! * [`gradual_takedown`] removes nodes one at a time (giving the overlay
//!   time to self-repair between removals) and samples graph metrics along
//!   the way — Figures 4 and 5.
//! * [`partition_threshold`] removes nodes *simultaneously* (no repair in
//!   between) until the graph partitions — Figure 6, which finds the
//!   threshold around 40% for 10-regular graphs.

use onion_graph::components::component_count;
use onion_graph::csr::CsrSnapshot;
use onion_graph::graph::NodeId;
use onion_graph::metrics::{
    average_degree_centrality, sampled_average_closeness_centrality_csr, sampled_diameter_csr,
};
use onionbots_core::overlay::DdsrOverlay;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Whether the overlay repairs itself after each removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TakedownMode {
    /// DDSR: repair (and prune, per the overlay config) after every removal.
    SelfRepairing,
    /// Normal graph: removals only.
    Normal,
}

/// One sampled point of a takedown experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TakedownSample {
    /// Nodes deleted so far.
    pub nodes_deleted: usize,
    /// Live nodes remaining.
    pub nodes_remaining: usize,
    /// Number of connected components.
    pub connected_components: usize,
    /// Average degree centrality.
    pub degree_centrality: f64,
    /// Average closeness centrality (sampled estimate).
    pub closeness_centrality: f64,
    /// Diameter of the largest component (sampled estimate); `None` when the
    /// graph is empty.
    pub diameter: Option<usize>,
}

/// Parameters controlling how a gradual takedown is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TakedownParams {
    /// Total nodes to delete.
    pub deletions: usize,
    /// Take a metric sample every `sample_every` deletions (and at the end).
    pub sample_every: usize,
    /// BFS sources used for the sampled closeness/diameter estimates.
    pub metric_samples: usize,
}

/// Runs a gradual takedown: nodes are removed one at a time in random order,
/// with (or without) self-repair, sampling metrics along the way.
pub fn gradual_takedown<R: Rng + ?Sized>(
    overlay: &mut DdsrOverlay,
    ids: &[NodeId],
    mode: TakedownMode,
    params: TakedownParams,
    rng: &mut R,
) -> Vec<TakedownSample> {
    let mut order: Vec<NodeId> = ids.to_vec();
    order.shuffle(rng);
    let deletions = params.deletions.min(order.len());
    let mut samples = Vec::new();
    samples.push(sample(overlay, 0, params.metric_samples, rng));
    for (i, node) in order.into_iter().take(deletions).enumerate() {
        match mode {
            TakedownMode::SelfRepairing => {
                overlay.remove_node_with_repair(node, rng);
            }
            TakedownMode::Normal => {
                overlay.remove_node_without_repair(node);
            }
        }
        let deleted = i + 1;
        if deleted % params.sample_every.max(1) == 0 || deleted == deletions {
            samples.push(sample(overlay, deleted, params.metric_samples, rng));
        }
    }
    samples
}

fn sample<R: Rng + ?Sized>(
    overlay: &DdsrOverlay,
    nodes_deleted: usize,
    metric_samples: usize,
    rng: &mut R,
) -> TakedownSample {
    let graph = overlay.graph();
    // One frozen snapshot serves the component scan and both sampled
    // sweeps — the graph does not change between them, so freezing it
    // more than once would be pure overhead.
    let csr = CsrSnapshot::build(graph);
    TakedownSample {
        nodes_deleted,
        nodes_remaining: graph.node_count(),
        connected_components: component_count(&csr),
        degree_centrality: average_degree_centrality(graph),
        closeness_centrality: sampled_average_closeness_centrality_csr(&csr, metric_samples, rng),
        diameter: sampled_diameter_csr(&csr, metric_samples, rng),
    }
}

/// Result of a partition-threshold experiment (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionThreshold {
    /// Graph size the experiment started from.
    pub initial_nodes: usize,
    /// Node degree of the initial k-regular graph.
    pub degree: usize,
    /// Number of simultaneous deletions at which the surviving graph first
    /// split into more than one component.
    pub deletions_to_partition: usize,
}

impl PartitionThreshold {
    /// Deletions needed as a fraction of the initial size.
    pub fn fraction(&self) -> f64 {
        self.deletions_to_partition as f64 / self.initial_nodes as f64
    }
}

/// Finds how many *simultaneous* deletions are needed to partition a fresh
/// `k`-regular graph of `n` nodes: nodes are removed in random order without
/// giving the overlay a chance to repair, checking connectivity every
/// `check_every` removals.
pub fn partition_threshold<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    check_every: usize,
    rng: &mut R,
) -> PartitionThreshold {
    let (graph, mut ids) = onion_graph::generators::random_regular(n, k, rng);
    let mut graph = graph;
    ids.shuffle(rng);
    let mut deleted = 0usize;
    for node in ids {
        graph.remove_node(node);
        deleted += 1;
        if graph.node_count() == 0 {
            break;
        }
        if deleted.is_multiple_of(check_every.max(1)) && component_count(&graph) > 1 {
            break;
        }
    }
    PartitionThreshold {
        initial_nodes: n,
        degree: k,
        deletions_to_partition: deleted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onionbots_core::DdsrConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(deletions: usize) -> TakedownParams {
        TakedownParams {
            deletions,
            sample_every: 20,
            metric_samples: 40,
        }
    }

    #[test]
    fn gradual_takedown_keeps_ddsr_connected_and_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut overlay, ids) =
            DdsrOverlay::new_regular(300, 10, DdsrConfig::for_degree(10), &mut rng);
        let samples = gradual_takedown(
            &mut overlay,
            &ids,
            TakedownMode::SelfRepairing,
            params(200),
            &mut rng,
        );
        assert!(samples.len() >= 2);
        let last = samples.last().unwrap();
        assert_eq!(last.nodes_deleted, 200);
        assert_eq!(last.nodes_remaining, 100);
        assert_eq!(last.connected_components, 1, "DDSR stays connected");
        // Degree centrality stays bounded by d_max/(n-1).
        assert!(last.degree_centrality <= 10.0 / 99.0 + 1e-9);
        // Closeness does not collapse (paper: it stays stable or grows).
        assert!(last.closeness_centrality >= samples[0].closeness_centrality * 0.8);
    }

    #[test]
    fn gradual_takedown_without_repair_fragments() {
        let mut rng = StdRng::seed_from_u64(2);
        let (mut overlay, ids) =
            DdsrOverlay::new_regular(300, 10, DdsrConfig::for_degree(10), &mut rng);
        let samples = gradual_takedown(
            &mut overlay,
            &ids,
            TakedownMode::Normal,
            params(240),
            &mut rng,
        );
        let last = samples.last().unwrap();
        assert!(
            last.connected_components > 1,
            "a normal 10-regular graph shatters after 80% deletions (got {} components)",
            last.connected_components
        );
    }

    #[test]
    fn samples_are_taken_at_the_requested_cadence() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut overlay, ids) =
            DdsrOverlay::new_regular(100, 6, DdsrConfig::for_degree(6), &mut rng);
        let samples = gradual_takedown(
            &mut overlay,
            &ids,
            TakedownMode::SelfRepairing,
            TakedownParams {
                deletions: 50,
                sample_every: 10,
                metric_samples: 20,
            },
            &mut rng,
        );
        // Initial sample + one every 10 deletions.
        assert_eq!(samples.len(), 6);
        assert_eq!(samples[1].nodes_deleted, 10);
        assert_eq!(samples[5].nodes_deleted, 50);
    }

    #[test]
    fn partition_threshold_is_around_forty_percent_for_ten_regular() {
        let mut rng = StdRng::seed_from_u64(4);
        let threshold = partition_threshold(600, 10, 10, &mut rng);
        let fraction = threshold.fraction();
        assert!(
            (0.2..0.95).contains(&fraction),
            "partition fraction {fraction} outside plausible range"
        );
        assert!(threshold.deletions_to_partition > 0);
        assert_eq!(threshold.initial_nodes, 600);
    }

    #[test]
    fn partition_threshold_grows_with_degree() {
        let mut rng = StdRng::seed_from_u64(5);
        let sparse = partition_threshold(400, 4, 5, &mut rng);
        let dense = partition_threshold(400, 12, 5, &mut rng);
        assert!(
            dense.deletions_to_partition >= sparse.deletions_to_partition,
            "denser graphs need more deletions to partition ({} vs {})",
            dense.deletions_to_partition,
            sparse.deletions_to_partition
        );
    }
}
