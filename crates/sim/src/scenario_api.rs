//! The first-class scenario API: [`Scenario`], [`ScenarioParams`] and
//! [`ScenarioRegistry`].
//!
//! Every paper figure/table/ablation is a [`Scenario`]: a named, seeded,
//! parameterized experiment producing [`ExperimentReport`]s. Scenarios are
//! split into independent **parts** (e.g. the `k = 5/10/15` series of
//! Figure 4) so the [`Runner`](crate::runner::Runner) can fan them across
//! worker threads; each part draws its RNG from a seed derived from
//! `(params.seed, scenario id, part index)`, which makes results identical
//! whether parts run sequentially, in parallel, or interleaved with other
//! scenarios.
//!
//! ```
//! use rand::rngs::StdRng;
//! use sim::experiment::{ExperimentReport, Series};
//! use sim::scenario_api::{Scenario, ScenarioParams, ScenarioRegistry};
//!
//! struct Doubler;
//!
//! impl Scenario for Doubler {
//!     fn id(&self) -> &str { "doubler" }
//!     fn title(&self) -> &str { "Toy scenario" }
//!     fn run_part(&self, part: usize, _p: &ScenarioParams, _rng: &mut StdRng)
//!         -> Vec<ExperimentReport>
//!     {
//!         let mut r = ExperimentReport::new("doubler", "Toy scenario", "x", "y");
//!         r.push_series(Series::new("2x", vec![part as f64], vec![part as f64 * 2.0]));
//!         vec![r]
//!     }
//!     fn parts(&self, _p: &ScenarioParams) -> usize { 3 }
//! }
//!
//! let mut registry = ScenarioRegistry::new();
//! registry.register(Doubler);
//! let scenario = registry.get("doubler").unwrap();
//! let reports = scenario.run(&ScenarioParams::default());
//! assert_eq!(reports[0].series[0].x, vec![0.0, 1.0, 2.0]);
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::experiment::ExperimentReport;

/// Serializable knobs shared by every scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioParams {
    /// Run at the paper's full population instead of the scaled-down quick
    /// mode (bench crates map this onto their `Scale`).
    pub full_scale: bool,
    /// Base seed; per-part RNGs derive from it via [`part_seed`].
    pub seed: u64,
    /// Scenario-specific knob overrides (`key=value`), populated from
    /// repeated `--set KEY=VALUE` CLI flags. Scenarios read them through
    /// the typed accessors ([`override_usize`](Self::override_usize) and
    /// friends) and declare the keys they consume via
    /// [`Scenario::override_keys`] so the result cache can fingerprint
    /// exactly the overrides that affect each part.
    pub overrides: BTreeMap<String, String>,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            full_scale: false,
            seed: 2015, // the paper's year; any fixed default works
            overrides: BTreeMap::new(),
        }
    }
}

impl ScenarioParams {
    /// Quick-scale params with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        ScenarioParams {
            seed,
            ..ScenarioParams::default()
        }
    }

    /// Builder-style insertion of one override (last write wins).
    #[must_use]
    pub fn with_override(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.overrides.insert(key.into(), value.into());
        self
    }

    /// Raw override lookup.
    pub fn override_str(&self, key: &str) -> Option<&str> {
        self.overrides.get(key).map(String::as_str)
    }

    /// An override parsed as `usize`, or `default` when the key is absent.
    ///
    /// # Panics
    /// Panics when the override is present but not a valid `usize` — a
    /// mistyped `--set` value must fail loudly, not silently fall back.
    pub fn override_usize(&self, key: &str, default: usize) -> usize {
        self.override_usize_opt(key).unwrap_or(default)
    }

    /// An override parsed as `usize`, or `None` when the key is absent —
    /// for scenarios where mere *presence* of a key changes behavior
    /// (e.g. `scale`'s `n` collapsing the population sweep to one part).
    ///
    /// # Panics
    /// Panics when the override is present but unparseable, like
    /// [`override_usize`](Self::override_usize).
    pub fn override_usize_opt(&self, key: &str) -> Option<usize> {
        self.override_opt(key)
    }

    /// An override parsed as `u64`, or `default` when the key is absent.
    ///
    /// # Panics
    /// Panics when the override is present but unparseable, like
    /// [`override_usize`](Self::override_usize).
    pub fn override_u64(&self, key: &str, default: u64) -> u64 {
        self.override_u64_opt(key).unwrap_or(default)
    }

    /// An override parsed as `u64`, or `None` when the key is absent —
    /// the presence-sensitive sibling of
    /// [`override_u64`](Self::override_u64).
    ///
    /// # Panics
    /// Panics when the override is present but unparseable, like
    /// [`override_usize`](Self::override_usize).
    pub fn override_u64_opt(&self, key: &str) -> Option<u64> {
        self.override_opt(key)
    }

    /// An override parsed as `f64`, or `default` when the key is absent.
    ///
    /// # Panics
    /// Panics when the override is present but unparseable, like
    /// [`override_usize`](Self::override_usize).
    pub fn override_f64(&self, key: &str, default: f64) -> f64 {
        self.override_f64_opt(key).unwrap_or(default)
    }

    /// An override parsed as `f64`, or `None` when the key is absent —
    /// the presence-sensitive sibling of
    /// [`override_f64`](Self::override_f64).
    ///
    /// # Panics
    /// Panics when the override is present but unparseable, like
    /// [`override_usize`](Self::override_usize).
    pub fn override_f64_opt(&self, key: &str) -> Option<f64> {
        self.override_opt(key)
    }

    /// The primitive every typed accessor routes through: present keys
    /// parse (or panic loudly), absent keys are `None`.
    fn override_opt<T>(&self, key: &str) -> Option<T>
    where
        T: std::str::FromStr,
        T::Err: std::fmt::Display,
    {
        self.overrides.get(key).map(|raw| {
            raw.parse().unwrap_or_else(|e| {
                panic!(
                    "override '{key}={raw}' is not a valid {}: {e}",
                    std::any::type_name::<T>()
                )
            })
        })
    }
}

/// Parses one `KEY=VALUE` override (the argument of a `--set` flag).
///
/// The key must be non-empty and the first `=` separates key from value, so
/// values may themselves contain `=`.
///
/// # Errors
/// Returns a human-readable message when the `=` or the key is missing.
pub fn parse_override(spec: &str) -> Result<(String, String), String> {
    let Some((key, value)) = spec.split_once('=') else {
        return Err(format!("override '{spec}' is not of the form KEY=VALUE"));
    };
    let key = key.trim();
    if key.is_empty() {
        return Err(format!("override '{spec}' has an empty key"));
    }
    Ok((key.to_string(), value.trim().to_string()))
}

/// Derives the deterministic seed for one part of one scenario.
///
/// FNV-1a over the scenario id, mixed with the base seed and part index;
/// the same `(seed, id, part)` triple always yields the same stream no
/// matter which worker thread runs it.
pub fn part_seed(base_seed: u64, scenario_id: &str, part: usize) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in scenario_id.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash ^= base_seed.rotate_left(17);
    hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    hash ^= part as u64;
    hash.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A named, seeded, parameterized experiment.
///
/// Implementations provide [`run_part`](Scenario::run_part); the provided
/// [`run`](Scenario::run) method executes all parts sequentially with the
/// same per-part seeds the parallel [`Runner`](crate::runner::Runner)
/// uses, so both paths produce identical reports.
pub trait Scenario: Send + Sync {
    /// Stable identifier (e.g. `"fig4"`), used by `--only` selection and
    /// output file names.
    fn id(&self) -> &str;

    /// Human-readable title.
    fn title(&self) -> &str;

    /// The parameters this scenario is normally run with.
    fn default_params(&self) -> ScenarioParams {
        ScenarioParams::default()
    }

    /// The override keys this scenario consumes, if it knows them.
    ///
    /// `Some(keys)` lets the result cache fingerprint only the overrides
    /// that can actually change this scenario's output, so an unrelated
    /// `--set` does not invalidate its cached parts. The default `None`
    /// means "unknown — fingerprint every override", which is always
    /// correct, just conservative.
    fn override_keys(&self) -> Option<Vec<&str>> {
        None
    }

    /// Number of independently runnable parts under `params`. Parts must
    /// not share mutable state; their reports are merged in part order.
    fn parts(&self, params: &ScenarioParams) -> usize {
        let _ = params;
        1
    }

    /// Runs one part with a part-specific RNG, returning (possibly
    /// partial) reports. Reports from different parts that share an id are
    /// merged by [`merge_reports`]; series that share a label are
    /// concatenated point-wise.
    fn run_part(
        &self,
        part: usize,
        params: &ScenarioParams,
        rng: &mut StdRng,
    ) -> Vec<ExperimentReport>;

    /// Runs every part sequentially and merges the reports — the
    /// single-threaded entry point used by the thin figure binaries.
    fn run(&self, params: &ScenarioParams) -> Vec<ExperimentReport> {
        let mut merged = Vec::new();
        for part in 0..self.parts(params) {
            let mut rng = StdRng::seed_from_u64(part_seed(params.seed, self.id(), part));
            merge_reports(&mut merged, self.run_part(part, params, &mut rng));
        }
        merged
    }
}

/// Merges `incoming` reports into `acc`: reports with a known id merge
/// into the existing report (series with a known label are concatenated,
/// new labels are appended, notes accumulate); new ids are appended.
pub fn merge_reports(acc: &mut Vec<ExperimentReport>, incoming: Vec<ExperimentReport>) {
    for report in incoming {
        match acc.iter_mut().find(|r| r.id == report.id) {
            None => acc.push(report),
            Some(existing) => {
                for series in report.series {
                    match existing.series.iter_mut().find(|s| s.label == series.label) {
                        None => existing.series.push(series),
                        Some(target) => {
                            target.x.extend(series.x);
                            target.y.extend(series.y);
                        }
                    }
                }
                existing.notes.extend(report.notes);
            }
        }
    }
}

/// Error returned when `--only` names a scenario the registry doesn't
/// know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScenario {
    /// The id that failed to resolve.
    pub requested: String,
    /// Every registered id, for the error message.
    pub known: Vec<String>,
}

impl std::fmt::Display for UnknownScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scenario '{}'; known scenarios: {}",
            self.requested,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownScenario {}

/// An ordered collection of registered scenarios.
#[derive(Default, Clone)]
pub struct ScenarioRegistry {
    scenarios: Vec<Arc<dyn Scenario>>,
}

impl ScenarioRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// Registers a scenario, preserving insertion order.
    ///
    /// # Panics
    /// Panics if a scenario with the same id is already registered —
    /// duplicate registration is a programming error, not a runtime
    /// condition.
    pub fn register(&mut self, scenario: impl Scenario + 'static) -> &mut Self {
        self.register_arc(Arc::new(scenario))
    }

    /// Registers an already shared scenario.
    ///
    /// # Panics
    /// Panics on duplicate ids, like [`register`](Self::register).
    pub fn register_arc(&mut self, scenario: Arc<dyn Scenario>) -> &mut Self {
        assert!(
            self.get(scenario.id()).is_none(),
            "scenario '{}' registered twice",
            scenario.id()
        );
        self.scenarios.push(scenario);
        self
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Registered ids in registration order.
    pub fn ids(&self) -> Vec<&str> {
        self.scenarios.iter().map(|s| s.id()).collect()
    }

    /// Iterates over the registered scenarios in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn Scenario>> {
        self.scenarios.iter()
    }

    /// Looks a scenario up by id.
    pub fn get(&self, id: &str) -> Option<Arc<dyn Scenario>> {
        self.scenarios.iter().find(|s| s.id() == id).cloned()
    }

    /// Resolves a selection: an empty `only` list selects everything;
    /// otherwise each id must exist.
    ///
    /// # Errors
    /// Returns [`UnknownScenario`] for the first id that does not resolve.
    pub fn select(&self, only: &[String]) -> Result<Vec<Arc<dyn Scenario>>, UnknownScenario> {
        if only.is_empty() {
            return Ok(self.scenarios.clone());
        }
        only.iter()
            .map(|id| {
                self.get(id).ok_or_else(|| UnknownScenario {
                    requested: id.clone(),
                    known: self.ids().iter().map(|s| s.to_string()).collect(),
                })
            })
            .collect()
    }
}

impl std::fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRegistry")
            .field("ids", &self.ids())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Series;

    struct Toy {
        id: &'static str,
        parts: usize,
    }

    impl Scenario for Toy {
        fn id(&self) -> &str {
            self.id
        }
        fn title(&self) -> &str {
            "toy"
        }
        fn parts(&self, _params: &ScenarioParams) -> usize {
            self.parts
        }
        fn run_part(
            &self,
            part: usize,
            _params: &ScenarioParams,
            rng: &mut StdRng,
        ) -> Vec<ExperimentReport> {
            use rand::Rng;
            let mut r = ExperimentReport::new(self.id, "toy", "x", "y");
            r.push_series(Series::new(
                "samples",
                vec![part as f64],
                vec![rng.gen_range(0.0f64..1.0)],
            ));
            r.push_note(format!("part {part}"));
            vec![r]
        }
    }

    #[test]
    fn part_seeds_are_distinct_per_scenario_and_part() {
        let a = part_seed(1, "fig4", 0);
        let b = part_seed(1, "fig4", 1);
        let c = part_seed(1, "fig5", 0);
        let d = part_seed(2, "fig4", 0);
        assert!(a != b && a != c && a != d && b != c);
        assert_eq!(a, part_seed(1, "fig4", 0));
    }

    #[test]
    fn run_merges_parts_in_order_with_derived_seeds() {
        let toy = Toy {
            id: "toy",
            parts: 3,
        };
        let params = ScenarioParams::default();
        let reports = toy.run(&params);
        assert_eq!(reports.len(), 1);
        let series = &reports[0].series[0];
        assert_eq!(series.x, vec![0.0, 1.0, 2.0]);
        assert_eq!(reports[0].notes, vec!["part 0", "part 1", "part 2"]);
        // Re-running yields the identical report (deterministic seeds).
        assert_eq!(toy.run(&params), reports);
    }

    #[test]
    fn merge_reports_appends_unknown_labels_and_ids() {
        let mut acc = vec![];
        let mut a = ExperimentReport::new("r1", "t", "x", "y");
        a.push_series(Series::new("s1", vec![0.0], vec![1.0]));
        merge_reports(&mut acc, vec![a]);
        let mut b = ExperimentReport::new("r1", "t", "x", "y");
        b.push_series(Series::new("s1", vec![1.0], vec![2.0]));
        b.push_series(Series::new("s2", vec![0.0], vec![9.0]));
        let c = ExperimentReport::new("r2", "t2", "x", "y");
        merge_reports(&mut acc, vec![b, c]);
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0].series.len(), 2);
        assert_eq!(acc[0].series[0].x, vec![0.0, 1.0]);
        assert_eq!(acc[0].series[0].y, vec![1.0, 2.0]);
        assert_eq!(acc[1].id, "r2");
    }

    #[test]
    fn registry_lookup_selection_and_errors() {
        let mut reg = ScenarioRegistry::new();
        reg.register(Toy { id: "a", parts: 1 })
            .register(Toy { id: "b", parts: 1 });
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.ids(), vec!["a", "b"]);
        assert!(reg.get("a").is_some());
        assert!(reg.get("zzz").is_none());
        assert_eq!(reg.select(&[]).unwrap().len(), 2);
        let picked = reg.select(&["b".to_string()]).unwrap();
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].id(), "b");
        let Err(err) = reg.select(&["nope".to_string()]) else {
            panic!("unknown id must not resolve");
        };
        assert_eq!(err.requested, "nope");
        assert!(err.to_string().contains("known scenarios: a, b"));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = ScenarioRegistry::new();
        reg.register(Toy { id: "a", parts: 1 })
            .register(Toy { id: "a", parts: 1 });
    }

    #[test]
    fn parse_override_splits_on_first_equals() {
        assert_eq!(
            parse_override("n=500").unwrap(),
            ("n".to_string(), "500".to_string())
        );
        assert_eq!(
            parse_override("filter=a=b").unwrap(),
            ("filter".to_string(), "a=b".to_string())
        );
        assert_eq!(
            parse_override(" k = 10 ").unwrap(),
            ("k".to_string(), "10".to_string())
        );
        assert_eq!(
            parse_override("empty=").unwrap(),
            ("empty".to_string(), String::new())
        );
        assert!(parse_override("no-equals").is_err());
        assert!(parse_override("=value").is_err());
    }

    #[test]
    fn typed_override_accessors_fall_back_to_defaults() {
        let params = ScenarioParams::default()
            .with_override("n", "500")
            .with_override("rate", "0.25");
        assert_eq!(params.override_usize("n", 9), 500);
        assert_eq!(params.override_usize("missing", 9), 9);
        assert_eq!(params.override_usize_opt("n"), Some(500));
        assert_eq!(params.override_usize_opt("missing"), None);
        assert_eq!(params.override_u64("n", 9), 500);
        assert!((params.override_f64("rate", 0.0) - 0.25).abs() < 1e-12);
        assert_eq!(params.override_str("n"), Some("500"));
        assert_eq!(params.override_str("missing"), None);
    }

    #[test]
    fn presence_sensitive_accessors_cover_every_numeric_type() {
        let params = ScenarioParams::default()
            .with_override("n", "500")
            .with_override("rate", "0.25");
        assert_eq!(params.override_u64_opt("n"), Some(500));
        assert_eq!(params.override_u64_opt("missing"), None);
        assert!((params.override_f64_opt("rate").unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(params.override_f64_opt("missing"), None);
        // An integer-typed value reads as f64 too (parse, not format).
        assert!((params.override_f64_opt("n").unwrap() - 500.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a valid")]
    fn malformed_u64_opt_override_panics_instead_of_none() {
        // Presence-sensitive accessors must not turn a typo into "absent".
        let params = ScenarioParams::default().with_override("n", "5x0");
        params.override_u64_opt("n");
    }

    #[test]
    #[should_panic(expected = "not a valid")]
    fn malformed_f64_opt_override_panics_instead_of_none() {
        let params = ScenarioParams::default().with_override("rate", "fast");
        params.override_f64_opt("rate");
    }

    #[test]
    #[should_panic(expected = "not a valid")]
    fn malformed_override_value_panics_instead_of_defaulting() {
        let params = ScenarioParams::default().with_override("n", "lots");
        params.override_usize("n", 1);
    }

    #[test]
    fn override_keys_default_to_unknown() {
        assert_eq!(Toy { id: "a", parts: 1 }.override_keys(), None);
    }
}
