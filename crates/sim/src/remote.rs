//! Multi-host distributed backend: TCP work-stealing fleet dispatch.
//!
//! [`RemoteExecutor`] fans the same serializable [`WorkItem`]s the
//! process backend pins out to a fleet of worker *hosts* over TCP. The
//! wire format is one JSON frame per line, and the payload frames embed
//! the exact [`WorkItem`]/[`PartResult`] objects `serve_work_items`
//! already speaks — a worker host is a `ProcessExecutor` worker with a
//! socket where the pipe used to be, plus a one-line version handshake:
//!
//! | direction | frame | meaning |
//! |---|---|---|
//! | dispatcher → host | `Hello { protocol }` | open a work channel |
//! | host → dispatcher | `Welcome { protocol }` | versions match, send work |
//! | host → dispatcher | `Reject { reason }` | refused (version skew, …) |
//! | dispatcher → host | `Assign(WorkItem)` | execute one item |
//! | host → dispatcher | `Completed(PartResult)` | the item's result |
//!
//! Dispatch is **work-stealing**: one dispatcher-side thread per
//! configured host pulls items off a shared pending queue, so a slow
//! host never stalls the run — it just steals fewer items. Host loss
//! follows the `ProcessExecutor` semantics exactly: the in-flight item
//! is re-queued for the surviving hosts, deaths of *fresh* connections
//! (no completed items) charge the item's bounded retry budget, and a
//! run fails instead of looping when an item keeps killing fresh
//! connections or when every host is gone with work still queued.
//! Results dedup on the item **fingerprint** — a re-queued item can
//! never be double-merged even if a half-dead host answered it late.
//!
//! Determinism is inherited, not re-argued: hosts compute parts with
//! [`run_work_item`] (per-part seed, `threads` budget scoped around the
//! part), the cache pass sits above the backend, and the `Runner`
//! reassembles results in `(scenario, part)` order — so `RunSummary` is
//! byte-identical to `--backend local` at any host count, including
//! under mid-run host kills.
//!
//! **No call here can block forever.** Connections are opened with
//! [`TcpStream::connect_timeout`], every read carries a socket read
//! timeout of [`REMOTE_READ_POLL_MS`], and each reply is bounded by a
//! per-item deadline enforced by *counting* timeout polls (never by
//! reading a wall clock — detlint rule D002). A host that accepts TCP
//! but never replies — during the handshake or mid-item — is abandoned
//! after the deadline and its item re-queued on the surviving hosts;
//! retried items back off with a bounded exponential pause whose jitter
//! derives deterministically from the item fingerprint (no ambient
//! randomness). The `remote.connect`/`remote.read` failpoints
//! ([`crate::faults`]) sit on the dispatcher side and
//! `remote.host.item` on the host side, so chaos schedules can rehearse
//! every one of these failure shapes on demand.

use std::collections::{BTreeSet, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::faults;

use crate::executor::{
    run_work_item, ExecutionObserver, Executor, ExecutorError, PartResult, WorkItem,
    DEFAULT_MAX_ITEM_RETRIES,
};
use crate::scenario_api::Scenario;

/// Version of the dispatcher↔host wire protocol. Part of the handshake:
/// a host refuses a dispatcher whose version differs, which fails the
/// run up front instead of corrupting it halfway through.
pub const REMOTE_PROTOCOL_VERSION: u32 = 1;

/// How long one connection attempt to a worker host may take before the
/// host counts as unreachable.
pub const REMOTE_CONNECT_TIMEOUT_MS: u64 = 5_000;

/// Socket read timeout bounding every blocking read on a host channel.
/// Reads poll at this granularity while waiting out the per-reply
/// deadline, so the deadline is enforced by counting polls instead of
/// reading a wall clock.
pub const REMOTE_READ_POLL_MS: u64 = 200;

/// Default per-reply deadline: a host that has not answered an
/// assignment (or the handshake) within this budget is abandoned and
/// its in-flight item re-queued on the surviving hosts. Deliberately
/// generous — a deadline shorter than the slowest legitimate item would
/// turn a healthy fleet into serial re-queueing; tune it down per run
/// with [`RemoteExecutor::deadline_millis`] (`--remote-deadline-ms`).
pub const DEFAULT_REMOTE_DEADLINE_MS: u64 = 60_000;

/// Ceiling on one retry-backoff pause, so retries stay exponential only
/// up to a bounded, test-friendly cap.
const BACKOFF_CAP_MS: u64 = 500;

/// How long a retried item's dispatcher thread pauses before re-queueing
/// it: bounded exponential in the charged retry count, with jitter
/// folded in deterministically from the item's fingerprint bytes (two
/// colliding items desynchronize without any ambient randomness).
fn retry_backoff_millis(fingerprint: &str, retries: usize) -> u64 {
    let base = 10u64.saturating_mul(1 << retries.min(5) as u32);
    let jitter = fingerprint.bytes().fold(0u64, |acc, b| {
        acc.wrapping_mul(31).wrapping_add(u64::from(b))
    }) % base.max(1);
    (base + jitter).min(BACKOFF_CAP_MS)
}

/// Is this error a bounded-read timeout (the deadline machinery), as
/// opposed to a dead or misbehaving peer?
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// The shared dispatch queue plus the in-flight ledger that makes the
/// work-stealing termination protocol sound. An idle dispatcher thread
/// may only exit when the queue is empty AND nothing is in flight:
/// otherwise a dying host could re-queue its in-flight item after every
/// survivor already went home, stranding the item with live hosts
/// available (the race the in-flight count exists to close). Threads
/// with nothing to steal park on the paired [`Condvar`] and are woken by
/// every re-queue, every settled item and every fatal error.
struct DispatchQueue {
    pending: VecDeque<(WorkItem, usize)>,
    in_flight: usize,
}

/// Frames the dispatcher sends to a worker host (one JSON object per
/// line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DispatchFrame {
    /// Opens a work channel; must be the first frame on a connection.
    Hello {
        /// The dispatcher's [`REMOTE_PROTOCOL_VERSION`].
        protocol: u32,
    },
    /// Assigns one work item; the host answers with
    /// [`WorkerFrame::Completed`].
    Assign(WorkItem),
}

/// Frames a worker host sends back to the dispatcher (one JSON object
/// per line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerFrame {
    /// Handshake accepted; the host will serve assignments.
    Welcome {
        /// The host's [`REMOTE_PROTOCOL_VERSION`].
        protocol: u32,
    },
    /// Handshake refused; the host closes the connection after this.
    Reject {
        /// Human-readable refusal cause (version skew, bad hello, …).
        reason: String,
    },
    /// One assignment's result, echoing the item's identity.
    Completed(PartResult),
}

fn send_frame<W: Write, T: Serialize>(output: &mut W, frame: &T) -> io::Result<()> {
    let line = serde_json::to_string(frame).expect("protocol frames serialize");
    output.write_all(line.as_bytes())?;
    output.write_all(b"\n")?;
    output.flush()
}

/// Reads one line, `None` on EOF.
fn read_frame_line<R: BufRead>(input: &mut R) -> io::Result<Option<String>> {
    let mut line = String::new();
    if input.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    Ok(Some(line))
}

/// Why a connection attempt to a worker host did not produce a usable
/// channel — the two cases have opposite consequences for the run.
enum ConnectFailure {
    /// The host is unreachable or vanished mid-handshake. Fatal on the
    /// first attempt (a configured host must exist when the run starts,
    /// mirroring the process backend's cannot-spawn error); mere host
    /// loss on a reconnect, where the rest of the fleet absorbs the
    /// queue.
    Dead(io::Error),
    /// The host answered and refused us (version skew, not speaking the
    /// protocol at all). Always fatal: a misconfigured fleet member
    /// would silently absorb retries otherwise.
    Refused(String),
}

/// A live work channel to one worker host.
struct HostChannel {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Items this connection answered successfully — same fresh-death
    /// heuristic as the process backend's per-incarnation counter.
    completed: usize,
    /// Per-reply deadline, expressed in [`REMOTE_READ_POLL_MS`] polls.
    deadline_polls: u64,
}

impl HostChannel {
    fn connect(addr: &str, deadline_ms: u64) -> Result<HostChannel, ConnectFailure> {
        faults::hit_io(faults::points::REMOTE_CONNECT).map_err(ConnectFailure::Dead)?;
        let target = addr
            .to_socket_addrs()
            .map_err(ConnectFailure::Dead)?
            .next()
            .ok_or_else(|| {
                ConnectFailure::Dead(io::Error::new(
                    io::ErrorKind::AddrNotAvailable,
                    "address resolves to no socket address",
                ))
            })?;
        let writer =
            TcpStream::connect_timeout(&target, Duration::from_millis(REMOTE_CONNECT_TIMEOUT_MS))
                .map_err(ConnectFailure::Dead)?;
        // The protocol is strictly request/response with small frames;
        // without TCP_NODELAY every round trip stalls on Nagle vs
        // delayed-ACK (~40 ms each way — measured ~87 ms/item on
        // loopback, dwarfing the work itself).
        writer.set_nodelay(true).map_err(ConnectFailure::Dead)?;
        // Bound every read. The clone below shares the socket, so the
        // reader inherits the timeout; reads then poll at this
        // granularity and `read_reply_line` counts polls against the
        // per-reply deadline.
        writer
            .set_read_timeout(Some(Duration::from_millis(REMOTE_READ_POLL_MS)))
            .map_err(ConnectFailure::Dead)?;
        let reader = BufReader::new(writer.try_clone().map_err(ConnectFailure::Dead)?);
        let mut channel = HostChannel {
            writer,
            reader,
            completed: 0,
            deadline_polls: deadline_ms.div_ceil(REMOTE_READ_POLL_MS).max(1),
        };
        send_frame(
            &mut channel.writer,
            &DispatchFrame::Hello {
                protocol: REMOTE_PROTOCOL_VERSION,
            },
        )
        .map_err(ConnectFailure::Dead)?;
        let line = match channel.read_reply_line().map_err(ConnectFailure::Dead)? {
            Some(line) => line,
            None => {
                return Err(ConnectFailure::Dead(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "host closed the connection during the handshake",
                )))
            }
        };
        let reply: WorkerFrame = serde_json::from_str(&line).map_err(|e| {
            ConnectFailure::Refused(format!("sent an unparseable handshake reply: {e}"))
        })?;
        match reply {
            WorkerFrame::Welcome { protocol } if protocol == REMOTE_PROTOCOL_VERSION => Ok(channel),
            WorkerFrame::Welcome { protocol } => Err(ConnectFailure::Refused(format!(
                "speaks remote protocol v{protocol}, this dispatcher speaks v{REMOTE_PROTOCOL_VERSION}"
            ))),
            WorkerFrame::Reject { reason } => Err(ConnectFailure::Refused(reason)),
            WorkerFrame::Completed(_) => Err(ConnectFailure::Refused(
                "answered the handshake with a result frame".to_string(),
            )),
        }
    }

    /// Reads one reply line under the per-reply deadline: each blocking
    /// read times out after [`REMOTE_READ_POLL_MS`] and the polls are
    /// counted, so a host that stops answering surfaces a `TimedOut`
    /// error after `deadline_polls` polls instead of wedging the
    /// dispatcher thread. Partial lines survive timeouts (`read_line`
    /// keeps already-read bytes in the buffer), so a slow-but-live host
    /// is never corrupted by the polling.
    fn read_reply_line(&mut self) -> io::Result<Option<String>> {
        let mut line = String::new();
        let mut polls: u64 = 0;
        loop {
            match self.reader.read_line(&mut line) {
                Ok(0) => return Ok(None),
                Ok(_) => return Ok(Some(line)),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if is_timeout(&e) => {
                    polls += 1;
                    if polls >= self.deadline_polls {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "no reply within the {} ms deadline",
                                self.deadline_polls * REMOTE_READ_POLL_MS
                            ),
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends one assignment and reads back its result. Any error means
    /// the channel is unusable and must be replaced.
    fn round_trip(&mut self, item: &WorkItem) -> io::Result<PartResult> {
        send_frame(&mut self.writer, &DispatchFrame::Assign(item.clone()))?;
        faults::hit_io(faults::points::REMOTE_READ)?;
        let line = self.read_reply_line()?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "host closed the connection mid-item",
            )
        })?;
        let frame: WorkerFrame = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("host sent an unparseable frame: {e}"),
            )
        })?;
        match frame {
            WorkerFrame::Completed(result) => Ok(result),
            WorkerFrame::Welcome { .. } | WorkerFrame::Reject { .. } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "host sent a handshake frame mid-run",
            )),
        }
    }
}

/// The multi-host backend: dispatches work items to a fleet of
/// [`serve_remote_host`] worker hosts over TCP.
///
/// One dispatcher thread per configured host address pulls from a shared
/// pending queue (work stealing). Crash semantics mirror
/// [`ProcessExecutor`](crate::executor::ProcessExecutor): a host that
/// dies mid-item has the item re-queued, only fresh-connection deaths
/// are charged against the item's bounded retry budget, and results are
/// deduplicated by fingerprint so a re-queued item is never merged
/// twice. A host that is unreachable when the run starts, or that
/// rejects the handshake (version skew), fails the run immediately.
pub struct RemoteExecutor {
    workers: Vec<String>,
    max_item_retries: usize,
    deadline_ms: u64,
}

impl RemoteExecutor {
    /// Creates a remote executor dispatching to `workers` (socket
    /// addresses like `127.0.0.1:7461`; list an address twice for two
    /// concurrent channels to the same host).
    pub fn new(workers: Vec<String>) -> Self {
        RemoteExecutor {
            workers,
            max_item_retries: DEFAULT_MAX_ITEM_RETRIES,
            deadline_ms: DEFAULT_REMOTE_DEADLINE_MS,
        }
    }

    /// Sets how many fresh-connection deaths one item may cause before
    /// the run fails.
    #[must_use]
    pub fn max_item_retries(mut self, retries: usize) -> Self {
        self.max_item_retries = retries;
        self
    }

    /// Sets the per-reply deadline in milliseconds (clamped to at least
    /// one read poll). A host that has not answered within this budget
    /// is abandoned and its item re-queued on the surviving hosts.
    #[must_use]
    pub fn deadline_millis(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = deadline_ms.max(REMOTE_READ_POLL_MS);
        self
    }
}

impl Executor for RemoteExecutor {
    fn execute(&self, items: Vec<WorkItem>) -> Result<Vec<PartResult>, ExecutorError> {
        self.execute_observed(items, &())
    }

    fn execute_observed(
        &self,
        items: Vec<WorkItem>,
        observer: &dyn ExecutionObserver,
    ) -> Result<Vec<PartResult>, ExecutorError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        if self.workers.is_empty() {
            return Err(ExecutorError::new(
                "remote backend has no worker hosts configured (add --worker ADDR)",
            ));
        }
        let total = items.len();
        let queue: Mutex<DispatchQueue> = Mutex::new(DispatchQueue {
            pending: items.into_iter().map(|item| (item, 0)).collect(),
            in_flight: 0,
        });
        let wake = Condvar::new();
        let results: Mutex<Vec<PartResult>> = Mutex::new(Vec::new());
        // Fingerprints already merged — the dedup ledger that guarantees
        // a re-queued item can never land twice.
        let merged: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());
        let fatal: Mutex<Option<ExecutorError>> = Mutex::new(None);
        let fail = |message: String| {
            fatal
                .lock()
                .expect("fatal lock")
                .get_or_insert(ExecutorError::new(message));
            // Parked stealers re-check the fatal flag on every wake-up.
            wake.notify_all();
        };
        // An item leaves a thread's hands one of exactly two ways; both
        // wake the parked stealers so the termination condition (empty
        // queue, nothing in flight) is re-evaluated.
        let requeue = |item: WorkItem, retries: usize| {
            let mut state = queue.lock().expect("queue lock");
            state.pending.push_back((item, retries));
            state.in_flight -= 1;
            wake.notify_all();
        };
        let settle = || {
            queue.lock().expect("queue lock").in_flight -= 1;
            wake.notify_all();
        };
        std::thread::scope(|scope| {
            for addr in self.workers.iter().take(total) {
                let addr = addr.as_str();
                let (queue, wake, results, merged) = (&queue, &wake, &results, &merged);
                let (fail, requeue, settle) = (&fail, &requeue, &settle);
                let fatal = &fatal;
                let max_item_retries = self.max_item_retries;
                let deadline_ms = self.deadline_ms;
                scope.spawn(move || {
                    let mut channel: Option<HostChannel> = None;
                    let mut ever_connected = false;
                    loop {
                        if fatal.lock().expect("fatal lock").is_some() {
                            break;
                        }
                        let next = {
                            let mut state = queue.lock().expect("queue lock");
                            loop {
                                if let Some(entry) = state.pending.pop_front() {
                                    state.in_flight += 1;
                                    break Some(entry);
                                }
                                if state.in_flight == 0 {
                                    // Drained for good: nothing queued and
                                    // nothing left that could re-queue.
                                    break None;
                                }
                                // Another host holds the remaining items;
                                // if it dies they come back here. Park
                                // until a re-queue, a settle or a fatal.
                                state = wake.wait(state).expect("queue lock");
                                if fatal.lock().expect("fatal lock").is_some() {
                                    break None;
                                }
                            }
                        };
                        let Some((item, retries)) = next else {
                            break;
                        };
                        if channel.is_none() {
                            match HostChannel::connect(addr, deadline_ms) {
                                Ok(connected) => {
                                    channel = Some(connected);
                                    ever_connected = true;
                                }
                                Err(ConnectFailure::Refused(reason)) => {
                                    fail(format!(
                                        "worker host '{addr}' refused the dispatcher: {reason}"
                                    ));
                                    settle();
                                    break;
                                }
                                Err(ConnectFailure::Dead(e)) => {
                                    // A host that accepts TCP but never
                                    // answers the handshake is *hung*,
                                    // not misconfigured: abandon it and
                                    // let the survivors drain the queue,
                                    // even on the very first attempt.
                                    if ever_connected || is_timeout(&e) {
                                        // Host loss: hand the item back and
                                        // let the surviving hosts drain the
                                        // queue; this thread is done.
                                        eprintln!(
                                            "warning: worker host '{addr}' is gone ({e}); re-queueing {}#{} for the remaining hosts",
                                            item.scenario_id, item.part
                                        );
                                        requeue(item, retries);
                                        break;
                                    }
                                    fail(format!(
                                        "cannot connect to worker host '{addr}': {e}"
                                    ));
                                    settle();
                                    break;
                                }
                            }
                        }
                        let active = channel.as_mut().expect("channel just ensured");
                        observer.item_started(&item);
                        match active.round_trip(&item) {
                            Ok(result) => {
                                if let Some(error) = &result.error {
                                    fail(format!(
                                        "worker host '{addr}' failed on {}#{}: {error}",
                                        item.scenario_id, item.part
                                    ));
                                    settle();
                                    break;
                                }
                                if result.scenario_id != item.scenario_id
                                    || result.part != item.part
                                    || result.fingerprint != item.fingerprint
                                {
                                    fail(format!(
                                        "worker host '{addr}' answered {}#{} with a result for {}#{} (protocol error)",
                                        item.scenario_id,
                                        item.part,
                                        result.scenario_id,
                                        result.part
                                    ));
                                    settle();
                                    break;
                                }
                                active.completed += 1;
                                let first_landing = merged
                                    .lock()
                                    .expect("merged lock")
                                    .insert(result.fingerprint.clone());
                                if first_landing {
                                    observer.item_finished(&result);
                                    results.lock().expect("results lock").push(result);
                                } else {
                                    // A half-dead host answered an item
                                    // that was already re-queued and
                                    // completed elsewhere.
                                    eprintln!(
                                        "warning: dropped a duplicate result for {}#{} from '{addr}' (fingerprint already merged)",
                                        item.scenario_id, item.part
                                    );
                                }
                                settle();
                            }
                            Err(e) if is_timeout(&e) => {
                                // Per-item deadline: the host is hung
                                // (connected, silent). Abandon the host
                                // — a late reply on this channel would
                                // desync the framing anyway — re-queue
                                // the item on the survivors and end this
                                // thread. No retry charge: the host is
                                // at fault, not the item.
                                drop(channel.take());
                                eprintln!(
                                    "warning: worker host '{addr}' hit the per-item deadline on {}#{} ({e}); re-queueing for the remaining hosts",
                                    item.scenario_id, item.part
                                );
                                requeue(item, retries);
                                break;
                            }
                            Err(e) => {
                                // The channel is gone or confused: drop
                                // it, re-queue the in-flight item and
                                // reconnect lazily on the next loop
                                // iteration. As with worker processes,
                                // only deaths of *fresh* connections
                                // (no completed items) are charged to
                                // the item — that is the toxic-item
                                // signature.
                                let fresh_death = channel
                                    .take()
                                    .map(|dead| dead.completed == 0)
                                    .unwrap_or(true);
                                let retries = if fresh_death { retries + 1 } else { retries };
                                if retries > max_item_retries {
                                    fail(format!(
                                        "{}#{} killed {retries} fresh worker connection(s) ({e}); giving up",
                                        item.scenario_id, item.part
                                    ));
                                    settle();
                                    break;
                                }
                                let pause = retry_backoff_millis(&item.fingerprint, retries);
                                eprintln!(
                                    "warning: worker host '{addr}' failed while running {}#{} ({e}); re-queueing after {pause} ms ({retries}/{} charged retries)",
                                    item.scenario_id,
                                    item.part,
                                    max_item_retries
                                );
                                // detlint: allow(D002) reason="bounded retry backoff; the pause is deterministic (fingerprint-derived) and its duration never feeds back into any output"
                                std::thread::sleep(Duration::from_millis(pause));
                                requeue(item, retries);
                            }
                        }
                    }
                    // Dropping the channel closes the socket; the host
                    // sees EOF and ends the connection cleanly.
                });
            }
        });
        if let Some(error) = fatal.into_inner().expect("fatal lock") {
            return Err(error);
        }
        let stranded = queue.into_inner().expect("queue lock").pending.len();
        if stranded > 0 {
            return Err(ExecutorError::new(format!(
                "all {} worker host(s) are gone with {stranded} of {total} item(s) still queued",
                self.workers.len()
            )));
        }
        Ok(results.into_inner().expect("results lock"))
    }
}

/// Serves one dispatcher connection: handshake, then assignments until
/// EOF. Transport-agnostic so tests can drive it over in-memory buffers.
///
/// A hello with the wrong protocol version — or anything that is not a
/// hello — is answered with [`WorkerFrame::Reject`] and an error return;
/// a malformed assignment line is a protocol violation and terminates
/// the connection without a response (the dispatcher charges it like a
/// death). An unknown scenario id becomes a per-item error result, which
/// the dispatcher treats as fatal. Every read assignment hits the
/// `remote.host.item` failpoint ([`faults::points::REMOTE_HOST_ITEM`])
/// before it is answered; the failpoint counter is process-wide, so a
/// `crash@N` spec injects one deterministic host crash no matter how
/// connections interleave (the bench host translates the legacy
/// `ONIONBOTS_WORKER_CRASH_AFTER_ITEMS` hook into exactly that spec).
///
/// # Errors
/// Returns the underlying I/O error when the transport breaks or the
/// dispatcher violates the protocol.
pub fn serve_remote_connection<R, W, F>(mut input: R, mut output: W, resolve: F) -> io::Result<()>
where
    R: BufRead,
    W: Write,
    F: Fn(&str) -> Option<Arc<dyn Scenario>>,
{
    let hello = match read_frame_line(&mut input)? {
        Some(line) => line,
        // EOF before any frame: a probe, not a dispatcher.
        None => return Ok(()),
    };
    match serde_json::from_str::<DispatchFrame>(&hello) {
        Ok(DispatchFrame::Hello { protocol }) if protocol == REMOTE_PROTOCOL_VERSION => {
            send_frame(
                &mut output,
                &WorkerFrame::Welcome {
                    protocol: REMOTE_PROTOCOL_VERSION,
                },
            )?;
        }
        Ok(DispatchFrame::Hello { protocol }) => {
            let reason = format!(
                "dispatcher speaks remote protocol v{protocol}, this host speaks v{REMOTE_PROTOCOL_VERSION}"
            );
            send_frame(
                &mut output,
                &WorkerFrame::Reject {
                    reason: reason.clone(),
                },
            )?;
            return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
        }
        Ok(DispatchFrame::Assign(_)) => {
            let reason = "assignment before handshake".to_string();
            send_frame(
                &mut output,
                &WorkerFrame::Reject {
                    reason: reason.clone(),
                },
            )?;
            return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
        }
        Err(e) => {
            let reason = format!("unparseable hello frame: {e}");
            send_frame(
                &mut output,
                &WorkerFrame::Reject {
                    reason: reason.clone(),
                },
            )?;
            return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
        }
    }
    loop {
        let line = match read_frame_line(&mut input)? {
            Some(line) => line,
            // EOF: the dispatcher is done with this channel.
            None => return Ok(()),
        };
        if line.trim().is_empty() {
            continue;
        }
        let frame: DispatchFrame = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed dispatch frame: {e}"),
            )
        })?;
        let item = match frame {
            DispatchFrame::Assign(item) => item,
            DispatchFrame::Hello { .. } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "duplicate handshake on an established channel",
                ))
            }
        };
        faults::hit_io(faults::points::REMOTE_HOST_ITEM)?;
        let result = match resolve(&item.scenario_id) {
            Some(scenario) => PartResult::ok(&item, run_work_item(&*scenario, &item)),
            None => PartResult::failed(
                &item,
                format!(
                    "scenario '{}' is not registered on this worker host",
                    item.scenario_id
                ),
            ),
        };
        send_frame(&mut output, &WorkerFrame::Completed(result))?;
    }
}

/// Runs a worker host: accepts dispatcher connections on `listener`
/// forever (one thread per connection, registry resolved through
/// `resolve`) and serves each with [`serve_remote_connection`]. Fault
/// schedules armed in this process (via [`crate::faults::arm_from_env`])
/// apply host-wide: the `remote.host.item` counter spans every
/// connection.
///
/// Never returns `Ok`: a worker host runs until its process is killed.
///
/// # Errors
/// Returns the underlying I/O error when accepting fails outright.
pub fn serve_remote_host<F>(listener: TcpListener, resolve: F) -> io::Result<()>
where
    F: Fn(&str) -> Option<Arc<dyn Scenario>> + Sync,
{
    std::thread::scope(|scope| loop {
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        let resolve = &resolve;
        scope.spawn(move || {
            // Mirror of the dispatcher side: request/response frames must
            // not sit in Nagle's buffer waiting for a delayed ACK.
            if let Err(e) = stream.set_nodelay(true) {
                eprintln!("warning: dropping connection from {peer}: {e}");
                return;
            }
            let reader = match stream.try_clone() {
                Ok(clone) => BufReader::new(clone),
                Err(e) => {
                    eprintln!("warning: dropping connection from {peer}: {e}");
                    return;
                }
            };
            if let Err(e) = serve_remote_connection(reader, &stream, resolve) {
                eprintln!("warning: connection from {peer} ended with a protocol error: {e}");
            }
        });
    })
}
