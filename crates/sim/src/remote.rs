//! Multi-host distributed backend: TCP work-stealing fleet dispatch.
//!
//! [`RemoteExecutor`] fans the same serializable [`WorkItem`]s the
//! process backend pins out to a fleet of worker *hosts* over TCP. The
//! wire format is one JSON frame per line, and the payload frames embed
//! the exact [`WorkItem`]/[`PartResult`] objects `serve_work_items`
//! already speaks — a worker host is a `ProcessExecutor` worker with a
//! socket where the pipe used to be, plus a one-line version handshake:
//!
//! | direction | frame | meaning |
//! |---|---|---|
//! | dispatcher → host | `Hello { protocol }` | open a work channel |
//! | host → dispatcher | `Welcome { protocol }` | versions match, send work |
//! | host → dispatcher | `Reject { reason }` | refused (version skew, …) |
//! | dispatcher → host | `Assign(WorkItem)` | execute one item |
//! | host → dispatcher | `Completed(PartResult)` | the item's result |
//!
//! Dispatch is **work-stealing**: one dispatcher-side thread per
//! configured host pulls items off a shared pending queue, so a slow
//! host never stalls the run — it just steals fewer items. Host loss
//! follows the `ProcessExecutor` semantics exactly: the in-flight item
//! is re-queued for the surviving hosts, deaths of *fresh* connections
//! (no completed items) charge the item's bounded retry budget, and a
//! run fails instead of looping when an item keeps killing fresh
//! connections or when every host is gone with work still queued.
//! Results dedup on the item **fingerprint** — a re-queued item can
//! never be double-merged even if a half-dead host answered it late.
//!
//! Determinism is inherited, not re-argued: hosts compute parts with
//! [`run_work_item`] (per-part seed, `threads` budget scoped around the
//! part), the cache pass sits above the backend, and the `Runner`
//! reassembles results in `(scenario, part)` order — so `RunSummary` is
//! byte-identical to `--backend local` at any host count, including
//! under mid-run host kills.

use std::collections::{BTreeSet, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::executor::{
    run_work_item, ExecutionObserver, Executor, ExecutorError, PartResult, WorkItem,
    DEFAULT_MAX_ITEM_RETRIES,
};
use crate::scenario_api::Scenario;

/// Version of the dispatcher↔host wire protocol. Part of the handshake:
/// a host refuses a dispatcher whose version differs, which fails the
/// run up front instead of corrupting it halfway through.
pub const REMOTE_PROTOCOL_VERSION: u32 = 1;

/// Frames the dispatcher sends to a worker host (one JSON object per
/// line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DispatchFrame {
    /// Opens a work channel; must be the first frame on a connection.
    Hello {
        /// The dispatcher's [`REMOTE_PROTOCOL_VERSION`].
        protocol: u32,
    },
    /// Assigns one work item; the host answers with
    /// [`WorkerFrame::Completed`].
    Assign(WorkItem),
}

/// Frames a worker host sends back to the dispatcher (one JSON object
/// per line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerFrame {
    /// Handshake accepted; the host will serve assignments.
    Welcome {
        /// The host's [`REMOTE_PROTOCOL_VERSION`].
        protocol: u32,
    },
    /// Handshake refused; the host closes the connection after this.
    Reject {
        /// Human-readable refusal cause (version skew, bad hello, …).
        reason: String,
    },
    /// One assignment's result, echoing the item's identity.
    Completed(PartResult),
}

fn send_frame<W: Write, T: Serialize>(output: &mut W, frame: &T) -> io::Result<()> {
    let line = serde_json::to_string(frame).expect("protocol frames serialize");
    output.write_all(line.as_bytes())?;
    output.write_all(b"\n")?;
    output.flush()
}

/// Reads one line, `None` on EOF.
fn read_frame_line<R: BufRead>(input: &mut R) -> io::Result<Option<String>> {
    let mut line = String::new();
    if input.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    Ok(Some(line))
}

/// Why a connection attempt to a worker host did not produce a usable
/// channel — the two cases have opposite consequences for the run.
enum ConnectFailure {
    /// The host is unreachable or vanished mid-handshake. Fatal on the
    /// first attempt (a configured host must exist when the run starts,
    /// mirroring the process backend's cannot-spawn error); mere host
    /// loss on a reconnect, where the rest of the fleet absorbs the
    /// queue.
    Dead(io::Error),
    /// The host answered and refused us (version skew, not speaking the
    /// protocol at all). Always fatal: a misconfigured fleet member
    /// would silently absorb retries otherwise.
    Refused(String),
}

/// A live work channel to one worker host.
struct HostChannel {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Items this connection answered successfully — same fresh-death
    /// heuristic as the process backend's per-incarnation counter.
    completed: usize,
}

impl HostChannel {
    fn connect(addr: &str) -> Result<HostChannel, ConnectFailure> {
        let writer = TcpStream::connect(addr).map_err(ConnectFailure::Dead)?;
        // The protocol is strictly request/response with small frames;
        // without TCP_NODELAY every round trip stalls on Nagle vs
        // delayed-ACK (~40 ms each way — measured ~87 ms/item on
        // loopback, dwarfing the work itself).
        writer.set_nodelay(true).map_err(ConnectFailure::Dead)?;
        let reader = BufReader::new(writer.try_clone().map_err(ConnectFailure::Dead)?);
        let mut channel = HostChannel {
            writer,
            reader,
            completed: 0,
        };
        send_frame(
            &mut channel.writer,
            &DispatchFrame::Hello {
                protocol: REMOTE_PROTOCOL_VERSION,
            },
        )
        .map_err(ConnectFailure::Dead)?;
        let line = match read_frame_line(&mut channel.reader).map_err(ConnectFailure::Dead)? {
            Some(line) => line,
            None => {
                return Err(ConnectFailure::Dead(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "host closed the connection during the handshake",
                )))
            }
        };
        let reply: WorkerFrame = serde_json::from_str(&line).map_err(|e| {
            ConnectFailure::Refused(format!("sent an unparseable handshake reply: {e}"))
        })?;
        match reply {
            WorkerFrame::Welcome { protocol } if protocol == REMOTE_PROTOCOL_VERSION => Ok(channel),
            WorkerFrame::Welcome { protocol } => Err(ConnectFailure::Refused(format!(
                "speaks remote protocol v{protocol}, this dispatcher speaks v{REMOTE_PROTOCOL_VERSION}"
            ))),
            WorkerFrame::Reject { reason } => Err(ConnectFailure::Refused(reason)),
            WorkerFrame::Completed(_) => Err(ConnectFailure::Refused(
                "answered the handshake with a result frame".to_string(),
            )),
        }
    }

    /// Sends one assignment and reads back its result. Any error means
    /// the channel is unusable and must be replaced.
    fn round_trip(&mut self, item: &WorkItem) -> io::Result<PartResult> {
        send_frame(&mut self.writer, &DispatchFrame::Assign(item.clone()))?;
        let line = read_frame_line(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "host closed the connection mid-item",
            )
        })?;
        let frame: WorkerFrame = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("host sent an unparseable frame: {e}"),
            )
        })?;
        match frame {
            WorkerFrame::Completed(result) => Ok(result),
            WorkerFrame::Welcome { .. } | WorkerFrame::Reject { .. } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "host sent a handshake frame mid-run",
            )),
        }
    }
}

/// The multi-host backend: dispatches work items to a fleet of
/// [`serve_remote_host`] worker hosts over TCP.
///
/// One dispatcher thread per configured host address pulls from a shared
/// pending queue (work stealing). Crash semantics mirror
/// [`ProcessExecutor`](crate::executor::ProcessExecutor): a host that
/// dies mid-item has the item re-queued, only fresh-connection deaths
/// are charged against the item's bounded retry budget, and results are
/// deduplicated by fingerprint so a re-queued item is never merged
/// twice. A host that is unreachable when the run starts, or that
/// rejects the handshake (version skew), fails the run immediately.
pub struct RemoteExecutor {
    workers: Vec<String>,
    max_item_retries: usize,
}

impl RemoteExecutor {
    /// Creates a remote executor dispatching to `workers` (socket
    /// addresses like `127.0.0.1:7461`; list an address twice for two
    /// concurrent channels to the same host).
    pub fn new(workers: Vec<String>) -> Self {
        RemoteExecutor {
            workers,
            max_item_retries: DEFAULT_MAX_ITEM_RETRIES,
        }
    }

    /// Sets how many fresh-connection deaths one item may cause before
    /// the run fails.
    #[must_use]
    pub fn max_item_retries(mut self, retries: usize) -> Self {
        self.max_item_retries = retries;
        self
    }
}

impl Executor for RemoteExecutor {
    fn execute(&self, items: Vec<WorkItem>) -> Result<Vec<PartResult>, ExecutorError> {
        self.execute_observed(items, &())
    }

    fn execute_observed(
        &self,
        items: Vec<WorkItem>,
        observer: &dyn ExecutionObserver,
    ) -> Result<Vec<PartResult>, ExecutorError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        if self.workers.is_empty() {
            return Err(ExecutorError::new(
                "remote backend has no worker hosts configured (add --worker ADDR)",
            ));
        }
        let total = items.len();
        let queue: Mutex<VecDeque<(WorkItem, usize)>> =
            Mutex::new(items.into_iter().map(|item| (item, 0)).collect());
        let results: Mutex<Vec<PartResult>> = Mutex::new(Vec::new());
        // Fingerprints already merged — the dedup ledger that guarantees
        // a re-queued item can never land twice.
        let merged: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());
        let fatal: Mutex<Option<ExecutorError>> = Mutex::new(None);
        let fail = |message: String| {
            fatal
                .lock()
                .expect("fatal lock")
                .get_or_insert(ExecutorError::new(message));
        };
        std::thread::scope(|scope| {
            for addr in self.workers.iter().take(total) {
                let addr = addr.as_str();
                let (queue, results, merged, fail) = (&queue, &results, &merged, &fail);
                let fatal = &fatal;
                let max_item_retries = self.max_item_retries;
                scope.spawn(move || {
                    let mut channel: Option<HostChannel> = None;
                    let mut ever_connected = false;
                    loop {
                        if fatal.lock().expect("fatal lock").is_some() {
                            break;
                        }
                        let next = queue.lock().expect("queue lock").pop_front();
                        let Some((item, retries)) = next else {
                            break;
                        };
                        if channel.is_none() {
                            match HostChannel::connect(addr) {
                                Ok(connected) => {
                                    channel = Some(connected);
                                    ever_connected = true;
                                }
                                Err(ConnectFailure::Refused(reason)) => {
                                    fail(format!(
                                        "worker host '{addr}' refused the dispatcher: {reason}"
                                    ));
                                    break;
                                }
                                Err(ConnectFailure::Dead(e)) => {
                                    if ever_connected {
                                        // Host loss: hand the item back and
                                        // let the surviving hosts drain the
                                        // queue; this thread is done.
                                        eprintln!(
                                            "warning: worker host '{addr}' is gone ({e}); re-queueing {}#{} for the remaining hosts",
                                            item.scenario_id, item.part
                                        );
                                        queue
                                            .lock()
                                            .expect("queue lock")
                                            .push_back((item, retries));
                                        break;
                                    }
                                    fail(format!(
                                        "cannot connect to worker host '{addr}': {e}"
                                    ));
                                    break;
                                }
                            }
                        }
                        let active = channel.as_mut().expect("channel just ensured");
                        observer.item_started(&item);
                        match active.round_trip(&item) {
                            Ok(result) => {
                                if let Some(error) = &result.error {
                                    fail(format!(
                                        "worker host '{addr}' failed on {}#{}: {error}",
                                        item.scenario_id, item.part
                                    ));
                                    break;
                                }
                                if result.scenario_id != item.scenario_id
                                    || result.part != item.part
                                    || result.fingerprint != item.fingerprint
                                {
                                    fail(format!(
                                        "worker host '{addr}' answered {}#{} with a result for {}#{} (protocol error)",
                                        item.scenario_id,
                                        item.part,
                                        result.scenario_id,
                                        result.part
                                    ));
                                    break;
                                }
                                active.completed += 1;
                                let first_landing = merged
                                    .lock()
                                    .expect("merged lock")
                                    .insert(result.fingerprint.clone());
                                if first_landing {
                                    observer.item_finished(&result);
                                    results.lock().expect("results lock").push(result);
                                } else {
                                    // A half-dead host answered an item
                                    // that was already re-queued and
                                    // completed elsewhere.
                                    eprintln!(
                                        "warning: dropped a duplicate result for {}#{} from '{addr}' (fingerprint already merged)",
                                        item.scenario_id, item.part
                                    );
                                }
                            }
                            Err(e) => {
                                // The channel is gone or confused: drop
                                // it, re-queue the in-flight item and
                                // reconnect lazily on the next loop
                                // iteration. As with worker processes,
                                // only deaths of *fresh* connections
                                // (no completed items) are charged to
                                // the item — that is the toxic-item
                                // signature.
                                let fresh_death = channel
                                    .take()
                                    .map(|dead| dead.completed == 0)
                                    .unwrap_or(true);
                                let retries = if fresh_death { retries + 1 } else { retries };
                                if retries > max_item_retries {
                                    fail(format!(
                                        "{}#{} killed {retries} fresh worker connection(s) ({e}); giving up",
                                        item.scenario_id, item.part
                                    ));
                                    break;
                                }
                                eprintln!(
                                    "warning: worker host '{addr}' failed while running {}#{} ({e}); re-queueing ({retries}/{} charged retries)",
                                    item.scenario_id,
                                    item.part,
                                    max_item_retries
                                );
                                queue
                                    .lock()
                                    .expect("queue lock")
                                    .push_back((item, retries));
                            }
                        }
                    }
                    // Dropping the channel closes the socket; the host
                    // sees EOF and ends the connection cleanly.
                });
            }
        });
        if let Some(error) = fatal.into_inner().expect("fatal lock") {
            return Err(error);
        }
        let stranded = queue.into_inner().expect("queue lock").len();
        if stranded > 0 {
            return Err(ExecutorError::new(format!(
                "all {} worker host(s) are gone with {stranded} of {total} item(s) still queued",
                self.workers.len()
            )));
        }
        Ok(results.into_inner().expect("results lock"))
    }
}

/// Serves one dispatcher connection: handshake, then assignments until
/// EOF. Transport-agnostic so tests can drive it over in-memory buffers.
///
/// A hello with the wrong protocol version — or anything that is not a
/// hello — is answered with [`WorkerFrame::Reject`] and an error return;
/// a malformed assignment line is a protocol violation and terminates
/// the connection without a response (the dispatcher charges it like a
/// death). An unknown scenario id becomes a per-item error result, which
/// the dispatcher treats as fatal. `completed` is the host-wide answered
/// count shared across connections; when `crash_after_items` is
/// `Some(n)`, the whole host process exits abruptly (status 101) upon
/// *reading* an assignment once `n` items have been answered — the same
/// deterministic crash-injection hook `serve_work_items` pins, here for
/// host-loss tests.
///
/// # Errors
/// Returns the underlying I/O error when the transport breaks or the
/// dispatcher violates the protocol.
pub fn serve_remote_connection<R, W, F>(
    mut input: R,
    mut output: W,
    crash_after_items: Option<usize>,
    completed: &AtomicUsize,
    resolve: F,
) -> io::Result<()>
where
    R: BufRead,
    W: Write,
    F: Fn(&str) -> Option<Arc<dyn Scenario>>,
{
    let hello = match read_frame_line(&mut input)? {
        Some(line) => line,
        // EOF before any frame: a probe, not a dispatcher.
        None => return Ok(()),
    };
    match serde_json::from_str::<DispatchFrame>(&hello) {
        Ok(DispatchFrame::Hello { protocol }) if protocol == REMOTE_PROTOCOL_VERSION => {
            send_frame(
                &mut output,
                &WorkerFrame::Welcome {
                    protocol: REMOTE_PROTOCOL_VERSION,
                },
            )?;
        }
        Ok(DispatchFrame::Hello { protocol }) => {
            let reason = format!(
                "dispatcher speaks remote protocol v{protocol}, this host speaks v{REMOTE_PROTOCOL_VERSION}"
            );
            send_frame(
                &mut output,
                &WorkerFrame::Reject {
                    reason: reason.clone(),
                },
            )?;
            return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
        }
        Ok(DispatchFrame::Assign(_)) => {
            let reason = "assignment before handshake".to_string();
            send_frame(
                &mut output,
                &WorkerFrame::Reject {
                    reason: reason.clone(),
                },
            )?;
            return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
        }
        Err(e) => {
            let reason = format!("unparseable hello frame: {e}");
            send_frame(
                &mut output,
                &WorkerFrame::Reject {
                    reason: reason.clone(),
                },
            )?;
            return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
        }
    }
    loop {
        let line = match read_frame_line(&mut input)? {
            Some(line) => line,
            // EOF: the dispatcher is done with this channel.
            None => return Ok(()),
        };
        if line.trim().is_empty() {
            continue;
        }
        let frame: DispatchFrame = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed dispatch frame: {e}"),
            )
        })?;
        let item = match frame {
            DispatchFrame::Assign(item) => item,
            DispatchFrame::Hello { .. } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "duplicate handshake on an established channel",
                ))
            }
        };
        if crash_after_items.is_some_and(|n| completed.load(Ordering::SeqCst) >= n) {
            // Simulated host crash: the item was read but is never
            // answered, and every connection dies at once.
            std::process::exit(101);
        }
        let result = match resolve(&item.scenario_id) {
            Some(scenario) => PartResult::ok(&item, run_work_item(&*scenario, &item)),
            None => PartResult::failed(
                &item,
                format!(
                    "scenario '{}' is not registered on this worker host",
                    item.scenario_id
                ),
            ),
        };
        send_frame(&mut output, &WorkerFrame::Completed(result))?;
        completed.fetch_add(1, Ordering::SeqCst);
    }
}

/// Runs a worker host: accepts dispatcher connections on `listener`
/// forever (one thread per connection, registry resolved through
/// `resolve`) and serves each with [`serve_remote_connection`]. The
/// answered-items counter is host-wide, so `crash_after_items` injects
/// one deterministic process crash no matter how connections interleave.
///
/// Never returns `Ok`: a worker host runs until its process is killed.
///
/// # Errors
/// Returns the underlying I/O error when accepting fails outright.
pub fn serve_remote_host<F>(
    listener: TcpListener,
    crash_after_items: Option<usize>,
    resolve: F,
) -> io::Result<()>
where
    F: Fn(&str) -> Option<Arc<dyn Scenario>> + Sync,
{
    let completed = AtomicUsize::new(0);
    std::thread::scope(|scope| loop {
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        let resolve = &resolve;
        let completed = &completed;
        scope.spawn(move || {
            // Mirror of the dispatcher side: request/response frames must
            // not sit in Nagle's buffer waiting for a delayed ACK.
            if let Err(e) = stream.set_nodelay(true) {
                eprintln!("warning: dropping connection from {peer}: {e}");
                return;
            }
            let reader = match stream.try_clone() {
                Ok(clone) => BufReader::new(clone),
                Err(e) => {
                    eprintln!("warning: dropping connection from {peer}: {e}");
                    return;
                }
            };
            if let Err(e) =
                serve_remote_connection(reader, &stream, crash_after_items, completed, resolve)
            {
                eprintln!("warning: connection from {peer} ended with a protocol error: {e}");
            }
        });
    })
}
