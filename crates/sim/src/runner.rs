//! The parallel experiment [`Runner`]: fans scenario parts across worker
//! threads and collects deterministic [`RunSummary`] results.
//!
//! The unit of scheduling is a *(scenario, part)* pair, so independent
//! series inside one scenario (the `k = 5/10/15` variants of Figure 4, the
//! fifteen sizes of Figure 6, ...) parallelize just like independent
//! scenarios do. Every part draws its RNG from
//! [`part_seed`](crate::scenario_api::part_seed) and results are merged in
//! part order, which makes a `RunSummary` — including its JSON rendering —
//! byte-identical for any worker count.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::experiment::ExperimentReport;
use crate::scenario_api::{merge_reports, part_seed, Scenario, ScenarioParams};

/// All reports produced by one scenario in a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The scenario's id.
    pub scenario_id: String,
    /// The scenario's title.
    pub title: String,
    /// Number of parts the scenario was split into.
    pub parts: usize,
    /// Merged reports, in the order the scenario produced them.
    pub reports: Vec<ExperimentReport>,
}

/// The deterministic result of a [`Runner`] invocation.
///
/// Contains no timing data on purpose: two runs with the same params and
/// scenario set serialize to byte-identical JSON regardless of `jobs`.
/// Wall-clock measurement is the caller's concern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// The parameters every scenario ran with.
    pub params: ScenarioParams,
    /// One outcome per executed scenario, in selection order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl RunSummary {
    /// Serializes the summary as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("summary serializes")
    }

    /// Total number of reports across all outcomes.
    pub fn report_count(&self) -> usize {
        self.outcomes.iter().map(|o| o.reports.len()).sum()
    }
}

/// Executes a selected set of scenarios, optionally in parallel.
#[derive(Debug, Clone)]
pub struct Runner {
    params: ScenarioParams,
    jobs: usize,
}

impl Runner {
    /// Creates a single-threaded runner.
    pub fn new(params: ScenarioParams) -> Self {
        Runner { params, jobs: 1 }
    }

    /// Sets the number of worker threads (clamped to at least 1).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Runs the scenarios and returns their deterministic summary.
    ///
    /// Work items are *(scenario, part)* pairs handed out from a shared
    /// queue; results are reassembled in `(scenario, part)` order before
    /// merging, so scheduling order never leaks into the output.
    pub fn run(&self, scenarios: &[Arc<dyn Scenario>]) -> RunSummary {
        let part_counts: Vec<usize> = scenarios
            .iter()
            .map(|s| s.parts(&self.params).max(1))
            .collect();
        let mut work: VecDeque<(usize, usize)> = VecDeque::new();
        for (scenario_idx, &parts) in part_counts.iter().enumerate() {
            for part in 0..parts {
                work.push_back((scenario_idx, part));
            }
        }

        let mut results: Vec<(usize, usize, Vec<ExperimentReport>)> =
            if self.jobs == 1 || work.len() <= 1 {
                work.into_iter()
                    .map(|(scenario_idx, part)| {
                        let reports = run_one(&*scenarios[scenario_idx], part, &self.params);
                        (scenario_idx, part, reports)
                    })
                    .collect()
            } else {
                self.run_parallel(scenarios, work)
            };

        results.sort_by_key(|&(scenario_idx, part, _)| (scenario_idx, part));
        let mut outcomes: Vec<ScenarioOutcome> = scenarios
            .iter()
            .zip(&part_counts)
            .map(|(s, &parts)| ScenarioOutcome {
                scenario_id: s.id().to_string(),
                title: s.title().to_string(),
                parts,
                reports: Vec::new(),
            })
            .collect();
        for (scenario_idx, _part, reports) in results {
            merge_reports(&mut outcomes[scenario_idx].reports, reports);
        }
        RunSummary {
            params: self.params.clone(),
            outcomes,
        }
    }

    fn run_parallel(
        &self,
        scenarios: &[Arc<dyn Scenario>],
        work: VecDeque<(usize, usize)>,
    ) -> Vec<(usize, usize, Vec<ExperimentReport>)> {
        let workers = self.jobs.min(work.len());
        let queue = Mutex::new(work);
        let results = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let item = queue.lock().expect("queue lock").pop_front();
                    let Some((scenario_idx, part)) = item else {
                        break;
                    };
                    let reports = run_one(&*scenarios[scenario_idx], part, &self.params);
                    results
                        .lock()
                        .expect("results lock")
                        .push((scenario_idx, part, reports));
                });
            }
        });
        results.into_inner().expect("results lock")
    }
}

fn run_one(scenario: &dyn Scenario, part: usize, params: &ScenarioParams) -> Vec<ExperimentReport> {
    let mut rng = StdRng::seed_from_u64(part_seed(params.seed, scenario.id(), part));
    scenario.run_part(part, params, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Series;
    use rand::Rng;

    /// A scenario with configurable part count and artificial skew so
    /// parallel completion order differs from part order.
    struct Skewed {
        id: &'static str,
        parts: usize,
    }

    impl Scenario for Skewed {
        fn id(&self) -> &str {
            self.id
        }
        fn title(&self) -> &str {
            "skewed toy scenario"
        }
        fn parts(&self, _params: &ScenarioParams) -> usize {
            self.parts
        }
        fn run_part(
            &self,
            part: usize,
            _params: &ScenarioParams,
            rng: &mut StdRng,
        ) -> Vec<ExperimentReport> {
            // Early parts sleep longest, so with >1 worker the completion
            // order is roughly reversed relative to part order.
            std::thread::sleep(std::time::Duration::from_millis(
                (self.parts - part) as u64 * 3,
            ));
            let mut r = ExperimentReport::new(self.id, "skewed", "part", "value");
            r.push_series(Series::new(
                "trace",
                vec![part as f64],
                vec![rng.gen_range(0.0f64..1.0)],
            ));
            vec![r]
        }
    }

    fn scenarios() -> Vec<Arc<dyn Scenario>> {
        vec![
            Arc::new(Skewed { id: "s1", parts: 4 }),
            Arc::new(Skewed { id: "s2", parts: 2 }),
            Arc::new(Skewed { id: "s3", parts: 1 }),
        ]
    }

    #[test]
    fn parallel_runs_match_sequential_runs_byte_for_byte() {
        let params = ScenarioParams::with_seed(42);
        let sequential = Runner::new(params.clone()).run(&scenarios());
        let parallel = Runner::new(params).jobs(8).run(&scenarios());
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.to_json(), parallel.to_json());
    }

    #[test]
    fn outcomes_follow_selection_order_and_merge_parts_in_order() {
        let summary = Runner::new(ScenarioParams::with_seed(7))
            .jobs(4)
            .run(&scenarios());
        assert_eq!(summary.outcomes.len(), 3);
        assert_eq!(summary.outcomes[0].scenario_id, "s1");
        assert_eq!(summary.outcomes[0].parts, 4);
        let series = &summary.outcomes[0].reports[0].series[0];
        assert_eq!(series.x, vec![0.0, 1.0, 2.0, 3.0], "parts merged in order");
        assert_eq!(summary.report_count(), 3);
    }

    #[test]
    fn different_seeds_change_results() {
        let a = Runner::new(ScenarioParams::with_seed(1)).run(&scenarios());
        let b = Runner::new(ScenarioParams::with_seed(2)).run(&scenarios());
        assert_ne!(a, b);
    }

    #[test]
    fn summary_json_roundtrips() {
        let summary = Runner::new(ScenarioParams::with_seed(3)).run(&scenarios());
        let restored: RunSummary = serde_json::from_str(&summary.to_json()).unwrap();
        assert_eq!(restored, summary);
    }
}
