//! The experiment [`Runner`]: plans *(scenario, part)* work items,
//! resolves them against the result cache, and hands the misses to a
//! pluggable execution [`Backend`].
//!
//! The unit of scheduling is a [`WorkItem`] — *(scenario id, part,
//! derived part seed, scale, scoped overrides)*, see [`crate::executor`]
//! — so independent series inside one scenario (the `k = 5/10/15`
//! variants of Figure 4, the fifteen sizes of Figure 6, ...) parallelize
//! just like independent scenarios do. Every part draws its RNG from
//! [`part_seed`](crate::scenario_api::part_seed) and results are merged
//! in part order, which makes a [`RunSummary`] — including its JSON
//! rendering — byte-identical for any worker count *and any backend*.
//!
//! The cache-aware path sits entirely above the backend: with
//! [`Runner::with_cache`] every planned item is first resolved against
//! the [`ResultCache`] by its fingerprint (which is the work item's
//! identity), hits are replayed from disk, and only the misses are
//! dispatched — to in-process threads ([`Backend::Local`]), worker
//! subprocesses ([`Backend::Process`]) or any custom [`Executor`]
//! ([`Backend::Custom`]). Workers report per-item status; the parent
//! aggregates the [`CacheStats`] and prints the single stderr summary.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::cache::{CacheLookup, CacheStats, PartFingerprint, ResultCache};
use crate::executor::{
    index_by_id, plan_work_items, ExecutionObserver, Executor, ExecutorError, LocalExecutor,
    PartResult, ProcessExecutor, WorkItem, WorkerCommand,
};
use crate::experiment::ExperimentReport;
use crate::scenario_api::{merge_reports, Scenario, ScenarioParams};

/// All reports produced by one scenario in a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The scenario's id.
    pub scenario_id: String,
    /// The scenario's title.
    pub title: String,
    /// Number of parts the scenario was split into.
    pub parts: usize,
    /// Merged reports, in the order the scenario produced them.
    pub reports: Vec<ExperimentReport>,
}

/// The deterministic result of a [`Runner`] invocation.
///
/// Contains no timing data on purpose: two runs with the same params and
/// scenario set serialize to byte-identical JSON regardless of `jobs` or
/// the execution backend. Wall-clock measurement is the caller's concern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// The parameters every scenario ran with.
    pub params: ScenarioParams,
    /// One outcome per executed scenario, in selection order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl RunSummary {
    /// Serializes the summary as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("summary serializes")
    }

    /// Total number of reports across all outcomes.
    pub fn report_count(&self) -> usize {
        self.outcomes.iter().map(|o| o.reports.len()).sum()
    }
}

/// Lifecycle state of one *(scenario, part)* work item as a run
/// progresses, streamed to a [`RunObserver`].
///
/// The happy paths are `Queued → Started → Finished` for an executed part
/// and a single `CacheHit` for a replayed one. `Started` may repeat
/// without an intervening terminal state when a backend re-queues an item
/// (e.g. after a worker death), and `Error` carries the per-item message a
/// backend reported. Events are informational: the run's returned
/// [`RunSummary`] (or error) stays the single source of truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PartState {
    /// The part missed the cache and was queued for execution.
    Queued,
    /// The part was served from the result cache without executing.
    CacheHit,
    /// A backend worker began executing the part.
    Started,
    /// The part's result landed successfully.
    Finished,
    /// The backend reported a per-item error for the part.
    Error(String),
}

/// One part lifecycle transition, as reported to a [`RunObserver`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartEvent {
    /// The scenario the part belongs to.
    pub scenario_id: String,
    /// The part index within the scenario.
    pub part: usize,
    /// The part's content address (the work-item identity).
    pub fingerprint: String,
    /// The state the part transitioned into.
    pub state: PartState,
}

impl PartEvent {
    fn for_item(item: &WorkItem, state: PartState) -> Self {
        PartEvent {
            scenario_id: item.scenario_id.clone(),
            part: item.part,
            fingerprint: item.fingerprint.clone(),
            state,
        }
    }

    fn for_result(result: &PartResult) -> Self {
        PartEvent {
            scenario_id: result.scenario_id.clone(),
            part: result.part,
            fingerprint: result.fingerprint.clone(),
            state: match &result.error {
                None => PartState::Finished,
                Some(message) => PartState::Error(message.clone()),
            },
        }
    }
}

/// Receives [`PartEvent`]s while a [`Runner`] executes — the streaming
/// hook the simulation service daemon uses to forward per-part progress
/// to its clients as results land.
///
/// Implementations must be `Sync`: events are delivered concurrently from
/// the executing backend's worker threads. The no-op observer `&()` turns
/// [`Runner::try_run_observed`] back into
/// [`Runner::try_run_with_stats`].
pub trait RunObserver: Sync {
    /// Called once per part lifecycle transition, in completion order.
    fn part_event(&self, event: PartEvent);
}

/// The no-op observer used by the plain one-shot entry points.
impl RunObserver for () {
    fn part_event(&self, _event: PartEvent) {}
}

/// Adapts a [`RunObserver`] to the executor-level observer so backends
/// can stream `Started`/`Finished`/`Error` transitions live.
struct ForwardToRun<'a> {
    observer: &'a dyn RunObserver,
}

impl ExecutionObserver for ForwardToRun<'_> {
    fn item_started(&self, item: &WorkItem) {
        self.observer
            .part_event(PartEvent::for_item(item, PartState::Started));
    }

    fn item_finished(&self, result: &PartResult) {
        self.observer.part_event(PartEvent::for_result(result));
    }
}

/// Which execution backend a [`Runner`] dispatches its work items to.
#[derive(Clone, Default)]
pub enum Backend {
    /// In-process `std::thread` fan-out (the default).
    #[default]
    Local,
    /// Worker subprocesses launched from this command, speaking the
    /// newline-delimited JSON work-item protocol.
    Process(WorkerCommand),
    /// A fleet of `serve-worker` hosts at these socket addresses,
    /// speaking the same work-item frames over TCP
    /// ([`RemoteExecutor`](crate::remote::RemoteExecutor)).
    Remote(Vec<String>),
    /// Any user-provided executor (e.g. a remote/multi-host backend that
    /// speaks the same protocol over a different transport).
    Custom(Arc<dyn Executor>),
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Local => f.write_str("Local"),
            Backend::Process(command) => f.debug_tuple("Process").field(command).finish(),
            Backend::Remote(workers) => f.debug_tuple("Remote").field(workers).finish(),
            Backend::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

/// How many threads each in-flight work item may use for its intra-item
/// graph sweeps (the [`WorkItem::threads`] hint).
///
/// The budget composes with `--jobs` instead of multiplying against it:
/// [`Auto`](ThreadsPerItem::Auto) divides the machine's cores by the
/// number of concurrently executing items, so `jobs × threads-per-item ≈
/// cores` and two layers of parallelism never oversubscribe the host.
/// The hint can never change output bytes — the BFS kernel is
/// deterministic at any thread count — so any setting is safe; it is
/// purely a throughput knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreadsPerItem {
    /// Keep intra-item work sequential (the pinned legacy behavior and
    /// the library default).
    #[default]
    Sequential,
    /// Split the machine evenly: `max(1, cores / min(jobs, pending
    /// items))` threads per item.
    Auto,
    /// A fixed number of threads per item (clamped to at least 1).
    Fixed(usize),
}

impl ThreadsPerItem {
    /// Resolves the policy to a concrete per-item thread count for a
    /// batch of `pending` items executed by up to `jobs` workers.
    pub fn resolve(self, jobs: usize, pending: usize) -> usize {
        match self {
            ThreadsPerItem::Sequential => 1,
            ThreadsPerItem::Fixed(threads) => threads.max(1),
            ThreadsPerItem::Auto => {
                let cores =
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
                let in_flight = jobs.max(1).min(pending.max(1));
                (cores / in_flight).max(1)
            }
        }
    }
}

/// Executes a selected set of scenarios, optionally in parallel,
/// optionally backed by a [`ResultCache`], on a pluggable [`Backend`].
#[derive(Debug, Clone)]
pub struct Runner {
    params: ScenarioParams,
    jobs: usize,
    cache: Option<ResultCache>,
    refresh: bool,
    backend: Backend,
    threads_per_item: ThreadsPerItem,
    cancel: Option<Arc<AtomicBool>>,
    remote_deadline_ms: Option<u64>,
}

impl Runner {
    /// Creates a single-threaded, uncached runner on the local backend.
    pub fn new(params: ScenarioParams) -> Self {
        Runner {
            params,
            jobs: 1,
            cache: None,
            refresh: false,
            backend: Backend::Local,
            threads_per_item: ThreadsPerItem::default(),
            cancel: None,
            remote_deadline_ms: None,
        }
    }

    /// Sets the number of workers — threads for [`Backend::Local`],
    /// subprocesses for [`Backend::Process`] (clamped to at least 1).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Attaches a result cache: valid entries are replayed instead of
    /// executed, fresh results are stored back.
    pub fn with_cache(mut self, cache: ResultCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// With `refresh` set, existing cache entries are bypassed (counted as
    /// invalidated) and overwritten with freshly executed results.
    pub fn refresh(mut self, refresh: bool) -> Self {
        self.refresh = refresh;
        self
    }

    /// Selects the execution backend (default: [`Backend::Local`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the intra-item thread budget policy (default:
    /// [`ThreadsPerItem::Sequential`], the pinned legacy behavior). The
    /// resolved count is stamped onto every dispatched [`WorkItem`] and —
    /// on the process backend — exported to workers via the
    /// [`onion_graph::budget::THREADS_ENV`] environment variable, so
    /// subprocesses inherit the same split. Output bytes are identical
    /// for any setting.
    pub fn threads_per_item(mut self, threads: ThreadsPerItem) -> Self {
        self.threads_per_item = threads;
        self
    }

    /// Attaches a cooperative cancellation token. When set, pending items
    /// are dispatched in bounded batches and the token is checked between
    /// them: once it reads `true`, the remaining items are drained and the
    /// run fails with a "job cancelled" [`ExecutorError`]. Because fresh
    /// results are only written back after the *whole* dispatch succeeds,
    /// a cancelled run never leaves partial state in the cache — the next
    /// run simply recomputes. A cancel raised while the final batch is in
    /// flight loses the race and the run completes normally.
    pub fn cancel_token(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Overrides the per-item reply deadline (milliseconds) used by
    /// [`Backend::Remote`]; see
    /// [`RemoteExecutor::deadline_millis`](crate::remote::RemoteExecutor::deadline_millis).
    /// Has no effect on the other backends.
    pub fn remote_deadline_ms(mut self, millis: u64) -> Self {
        self.remote_deadline_ms = Some(millis);
        self
    }

    /// Runs the scenarios and returns their deterministic summary.
    ///
    /// Work items are planned in `(scenario, part)` order, resolved
    /// against the cache, dispatched to the backend, and reassembled in
    /// `(scenario, part)` order before merging — so neither scheduling
    /// order, cache hits nor the backend leak into the output.
    ///
    /// # Panics
    /// Panics when the backend fails (e.g. the worker binary cannot be
    /// spawned); use [`try_run_with_stats`](Self::try_run_with_stats) to
    /// handle that gracefully.
    pub fn run(&self, scenarios: &[Arc<dyn Scenario>]) -> RunSummary {
        self.run_with_stats(scenarios).0
    }

    /// Like [`run`](Self::run), additionally returning the cache counters
    /// (`None` when no cache is attached).
    ///
    /// # Panics
    /// Panics when the backend fails, like [`run`](Self::run).
    pub fn run_with_stats(
        &self,
        scenarios: &[Arc<dyn Scenario>],
    ) -> (RunSummary, Option<CacheStats>) {
        self.try_run_with_stats(scenarios)
            .unwrap_or_else(|error| panic!("execution backend failed: {error}"))
    }

    /// Runs the scenarios, reporting backend failures as an error instead
    /// of panicking. When a cache is attached the counters are also
    /// reported on stderr — by this parent process only, never by a
    /// worker — as are store failures: a cache that stops being writable
    /// mid-run degrades to a warning, never a failed run.
    ///
    /// # Errors
    /// Returns the [`ExecutorError`] when the backend cannot complete the
    /// batch (worker binary missing, an item that keeps killing workers,
    /// a scenario unknown to the executor, ...).
    pub fn try_run_with_stats(
        &self,
        scenarios: &[Arc<dyn Scenario>],
    ) -> Result<(RunSummary, Option<CacheStats>), ExecutorError> {
        self.try_run_observed(scenarios, &())
    }

    /// The full plan → cache → dispatch → validate → merge pipeline with a
    /// streaming [`RunObserver`] attached: every part reports
    /// `Queued`/`CacheHit` during the cache pass and
    /// `Started`/`Finished`/`Error` live from the backend as it executes.
    /// This is the shared entry point behind both the one-shot CLI path
    /// ([`try_run_with_stats`](Self::try_run_with_stats), which attaches
    /// the no-op observer) and the simulation service daemon (which
    /// forwards events to connected clients); the observer can never
    /// change output bytes.
    ///
    /// # Errors
    /// Returns the [`ExecutorError`] when the backend cannot complete the
    /// batch, like [`try_run_with_stats`](Self::try_run_with_stats).
    pub fn try_run_observed(
        &self,
        scenarios: &[Arc<dyn Scenario>],
        observer: &dyn RunObserver,
    ) -> Result<(RunSummary, Option<CacheStats>), ExecutorError> {
        let by_id = index_by_id(scenarios);
        let part_counts: Vec<usize> = scenarios
            .iter()
            .map(|s| s.parts(&self.params).max(1))
            .collect();
        let work = plan_work_items(scenarios, &self.params);

        // Cache pass: resolve every work item to either a replayed result
        // or a pending execution. The item's identity *is* the cache
        // fingerprint, so no separate fingerprinting step exists anymore.
        let mut stats = self.cache.as_ref().map(|_| CacheStats::default());
        let mut cached: Vec<(usize, usize, Vec<ExperimentReport>)> = Vec::new();
        let mut pending: Vec<WorkItem> = Vec::new();
        match (&self.cache, stats.as_mut()) {
            (Some(cache), Some(stats)) => {
                for (scenario_idx, item) in work {
                    let fp = item.part_fingerprint();
                    if self.refresh {
                        if cache.contains(&fp) {
                            stats.invalidated += 1;
                        } else {
                            stats.misses += 1;
                        }
                    } else {
                        match cache.lookup(&fp) {
                            CacheLookup::Hit(reports) => {
                                stats.hits += 1;
                                observer
                                    .part_event(PartEvent::for_item(&item, PartState::CacheHit));
                                cached.push((scenario_idx, item.part, reports));
                                continue;
                            }
                            CacheLookup::Miss => stats.misses += 1,
                            CacheLookup::Invalid => stats.invalidated += 1,
                        }
                    }
                    observer.part_event(PartEvent::for_item(&item, PartState::Queued));
                    pending.push(item);
                }
            }
            _ => {
                pending = work.into_iter().map(|(_, item)| item).collect();
                for item in &pending {
                    observer.part_event(PartEvent::for_item(item, PartState::Queued));
                }
            }
        }

        // The fingerprint is unique per item (distinct (scenario, part)
        // pairs hash differently), so it doubles as the completeness
        // ledger for the backend's answers; the (scenario, part) echo is
        // remembered alongside it so a mislabeled result cannot slip
        // through on a valid fingerprint.
        let mut awaited: std::collections::BTreeMap<String, (String, usize)> = pending
            .iter()
            .map(|item| {
                (
                    item.fingerprint.clone(),
                    (item.scenario_id.clone(), item.part),
                )
            })
            .collect();
        let executed = self.dispatch(scenarios, pending, observer)?;

        // Trust but verify: built-in backends fail fast on per-item
        // errors, but a Backend::Custom is free to return failed, foreign,
        // mislabeled, duplicate or missing results — none of which may
        // reach the cache or silently corrupt the summary.
        for result in &executed {
            if let Some(error) = &result.error {
                return Err(ExecutorError::new(format!(
                    "backend reported a failed item {}#{}: {error}",
                    result.scenario_id, result.part
                )));
            }
            match awaited.remove(&result.fingerprint) {
                Some((scenario_id, part))
                    if scenario_id == result.scenario_id && part == result.part => {}
                Some((scenario_id, part)) => {
                    return Err(ExecutorError::new(format!(
                        "backend mislabeled the result for {scenario_id}#{part} as {}#{}",
                        result.scenario_id, result.part
                    )));
                }
                None => {
                    return Err(ExecutorError::new(format!(
                        "backend returned an unexpected or duplicate result for {}#{}",
                        result.scenario_id, result.part
                    )));
                }
            }
        }
        if !awaited.is_empty() {
            return Err(ExecutorError::new(format!(
                "backend dropped {} work item(s) without a result",
                awaited.len()
            )));
        }

        // Write fresh results back under the identity each result echoes;
        // the backend returns results in completion order, which is fine
        // because the fingerprint travels with them.
        if let (Some(cache), Some(stats)) = (&self.cache, stats.as_mut()) {
            let mut first_error: Option<std::io::Error> = None;
            for result in &executed {
                let fp = PartFingerprint::from_parts(
                    &result.scenario_id,
                    result.part,
                    &result.fingerprint,
                );
                match cache.store(&fp, &result.reports) {
                    Ok(()) => stats.stored += 1,
                    Err(e) => {
                        stats.store_failures += 1;
                        first_error.get_or_insert(e);
                    }
                }
            }
            if let Some(e) = first_error {
                eprintln!(
                    "warning: {} cache write(s) failed ({e}); results were computed but not cached",
                    stats.store_failures
                );
            }
            eprintln!("cache: {stats}");
        }

        let mut results = cached;
        for result in executed {
            let scenario_idx = *by_id
                .get(&result.scenario_id)
                .expect("executors only return results for submitted items");
            results.push((scenario_idx, result.part, result.reports));
        }
        results.sort_by_key(|&(scenario_idx, part, _)| (scenario_idx, part));
        let mut outcomes: Vec<ScenarioOutcome> = scenarios
            .iter()
            .zip(&part_counts)
            .map(|(s, &parts)| ScenarioOutcome {
                scenario_id: s.id().to_string(),
                title: s.title().to_string(),
                parts,
                reports: Vec::new(),
            })
            .collect();
        for (scenario_idx, _part, reports) in results {
            merge_reports(&mut outcomes[scenario_idx].reports, reports);
        }
        Ok((
            RunSummary {
                params: self.params.clone(),
                outcomes,
            },
            stats,
        ))
    }

    /// Hands the pending items to the configured backend, stamping the
    /// resolved per-item thread budget onto every item first (and, for
    /// worker subprocesses, into their environment). With a
    /// [`cancel_token`](Self::cancel_token) attached the batch is split
    /// into `jobs`-sized slices so the token gets checked between them.
    fn dispatch(
        &self,
        scenarios: &[Arc<dyn Scenario>],
        mut pending: Vec<WorkItem>,
        observer: &dyn RunObserver,
    ) -> Result<Vec<PartResult>, ExecutorError> {
        if pending.is_empty() {
            return Ok(Vec::new());
        }
        let threads = self.threads_per_item.resolve(self.jobs, pending.len());
        for item in &mut pending {
            item.threads = threads;
        }
        let forward = ForwardToRun { observer };
        let run_batch = |batch: Vec<WorkItem>| -> Result<Vec<PartResult>, ExecutorError> {
            match &self.backend {
                Backend::Local => LocalExecutor::new(scenarios.to_vec())
                    .jobs(self.jobs)
                    .execute_observed(batch, &forward),
                Backend::Process(command) => {
                    // Belt and braces: the hint travels inside each work item
                    // (run_work_item scopes it), and the environment carries
                    // the same split as the worker-process default for any
                    // graph work outside an item's scope.
                    let command = command
                        .clone()
                        .env(onion_graph::budget::THREADS_ENV, threads.to_string());
                    ProcessExecutor::new(command)
                        .jobs(self.jobs)
                        .execute_observed(batch, &forward)
                }
                Backend::Remote(workers) => {
                    let mut executor = crate::remote::RemoteExecutor::new(workers.clone());
                    if let Some(millis) = self.remote_deadline_ms {
                        executor = executor.deadline_millis(millis);
                    }
                    executor.execute_observed(batch, &forward)
                }
                Backend::Custom(executor) => executor.execute_observed(batch, &forward),
            }
        };
        let Some(token) = &self.cancel else {
            return run_batch(pending);
        };
        // Cancellable path: dispatch one `jobs`-sized slice at a time.
        // The slices only change scheduling granularity — results are
        // reassembled in (scenario, part) order upstream, so the summary
        // bytes are identical to the single-batch path.
        let total = pending.len();
        let mut queue: std::collections::VecDeque<WorkItem> = pending.into();
        let mut results = Vec::with_capacity(total);
        while !queue.is_empty() {
            if token.load(Ordering::SeqCst) {
                return Err(ExecutorError::new(format!(
                    "job cancelled with {} of {total} item(s) still pending",
                    queue.len()
                )));
            }
            let take = self.jobs.max(1).min(queue.len());
            let batch: Vec<WorkItem> = queue.drain(..take).collect();
            results.extend(run_batch(batch)?);
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Series;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A scenario with configurable part count and artificial skew so
    /// parallel completion order differs from part order.
    struct Skewed {
        id: &'static str,
        parts: usize,
    }

    impl Scenario for Skewed {
        fn id(&self) -> &str {
            self.id
        }
        fn title(&self) -> &str {
            "skewed toy scenario"
        }
        fn parts(&self, _params: &ScenarioParams) -> usize {
            self.parts
        }
        fn run_part(
            &self,
            part: usize,
            _params: &ScenarioParams,
            rng: &mut StdRng,
        ) -> Vec<ExperimentReport> {
            // Early parts sleep longest, so with >1 worker the completion
            // order is roughly reversed relative to part order.
            // detlint: allow(D002) reason="test-only skew: forces completion order != part order to prove merging is order-independent; duration never reaches any report"
            std::thread::sleep(std::time::Duration::from_millis(
                (self.parts - part) as u64 * 3,
            ));
            let mut r = ExperimentReport::new(self.id, "skewed", "part", "value");
            r.push_series(Series::new(
                "trace",
                vec![part as f64],
                vec![rng.gen_range(0.0f64..1.0)],
            ));
            vec![r]
        }
    }

    fn scenarios() -> Vec<Arc<dyn Scenario>> {
        vec![
            Arc::new(Skewed { id: "s1", parts: 4 }),
            Arc::new(Skewed { id: "s2", parts: 2 }),
            Arc::new(Skewed { id: "s3", parts: 1 }),
        ]
    }

    #[test]
    fn parallel_runs_match_sequential_runs_byte_for_byte() {
        let params = ScenarioParams::with_seed(42);
        let sequential = Runner::new(params.clone()).run(&scenarios());
        let parallel = Runner::new(params).jobs(8).run(&scenarios());
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.to_json(), parallel.to_json());
    }

    #[test]
    fn outcomes_follow_selection_order_and_merge_parts_in_order() {
        let summary = Runner::new(ScenarioParams::with_seed(7))
            .jobs(4)
            .run(&scenarios());
        assert_eq!(summary.outcomes.len(), 3);
        assert_eq!(summary.outcomes[0].scenario_id, "s1");
        assert_eq!(summary.outcomes[0].parts, 4);
        let series = &summary.outcomes[0].reports[0].series[0];
        assert_eq!(series.x, vec![0.0, 1.0, 2.0, 3.0], "parts merged in order");
        assert_eq!(summary.report_count(), 3);
    }

    #[test]
    fn different_seeds_change_results() {
        let a = Runner::new(ScenarioParams::with_seed(1)).run(&scenarios());
        let b = Runner::new(ScenarioParams::with_seed(2)).run(&scenarios());
        assert_ne!(a, b);
    }

    #[test]
    fn summary_json_roundtrips() {
        let summary = Runner::new(ScenarioParams::with_seed(3)).run(&scenarios());
        let restored: RunSummary = serde_json::from_str(&summary.to_json()).unwrap();
        assert_eq!(restored, summary);
    }

    #[test]
    fn custom_backend_receives_only_the_planned_items() {
        use crate::executor::run_work_item;

        /// An executor that records how many items it saw and runs them
        /// in-process.
        struct Recording {
            scenarios: Vec<Arc<dyn Scenario>>,
            seen: std::sync::Mutex<usize>,
        }

        impl Executor for Recording {
            fn execute(&self, items: Vec<WorkItem>) -> Result<Vec<PartResult>, ExecutorError> {
                *self.seen.lock().unwrap() += items.len();
                Ok(items
                    .into_iter()
                    .map(|item| {
                        let scenario = self
                            .scenarios
                            .iter()
                            .find(|s| s.id() == item.scenario_id)
                            .expect("known scenario");
                        let reports = run_work_item(&**scenario, &item);
                        PartResult::ok(&item, reports)
                    })
                    .collect())
            }
        }

        let recording = Arc::new(Recording {
            scenarios: scenarios(),
            seen: std::sync::Mutex::new(0),
        });
        let params = ScenarioParams::with_seed(42);
        let reference = Runner::new(params.clone()).run(&scenarios());
        let custom = Runner::new(params)
            .backend(Backend::Custom(recording.clone()))
            .run(&scenarios());
        assert_eq!(custom.to_json(), reference.to_json());
        assert_eq!(*recording.seen.lock().unwrap(), 7, "4 + 2 + 1 parts");
    }

    #[test]
    fn threads_per_item_stamps_dispatched_items_and_never_changes_output() {
        use crate::executor::run_work_item;

        /// Runs items in-process while recording the thread hints it saw.
        struct RecordingThreads {
            scenarios: Vec<Arc<dyn Scenario>>,
            hints: std::sync::Mutex<Vec<usize>>,
        }

        impl Executor for RecordingThreads {
            fn execute(&self, items: Vec<WorkItem>) -> Result<Vec<PartResult>, ExecutorError> {
                let mut hints = self.hints.lock().unwrap();
                Ok(items
                    .into_iter()
                    .map(|item| {
                        hints.push(item.threads);
                        let scenario = self
                            .scenarios
                            .iter()
                            .find(|s| s.id() == item.scenario_id)
                            .expect("known scenario");
                        PartResult::ok(&item, run_work_item(&**scenario, &item))
                    })
                    .collect())
            }
        }

        let params = ScenarioParams::with_seed(42);
        let reference = Runner::new(params.clone()).run(&scenarios());
        for policy in [
            ThreadsPerItem::Sequential,
            ThreadsPerItem::Fixed(3),
            ThreadsPerItem::Auto,
        ] {
            let recording = Arc::new(RecordingThreads {
                scenarios: scenarios(),
                hints: std::sync::Mutex::new(Vec::new()),
            });
            let summary = Runner::new(params.clone())
                .jobs(2)
                .threads_per_item(policy)
                .backend(Backend::Custom(recording.clone()))
                .run(&scenarios());
            assert_eq!(
                summary.to_json(),
                reference.to_json(),
                "{policy:?}: the hint must never change output bytes"
            );
            let hints = recording.hints.lock().unwrap();
            let expected = policy.resolve(2, hints.len());
            assert_eq!(hints.len(), 7, "4 + 2 + 1 parts");
            assert!(
                hints.iter().all(|&h| h == expected),
                "{policy:?}: hints {hints:?} != resolved {expected}"
            );
        }
    }

    #[test]
    fn threads_per_item_resolution_is_bounded_and_sane() {
        assert_eq!(ThreadsPerItem::Sequential.resolve(8, 100), 1);
        assert_eq!(ThreadsPerItem::Fixed(4).resolve(8, 100), 4);
        assert_eq!(ThreadsPerItem::Fixed(0).resolve(1, 1), 1, "clamped");
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(
            ThreadsPerItem::Auto.resolve(1, 1),
            cores,
            "one in-flight item gets it all"
        );
        assert_eq!(
            ThreadsPerItem::Auto.resolve(cores * 4, 1000),
            1,
            "oversubscribed jobs leave one thread per item"
        );
        assert_eq!(
            ThreadsPerItem::Auto.resolve(0, 0),
            cores,
            "degenerate inputs are clamped, not panics"
        );
        assert_eq!(ThreadsPerItem::default(), ThreadsPerItem::Sequential);
    }

    #[test]
    fn misbehaving_custom_backends_cannot_poison_the_summary_or_cache() {
        use crate::executor::run_work_item;

        #[derive(Clone, Copy, PartialEq)]
        enum Misbehavior {
            FailFirst,
            DropLast,
            MislabelFirst,
        }

        /// A custom backend that executes correctly except for one
        /// configured misbehavior.
        struct Lossy {
            scenarios: Vec<Arc<dyn Scenario>>,
            mode: Misbehavior,
        }

        impl Executor for Lossy {
            fn execute(&self, mut items: Vec<WorkItem>) -> Result<Vec<PartResult>, ExecutorError> {
                match self.mode {
                    Misbehavior::FailFirst => {
                        let first = items.remove(0);
                        let mut results = vec![PartResult::failed(&first, "simulated oom")];
                        results.extend(items.iter().map(|item| self.run(item)));
                        Ok(results)
                    }
                    Misbehavior::DropLast => {
                        items.pop();
                        Ok(items.iter().map(|item| self.run(item)).collect())
                    }
                    Misbehavior::MislabelFirst => {
                        // Correct reports and a genuine fingerprint, but
                        // the identity echo points at another scenario.
                        let mut results: Vec<PartResult> =
                            items.iter().map(|item| self.run(item)).collect();
                        results[0].scenario_id = items[1].scenario_id.clone();
                        results[0].part = items[1].part;
                        Ok(results)
                    }
                }
            }
        }

        impl Lossy {
            fn run(&self, item: &WorkItem) -> PartResult {
                let scenario = self
                    .scenarios
                    .iter()
                    .find(|s| s.id() == item.scenario_id)
                    .expect("known scenario");
                PartResult::ok(item, run_work_item(&**scenario, item))
            }
        }

        let (cache, dir) = temp_cache("lossy");
        let params = ScenarioParams::with_seed(5);
        for (mode, expected) in [
            (Misbehavior::FailFirst, "simulated oom"),
            (Misbehavior::DropLast, "dropped 1 work item"),
            (Misbehavior::MislabelFirst, "mislabeled the result"),
        ] {
            let backend = Backend::Custom(Arc::new(Lossy {
                scenarios: scenarios(),
                mode,
            }));
            let error = Runner::new(params.clone())
                .backend(backend)
                .with_cache(cache.clone())
                .try_run_with_stats(&scenarios())
                .unwrap_err();
            let message = error.to_string();
            assert!(message.contains(expected), "{message}");
        }
        // Nothing was stored: the next cached run misses everywhere
        // instead of replaying a poisoned (empty or partial) entry.
        let (_, stats) = Runner::new(params)
            .with_cache(cache)
            .run_with_stats(&scenarios());
        let stats = stats.unwrap();
        assert_eq!(stats.hits, 0, "no entry from a failed run may survive");
        assert_eq!(stats.misses, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_backend_surfaces_as_an_error_not_a_hang() {
        struct Broken;
        impl Executor for Broken {
            fn execute(&self, _items: Vec<WorkItem>) -> Result<Vec<PartResult>, ExecutorError> {
                Err(ExecutorError::new("backend exploded"))
            }
        }
        let error = Runner::new(ScenarioParams::with_seed(1))
            .backend(Backend::Custom(Arc::new(Broken)))
            .try_run_with_stats(&scenarios())
            .unwrap_err();
        assert_eq!(error.to_string(), "backend exploded");
    }

    fn temp_cache(tag: &str) -> (ResultCache, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "sim-runner-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (ResultCache::open(&dir).unwrap(), dir)
    }

    #[test]
    fn warm_cache_run_executes_nothing_and_matches_cold_run_byte_for_byte() {
        let (cache, dir) = temp_cache("warm");
        let params = ScenarioParams::with_seed(42);
        let uncached = Runner::new(params.clone()).run(&scenarios());
        let (cold, cold_stats) = Runner::new(params.clone())
            .with_cache(cache.clone())
            .run_with_stats(&scenarios());
        let cold_stats = cold_stats.unwrap();
        assert_eq!(cold_stats.misses, 7, "4 + 2 + 1 parts all miss");
        assert_eq!(cold_stats.hits, 0);
        assert_eq!(cold_stats.stored, 7);
        assert_eq!(
            cold.to_json(),
            uncached.to_json(),
            "a cold cached run must not change the summary"
        );
        for jobs in [1, 8] {
            let (warm, warm_stats) = Runner::new(params.clone())
                .jobs(jobs)
                .with_cache(cache.clone())
                .run_with_stats(&scenarios());
            let warm_stats = warm_stats.unwrap();
            assert!(warm_stats.all_hits(), "jobs={jobs}: {warm_stats:?}");
            assert_eq!(warm_stats.hits, 7);
            assert_eq!(
                warm.to_json(),
                cold.to_json(),
                "jobs={jobs}: warm summary must be byte-identical"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn changed_seed_and_overrides_invalidate_the_affected_parts() {
        let (cache, dir) = temp_cache("invalidate");
        let params = ScenarioParams::with_seed(1);
        let runner = |p: ScenarioParams| Runner::new(p).with_cache(cache.clone());
        runner(params.clone()).run(&scenarios());
        // A different seed misses everywhere (part seeds derive from it).
        let (_, stats) = runner(ScenarioParams::with_seed(2)).run_with_stats(&scenarios());
        let stats = stats.unwrap();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 7);
        // Toggling full_scale misses everywhere too.
        let mut full = params.clone();
        full.full_scale = true;
        let (_, stats) = runner(full).run_with_stats(&scenarios());
        assert_eq!(stats.unwrap().hits, 0);
        // An override misses everywhere for scenarios with undeclared keys
        // (the conservative default fingerprints every override).
        let with_override = params.clone().with_override("n", "5");
        let (_, stats) = runner(with_override.clone()).run_with_stats(&scenarios());
        assert_eq!(stats.unwrap().hits, 0);
        // ... and each parameterization stays warm independently.
        let (_, stats) = runner(params).run_with_stats(&scenarios());
        assert!(stats.unwrap().all_hits());
        let (_, stats) = runner(with_override).run_with_stats(&scenarios());
        assert!(stats.unwrap().all_hits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refresh_bypasses_and_overwrites_existing_entries() {
        let (cache, dir) = temp_cache("refresh");
        let params = ScenarioParams::with_seed(9);
        let baseline = Runner::new(params.clone())
            .with_cache(cache.clone())
            .run(&scenarios());
        let (refreshed, stats) = Runner::new(params.clone())
            .with_cache(cache.clone())
            .refresh(true)
            .run_with_stats(&scenarios());
        let stats = stats.unwrap();
        assert_eq!(stats.hits, 0, "refresh must not serve cached entries");
        assert_eq!(stats.invalidated, 7, "all existing entries are bypassed");
        assert_eq!(stats.stored, 7, "and overwritten with fresh results");
        assert_eq!(refreshed.to_json(), baseline.to_json());
        // The refreshed entries are valid: a follow-up run is all hits.
        let (_, stats) = Runner::new(params)
            .with_cache(cache)
            .run_with_stats(&scenarios());
        assert!(stats.unwrap().all_hits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_set_cancel_token_aborts_before_any_work_and_stores_nothing() {
        let (cache, dir) = temp_cache("cancel-early");
        let token = Arc::new(AtomicBool::new(true));
        let error = Runner::new(ScenarioParams::with_seed(6))
            .with_cache(cache.clone())
            .cancel_token(token)
            .try_run_with_stats(&scenarios())
            .unwrap_err();
        assert_eq!(
            error.to_string(),
            "job cancelled with 7 of 7 item(s) still pending"
        );
        // Nothing reached the cache: a follow-up run misses everywhere.
        let (_, stats) = Runner::new(ScenarioParams::with_seed(6))
            .with_cache(cache)
            .run_with_stats(&scenarios());
        let stats = stats.unwrap();
        assert_eq!(stats.hits, 0, "a cancelled run must not warm the cache");
        assert_eq!(stats.misses, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_run_cancel_drains_pending_items_and_poisons_nothing() {
        /// Trips the shared token as soon as the first batch completes,
        /// so the between-batch check cancels the rest of the run.
        struct CancelAfterFirst {
            token: Arc<AtomicBool>,
            executed: std::sync::Mutex<usize>,
        }
        impl Executor for CancelAfterFirst {
            fn execute(&self, items: Vec<WorkItem>) -> Result<Vec<PartResult>, ExecutorError> {
                *self.executed.lock().unwrap() += items.len();
                self.token.store(true, Ordering::SeqCst);
                Ok(items
                    .iter()
                    .map(|item| PartResult::ok(item, vec![]))
                    .collect())
            }
        }

        let (cache, dir) = temp_cache("cancel-mid");
        let token = Arc::new(AtomicBool::new(false));
        let backend = Arc::new(CancelAfterFirst {
            token: token.clone(),
            executed: std::sync::Mutex::new(0),
        });
        let error = Runner::new(ScenarioParams::with_seed(6))
            .jobs(2)
            .with_cache(cache.clone())
            .backend(Backend::Custom(backend.clone()))
            .cancel_token(token)
            .try_run_with_stats(&scenarios())
            .unwrap_err();
        assert_eq!(
            error.to_string(),
            "job cancelled with 5 of 7 item(s) still pending"
        );
        assert_eq!(
            *backend.executed.lock().unwrap(),
            2,
            "only the first jobs-sized batch ran"
        );
        // Even the *completed* batch is discarded: results are stored
        // only after the whole dispatch succeeds, so the cache holds no
        // partial (and here: empty-report) state from the cancelled run.
        let (_, stats) = Runner::new(ScenarioParams::with_seed(6))
            .with_cache(cache)
            .run_with_stats(&scenarios());
        let stats = stats.unwrap();
        assert_eq!(stats.hits, 0, "no entry from a cancelled run may survive");
        assert_eq!(stats.misses, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unset_cancel_token_changes_nothing_about_the_run() {
        let params = ScenarioParams::with_seed(42);
        let reference = Runner::new(params.clone()).run(&scenarios());
        let cancellable = Runner::new(params)
            .jobs(2)
            .cancel_token(Arc::new(AtomicBool::new(false)))
            .run(&scenarios());
        assert_eq!(
            cancellable.to_json(),
            reference.to_json(),
            "batched dispatch must be byte-identical to the single batch"
        );
    }

    #[test]
    fn cache_that_vanishes_mid_run_degrades_to_a_warning() {
        let (cache, dir) = temp_cache("vanish");
        // Replace the cache directory with a plain file after opening, so
        // every store fails; the run itself must still succeed and match
        // the uncached summary.
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::write(&dir, b"in the way").unwrap();
        let params = ScenarioParams::with_seed(4);
        let (summary, stats) = Runner::new(params.clone())
            .with_cache(cache)
            .run_with_stats(&scenarios());
        let stats = stats.unwrap();
        assert_eq!(stats.store_failures, 7);
        assert_eq!(stats.stored, 0);
        assert_eq!(
            summary.to_json(),
            Runner::new(params).run(&scenarios()).to_json()
        );
        let _ = std::fs::remove_file(&dir);
    }
}
