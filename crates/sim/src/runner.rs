//! The parallel experiment [`Runner`]: fans scenario parts across worker
//! threads and collects deterministic [`RunSummary`] results.
//!
//! The unit of scheduling is a *(scenario, part)* pair, so independent
//! series inside one scenario (the `k = 5/10/15` variants of Figure 4, the
//! fifteen sizes of Figure 6, ...) parallelize just like independent
//! scenarios do. Every part draws its RNG from
//! [`part_seed`](crate::scenario_api::part_seed) and results are merged in
//! part order, which makes a `RunSummary` — including its JSON rendering —
//! byte-identical for any worker count.
//!
//! With [`Runner::with_cache`] a [`ResultCache`] is consulted before
//! scheduling: parts whose fingerprint resolves to a valid entry are
//! replayed from disk, only the misses are fanned across the workers, and
//! fresh results are written back — the summary stays byte-identical to an
//! uncached run because per-part seeding makes cached and recomputed
//! reports interchangeable.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::cache::{CacheLookup, CacheStats, PartFingerprint, ResultCache};
use crate::experiment::ExperimentReport;
use crate::scenario_api::{merge_reports, part_seed, Scenario, ScenarioParams};

/// All reports produced by one scenario in a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The scenario's id.
    pub scenario_id: String,
    /// The scenario's title.
    pub title: String,
    /// Number of parts the scenario was split into.
    pub parts: usize,
    /// Merged reports, in the order the scenario produced them.
    pub reports: Vec<ExperimentReport>,
}

/// The deterministic result of a [`Runner`] invocation.
///
/// Contains no timing data on purpose: two runs with the same params and
/// scenario set serialize to byte-identical JSON regardless of `jobs`.
/// Wall-clock measurement is the caller's concern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// The parameters every scenario ran with.
    pub params: ScenarioParams,
    /// One outcome per executed scenario, in selection order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl RunSummary {
    /// Serializes the summary as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("summary serializes")
    }

    /// Total number of reports across all outcomes.
    pub fn report_count(&self) -> usize {
        self.outcomes.iter().map(|o| o.reports.len()).sum()
    }
}

/// Executes a selected set of scenarios, optionally in parallel and
/// optionally backed by a [`ResultCache`].
#[derive(Debug, Clone)]
pub struct Runner {
    params: ScenarioParams,
    jobs: usize,
    cache: Option<ResultCache>,
    refresh: bool,
}

impl Runner {
    /// Creates a single-threaded, uncached runner.
    pub fn new(params: ScenarioParams) -> Self {
        Runner {
            params,
            jobs: 1,
            cache: None,
            refresh: false,
        }
    }

    /// Sets the number of worker threads (clamped to at least 1).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Attaches a result cache: valid entries are replayed instead of
    /// executed, fresh results are stored back.
    pub fn with_cache(mut self, cache: ResultCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// With `refresh` set, existing cache entries are bypassed (counted as
    /// invalidated) and overwritten with freshly executed results.
    pub fn refresh(mut self, refresh: bool) -> Self {
        self.refresh = refresh;
        self
    }

    /// Runs the scenarios and returns their deterministic summary.
    ///
    /// Work items are *(scenario, part)* pairs handed out from a shared
    /// queue; results are reassembled in `(scenario, part)` order before
    /// merging, so neither scheduling order nor cache hits leak into the
    /// output.
    pub fn run(&self, scenarios: &[Arc<dyn Scenario>]) -> RunSummary {
        self.run_with_stats(scenarios).0
    }

    /// Like [`run`](Self::run), additionally returning the cache counters
    /// (`None` when no cache is attached). When a cache is attached the
    /// counters are also reported on stderr, as are store failures — a
    /// cache that stops being writable mid-run degrades to a warning, never
    /// a failed run.
    pub fn run_with_stats(
        &self,
        scenarios: &[Arc<dyn Scenario>],
    ) -> (RunSummary, Option<CacheStats>) {
        let part_counts: Vec<usize> = scenarios
            .iter()
            .map(|s| s.parts(&self.params).max(1))
            .collect();
        let mut work: VecDeque<(usize, usize)> = VecDeque::new();
        for (scenario_idx, &parts) in part_counts.iter().enumerate() {
            for part in 0..parts {
                work.push_back((scenario_idx, part));
            }
        }

        // Cache pass: resolve every work item to either a replayed result
        // or a pending execution (with the fingerprint to store under).
        let mut stats = self.cache.as_ref().map(|_| CacheStats::default());
        let mut cached: Vec<(usize, usize, Vec<ExperimentReport>)> = Vec::new();
        let mut pending: VecDeque<(usize, usize)> = VecDeque::new();
        let mut fingerprints: HashMap<(usize, usize), PartFingerprint> = HashMap::new();
        match (&self.cache, stats.as_mut()) {
            (Some(cache), Some(stats)) => {
                for (scenario_idx, part) in work {
                    let fp =
                        PartFingerprint::compute(&*scenarios[scenario_idx], part, &self.params);
                    if self.refresh {
                        if cache.contains(&fp) {
                            stats.invalidated += 1;
                        } else {
                            stats.misses += 1;
                        }
                    } else {
                        match cache.lookup(&fp) {
                            CacheLookup::Hit(reports) => {
                                stats.hits += 1;
                                cached.push((scenario_idx, part, reports));
                                continue;
                            }
                            CacheLookup::Miss => stats.misses += 1,
                            CacheLookup::Invalid => stats.invalidated += 1,
                        }
                    }
                    pending.push_back((scenario_idx, part));
                    fingerprints.insert((scenario_idx, part), fp);
                }
            }
            _ => pending = work,
        }

        let executed: Vec<(usize, usize, Vec<ExperimentReport>)> =
            if self.jobs == 1 || pending.len() <= 1 {
                pending
                    .into_iter()
                    .map(|(scenario_idx, part)| {
                        let reports = run_one(&*scenarios[scenario_idx], part, &self.params);
                        (scenario_idx, part, reports)
                    })
                    .collect()
            } else {
                self.run_parallel(scenarios, pending)
            };

        // Write fresh results back. `fingerprints` is only populated on the
        // cache path, keyed by (scenario, part) rather than order because
        // the parallel pool returns results in completion order.
        if let (Some(cache), Some(stats)) = (&self.cache, stats.as_mut()) {
            let mut first_error: Option<std::io::Error> = None;
            for (scenario_idx, part, reports) in &executed {
                let fp = fingerprints
                    .get(&(*scenario_idx, *part))
                    .expect("every executed item was fingerprinted");
                match cache.store(fp, reports) {
                    Ok(()) => stats.stored += 1,
                    Err(e) => {
                        stats.store_failures += 1;
                        first_error.get_or_insert(e);
                    }
                }
            }
            if let Some(e) = first_error {
                eprintln!(
                    "warning: {} cache write(s) failed ({e}); results were computed but not cached",
                    stats.store_failures
                );
            }
            eprintln!("cache: {stats}");
        }

        let mut results = cached;
        results.extend(executed);
        results.sort_by_key(|&(scenario_idx, part, _)| (scenario_idx, part));
        let mut outcomes: Vec<ScenarioOutcome> = scenarios
            .iter()
            .zip(&part_counts)
            .map(|(s, &parts)| ScenarioOutcome {
                scenario_id: s.id().to_string(),
                title: s.title().to_string(),
                parts,
                reports: Vec::new(),
            })
            .collect();
        for (scenario_idx, _part, reports) in results {
            merge_reports(&mut outcomes[scenario_idx].reports, reports);
        }
        (
            RunSummary {
                params: self.params.clone(),
                outcomes,
            },
            stats,
        )
    }

    fn run_parallel(
        &self,
        scenarios: &[Arc<dyn Scenario>],
        work: VecDeque<(usize, usize)>,
    ) -> Vec<(usize, usize, Vec<ExperimentReport>)> {
        let workers = self.jobs.min(work.len());
        let queue = Mutex::new(work);
        let results = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let item = queue.lock().expect("queue lock").pop_front();
                    let Some((scenario_idx, part)) = item else {
                        break;
                    };
                    let reports = run_one(&*scenarios[scenario_idx], part, &self.params);
                    results
                        .lock()
                        .expect("results lock")
                        .push((scenario_idx, part, reports));
                });
            }
        });
        results.into_inner().expect("results lock")
    }
}

fn run_one(scenario: &dyn Scenario, part: usize, params: &ScenarioParams) -> Vec<ExperimentReport> {
    let mut rng = StdRng::seed_from_u64(part_seed(params.seed, scenario.id(), part));
    scenario.run_part(part, params, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Series;
    use rand::Rng;

    /// A scenario with configurable part count and artificial skew so
    /// parallel completion order differs from part order.
    struct Skewed {
        id: &'static str,
        parts: usize,
    }

    impl Scenario for Skewed {
        fn id(&self) -> &str {
            self.id
        }
        fn title(&self) -> &str {
            "skewed toy scenario"
        }
        fn parts(&self, _params: &ScenarioParams) -> usize {
            self.parts
        }
        fn run_part(
            &self,
            part: usize,
            _params: &ScenarioParams,
            rng: &mut StdRng,
        ) -> Vec<ExperimentReport> {
            // Early parts sleep longest, so with >1 worker the completion
            // order is roughly reversed relative to part order.
            std::thread::sleep(std::time::Duration::from_millis(
                (self.parts - part) as u64 * 3,
            ));
            let mut r = ExperimentReport::new(self.id, "skewed", "part", "value");
            r.push_series(Series::new(
                "trace",
                vec![part as f64],
                vec![rng.gen_range(0.0f64..1.0)],
            ));
            vec![r]
        }
    }

    fn scenarios() -> Vec<Arc<dyn Scenario>> {
        vec![
            Arc::new(Skewed { id: "s1", parts: 4 }),
            Arc::new(Skewed { id: "s2", parts: 2 }),
            Arc::new(Skewed { id: "s3", parts: 1 }),
        ]
    }

    #[test]
    fn parallel_runs_match_sequential_runs_byte_for_byte() {
        let params = ScenarioParams::with_seed(42);
        let sequential = Runner::new(params.clone()).run(&scenarios());
        let parallel = Runner::new(params).jobs(8).run(&scenarios());
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.to_json(), parallel.to_json());
    }

    #[test]
    fn outcomes_follow_selection_order_and_merge_parts_in_order() {
        let summary = Runner::new(ScenarioParams::with_seed(7))
            .jobs(4)
            .run(&scenarios());
        assert_eq!(summary.outcomes.len(), 3);
        assert_eq!(summary.outcomes[0].scenario_id, "s1");
        assert_eq!(summary.outcomes[0].parts, 4);
        let series = &summary.outcomes[0].reports[0].series[0];
        assert_eq!(series.x, vec![0.0, 1.0, 2.0, 3.0], "parts merged in order");
        assert_eq!(summary.report_count(), 3);
    }

    #[test]
    fn different_seeds_change_results() {
        let a = Runner::new(ScenarioParams::with_seed(1)).run(&scenarios());
        let b = Runner::new(ScenarioParams::with_seed(2)).run(&scenarios());
        assert_ne!(a, b);
    }

    #[test]
    fn summary_json_roundtrips() {
        let summary = Runner::new(ScenarioParams::with_seed(3)).run(&scenarios());
        let restored: RunSummary = serde_json::from_str(&summary.to_json()).unwrap();
        assert_eq!(restored, summary);
    }

    fn temp_cache(tag: &str) -> (ResultCache, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "sim-runner-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (ResultCache::open(&dir).unwrap(), dir)
    }

    #[test]
    fn warm_cache_run_executes_nothing_and_matches_cold_run_byte_for_byte() {
        let (cache, dir) = temp_cache("warm");
        let params = ScenarioParams::with_seed(42);
        let uncached = Runner::new(params.clone()).run(&scenarios());
        let (cold, cold_stats) = Runner::new(params.clone())
            .with_cache(cache.clone())
            .run_with_stats(&scenarios());
        let cold_stats = cold_stats.unwrap();
        assert_eq!(cold_stats.misses, 7, "4 + 2 + 1 parts all miss");
        assert_eq!(cold_stats.hits, 0);
        assert_eq!(cold_stats.stored, 7);
        assert_eq!(
            cold.to_json(),
            uncached.to_json(),
            "a cold cached run must not change the summary"
        );
        for jobs in [1, 8] {
            let (warm, warm_stats) = Runner::new(params.clone())
                .jobs(jobs)
                .with_cache(cache.clone())
                .run_with_stats(&scenarios());
            let warm_stats = warm_stats.unwrap();
            assert!(warm_stats.all_hits(), "jobs={jobs}: {warm_stats:?}");
            assert_eq!(warm_stats.hits, 7);
            assert_eq!(
                warm.to_json(),
                cold.to_json(),
                "jobs={jobs}: warm summary must be byte-identical"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn changed_seed_and_overrides_invalidate_the_affected_parts() {
        let (cache, dir) = temp_cache("invalidate");
        let params = ScenarioParams::with_seed(1);
        let runner = |p: ScenarioParams| Runner::new(p).with_cache(cache.clone());
        runner(params.clone()).run(&scenarios());
        // A different seed misses everywhere (part seeds derive from it).
        let (_, stats) = runner(ScenarioParams::with_seed(2)).run_with_stats(&scenarios());
        let stats = stats.unwrap();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 7);
        // Toggling full_scale misses everywhere too.
        let mut full = params.clone();
        full.full_scale = true;
        let (_, stats) = runner(full).run_with_stats(&scenarios());
        assert_eq!(stats.unwrap().hits, 0);
        // An override misses everywhere for scenarios with undeclared keys
        // (the conservative default fingerprints every override).
        let with_override = params.clone().with_override("n", "5");
        let (_, stats) = runner(with_override.clone()).run_with_stats(&scenarios());
        assert_eq!(stats.unwrap().hits, 0);
        // ... and each parameterization stays warm independently.
        let (_, stats) = runner(params).run_with_stats(&scenarios());
        assert!(stats.unwrap().all_hits());
        let (_, stats) = runner(with_override).run_with_stats(&scenarios());
        assert!(stats.unwrap().all_hits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refresh_bypasses_and_overwrites_existing_entries() {
        let (cache, dir) = temp_cache("refresh");
        let params = ScenarioParams::with_seed(9);
        let baseline = Runner::new(params.clone())
            .with_cache(cache.clone())
            .run(&scenarios());
        let (refreshed, stats) = Runner::new(params.clone())
            .with_cache(cache.clone())
            .refresh(true)
            .run_with_stats(&scenarios());
        let stats = stats.unwrap();
        assert_eq!(stats.hits, 0, "refresh must not serve cached entries");
        assert_eq!(stats.invalidated, 7, "all existing entries are bypassed");
        assert_eq!(stats.stored, 7, "and overwritten with fresh results");
        assert_eq!(refreshed.to_json(), baseline.to_json());
        // The refreshed entries are valid: a follow-up run is all hits.
        let (_, stats) = Runner::new(params)
            .with_cache(cache)
            .run_with_stats(&scenarios());
        assert!(stats.unwrap().all_hits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_that_vanishes_mid_run_degrades_to_a_warning() {
        let (cache, dir) = temp_cache("vanish");
        // Replace the cache directory with a plain file after opening, so
        // every store fails; the run itself must still succeed and match
        // the uncached summary.
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::write(&dir, b"in the way").unwrap();
        let params = ScenarioParams::with_seed(4);
        let (summary, stats) = Runner::new(params.clone())
            .with_cache(cache)
            .run_with_stats(&scenarios());
        let stats = stats.unwrap();
        assert_eq!(stats.store_failures, 7);
        assert_eq!(stats.stored, 0);
        assert_eq!(
            summary.to_json(),
            Runner::new(params).run(&scenarios()).to_json()
        );
        let _ = std::fs::remove_file(&dir);
    }
}
