//! Persistent, content-addressed cache of per-part experiment results.
//!
//! Every *(scenario, part)* work item the [`Runner`](crate::runner::Runner)
//! schedules is identified by a [`PartFingerprint`]: a SHA-256 digest over a
//! stable encoding of the cache format version, the scenario id, the part
//! index, the derived [`part_seed`], the population scale and the override
//! map (restricted to the keys the scenario declares via
//! [`Scenario::override_keys`], so unrelated `--set` flags do not invalidate
//! its entries). The [`ResultCache`] stores each part's
//! `Vec<ExperimentReport>` as JSON under that fingerprint; re-running with
//! identical inputs replays the stored reports instead of executing the
//! part, and changing any fingerprinted input changes the key, which makes
//! stale entries unreachable rather than wrong.
//!
//! Entries live at `<dir>/<scenario id>/part<index>-<fingerprint>.json` and
//! embed the fingerprint plus format version again in the payload; a file
//! that no longer matches its own key is treated as invalidated, never
//! served. A file that does not even parse — a torn write from a crashed
//! process, disk corruption — is **quarantined**: renamed to a
//! `.corrupt-*` sibling (preserving the evidence) and degraded to a
//! plain miss with a warning, so one bad entry costs one recompute
//! instead of failing or poisoning a run. The `cache.load` and
//! `cache.store` failpoints ([`crate::faults`]) let a fault schedule
//! rehearse read errors and torn writes deterministically.
//!
//! ```
//! use sim::cache::{CacheLookup, PartFingerprint, ResultCache};
//! use sim::experiment::ExperimentReport;
//! use sim::scenario_api::{Scenario, ScenarioParams};
//! use rand::rngs::StdRng;
//!
//! struct Toy;
//! impl Scenario for Toy {
//!     fn id(&self) -> &str { "toy" }
//!     fn title(&self) -> &str { "toy" }
//!     fn run_part(&self, _: usize, _: &ScenarioParams, _: &mut StdRng)
//!         -> Vec<ExperimentReport> { vec![] }
//! }
//!
//! let dir = std::env::temp_dir().join(format!("sim-cache-doc-{}", std::process::id()));
//! let cache = ResultCache::open(&dir).unwrap();
//! let params = ScenarioParams::with_seed(1);
//! let fp = PartFingerprint::compute(&Toy, 0, &params);
//! assert!(matches!(cache.lookup(&fp), CacheLookup::Miss));
//! let reports = vec![ExperimentReport::new("r", "t", "x", "y")];
//! cache.store(&fp, &reports).unwrap();
//! assert!(matches!(cache.lookup(&fp), CacheLookup::Hit(found) if found == reports));
//! // A different seed derives a different fingerprint -> different entry.
//! assert_ne!(fp, PartFingerprint::compute(&Toy, 0, &ScenarioParams::with_seed(2)));
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use onion_crypto::digest::Digest as _;
use onion_crypto::sha256::Sha256;
use serde::{Deserialize, Serialize};

use crate::experiment::ExperimentReport;
use crate::faults;
use crate::scenario_api::{part_seed, Scenario, ScenarioParams};

/// Version of the on-disk entry layout; part of every fingerprint, so
/// bumping it orphans (rather than misreads) all existing entries.
///
/// v2: the `scale` scenario moved to sharded overlay construction and
/// partitioned wave repair (per-shard RNG streams split from the part
/// seed), which changes its output stream while its fingerprint inputs
/// are unchanged — stale v1 entries would replay old-stream bytes.
///
/// v3: the default shard grid is now gated on the population
/// (`shard::default_shards_for`: one shard below 50k nodes, 64 above),
/// so `scale` parts without an explicit `shards` override changed their
/// output stream again — small parts now run the plain sequential
/// pairing model instead of a 64-shard grid.
pub const CACHE_FORMAT_VERSION: u32 = 3;

/// Whether an override key is relevant to a scenario that declared
/// `declared` consumed keys (`None` = unknown, every key is relevant).
///
/// This single predicate defines override scoping for both the
/// fingerprint hash and the serialized
/// [`WorkItem`](crate::executor::WorkItem) params, keeping the "equal
/// fingerprints imply bytewise-equal work items" invariant from resting
/// on two hand-synchronized copies.
pub(crate) fn override_relevant(declared: Option<&[&str]>, key: &str) -> bool {
    declared.is_none_or(|keys| keys.contains(&key))
}

/// The content-addressed identity of one *(scenario, part, params)*
/// execution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PartFingerprint {
    scenario_id: String,
    part: usize,
    hex: String,
}

impl PartFingerprint {
    /// Computes the fingerprint of `part` of `scenario` under `params`.
    ///
    /// Inputs are fed length-prefixed into SHA-256 so no two field
    /// sequences collide structurally: format version, scenario id, part
    /// index, the derived per-part seed (which already mixes the base seed
    /// with id and part), the scale flag and the relevant overrides in
    /// sorted key order.
    pub fn compute(scenario: &dyn Scenario, part: usize, params: &ScenarioParams) -> Self {
        let mut hasher = Sha256::new();
        let mut feed = |bytes: &[u8]| {
            hasher.update(&(bytes.len() as u64).to_le_bytes());
            hasher.update(bytes);
        };
        feed(b"onionbots-result-cache");
        feed(&CACHE_FORMAT_VERSION.to_le_bytes());
        feed(scenario.id().as_bytes());
        feed(&(part as u64).to_le_bytes());
        feed(&part_seed(params.seed, scenario.id(), part).to_le_bytes());
        feed(&[u8::from(params.full_scale)]);
        let declared = scenario.override_keys();
        for (key, value) in &params.overrides {
            if override_relevant(declared.as_deref(), key) {
                feed(key.as_bytes());
                feed(value.as_bytes());
            }
        }
        PartFingerprint {
            scenario_id: scenario.id().to_string(),
            part,
            hex: onion_crypto::hex::encode(&hasher.finalize()),
        }
    }

    /// Reassembles a fingerprint from its components — the inverse of
    /// reading [`scenario_id`](Self::scenario_id)/[`part`](Self::part)/
    /// [`hex`](Self::hex) off a computed one.
    ///
    /// This is how a work item that traveled across a process boundary
    /// (see [`WorkItem`](crate::executor::WorkItem), whose identity is
    /// exactly this digest) becomes a cache key again without re-running
    /// [`compute`](Self::compute). The digest is not re-derived or
    /// validated here; feeding a hex string that `compute` never produced
    /// simply addresses an entry that does not exist.
    pub fn from_parts(scenario_id: &str, part: usize, hex: &str) -> Self {
        PartFingerprint {
            scenario_id: scenario_id.to_string(),
            part,
            hex: hex.to_string(),
        }
    }

    /// The scenario this fingerprint belongs to.
    pub fn scenario_id(&self) -> &str {
        &self.scenario_id
    }

    /// The part index this fingerprint belongs to.
    pub fn part(&self) -> usize {
        self.part
    }

    /// The hex-encoded SHA-256 digest (the content address).
    pub fn hex(&self) -> &str {
        &self.hex
    }

    /// The entry path relative to the cache root:
    /// `<scenario id>/part<index>-<digest>.json`. Scenario ids are
    /// sanitized to filesystem-safe characters; uniqueness comes from the
    /// digest, which covers the unsanitized id.
    pub fn relative_path(&self) -> PathBuf {
        let safe_id: String = self
            .scenario_id
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        PathBuf::from(safe_id).join(format!("part{:04}-{}.json", self.part, self.hex))
    }
}

/// The outcome of a cache probe.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheLookup {
    /// A valid entry was found; these are its reports.
    Hit(Vec<ExperimentReport>),
    /// No entry exists for this fingerprint.
    Miss,
    /// An entry exists but is unreadable, unparseable or inconsistent with
    /// its own key — it must be re-executed and overwritten.
    Invalid,
}

/// Counters the [`Runner`](crate::runner::Runner) accumulates while
/// consulting a [`ResultCache`].
///
/// Serializable so the simulation service daemon can surface each job's
/// hit/miss/invalidation counts to its clients in the final job frame
/// (the one-shot CLI path prints them to stderr instead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Parts served from the cache without executing.
    pub hits: usize,
    /// Parts with no cache entry, executed and stored.
    pub misses: usize,
    /// Parts whose entry existed but was bypassed (`--refresh`) or
    /// unusable (corrupt / format mismatch), executed and overwritten.
    pub invalidated: usize,
    /// Fresh results successfully written back.
    pub stored: usize,
    /// Fresh results that could not be written back (the run itself still
    /// succeeds).
    pub store_failures: usize,
}

impl CacheStats {
    /// Total parts that were considered.
    pub fn total(&self) -> usize {
        self.hits + self.misses + self.invalidated
    }

    /// Whether every considered part was served from the cache.
    pub fn all_hits(&self) -> bool {
        self.total() > 0 && self.hits == self.total()
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hit(s), {} miss(es), {} invalidated",
            self.hits, self.misses, self.invalidated
        )
    }
}

/// The on-disk JSON payload of one entry. Format version and fingerprint
/// are stored redundantly so a moved or hand-edited file can never be
/// served under the wrong key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CacheEntry {
    format: u32,
    fingerprint: String,
    scenario_id: String,
    part: usize,
    reports: Vec<ExperimentReport>,
}

/// A directory of content-addressed experiment results.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if necessary) a cache rooted at `dir` and probes
    /// that it is writable, so an unusable location fails here — where the
    /// caller can fall back to running uncached — instead of at the first
    /// store.
    ///
    /// # Errors
    /// Returns the underlying error when the directory cannot be created
    /// or written to.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let probe = dir.join(format!(".probe-{}-{}", std::process::id(), next_unique()));
        std::fs::write(&probe, b"")?;
        std::fs::remove_file(&probe)?;
        Ok(ResultCache { dir })
    }

    /// The cache root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The absolute path an entry for `fp` would live at.
    pub fn entry_path(&self, fp: &PartFingerprint) -> PathBuf {
        self.dir.join(fp.relative_path())
    }

    /// Whether an entry file exists for `fp` (without validating it).
    pub fn contains(&self, fp: &PartFingerprint) -> bool {
        self.entry_path(fp).exists()
    }

    /// Probes the cache for `fp`.
    ///
    /// A well-formed entry that mismatches its own key (stale format,
    /// foreign fingerprint) is [`CacheLookup::Invalid`] — recompute and
    /// overwrite. An entry that does not parse at all is *quarantined*:
    /// renamed to a `.corrupt-*` sibling and reported as a plain
    /// [`CacheLookup::Miss`] with a warning, because a torn write must
    /// cost one recompute, never a run failure — and the renamed file
    /// keeps the evidence for a post-mortem.
    pub fn lookup(&self, fp: &PartFingerprint) -> CacheLookup {
        if let Err(e) = faults::hit_io(faults::points::CACHE_LOAD) {
            eprintln!(
                "warning: cache read failed for {}#{} ({e}); degrading to a miss",
                fp.scenario_id, fp.part
            );
            return CacheLookup::Miss;
        }
        let path = self.entry_path(fp);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return CacheLookup::Miss,
            Err(_) => return CacheLookup::Invalid,
        };
        match serde_json::from_str::<CacheEntry>(&text) {
            Ok(entry)
                if entry.format == CACHE_FORMAT_VERSION
                    && entry.fingerprint == fp.hex
                    && entry.scenario_id == fp.scenario_id
                    && entry.part == fp.part =>
            {
                CacheLookup::Hit(entry.reports)
            }
            Ok(_) => CacheLookup::Invalid,
            Err(parse_error) => {
                let quarantine = path.with_extension(format!(
                    "corrupt-{}-{}",
                    std::process::id(),
                    next_unique()
                ));
                match std::fs::rename(&path, &quarantine) {
                    Ok(()) => {
                        eprintln!(
                            "warning: quarantined corrupt cache entry for {}#{} ({parse_error}) as '{}'; degrading to a miss",
                            fp.scenario_id,
                            fp.part,
                            quarantine.display()
                        );
                        CacheLookup::Miss
                    }
                    Err(rename_error) => {
                        // Cannot move it aside; recompute-and-overwrite
                        // still repairs the entry.
                        eprintln!(
                            "warning: corrupt cache entry for {}#{} ({parse_error}) could not be quarantined ({rename_error})",
                            fp.scenario_id, fp.part
                        );
                        CacheLookup::Invalid
                    }
                }
            }
        }
    }

    /// Stores `reports` under `fp`, atomically (write to a temporary file
    /// in the same directory, then rename), overwriting any previous
    /// entry.
    ///
    /// # Errors
    /// Returns the underlying I/O error; callers are expected to treat a
    /// store failure as a warning, not a run failure.
    pub fn store(&self, fp: &PartFingerprint, reports: &[ExperimentReport]) -> io::Result<()> {
        let entry = CacheEntry {
            format: CACHE_FORMAT_VERSION,
            fingerprint: fp.hex.clone(),
            scenario_id: fp.scenario_id.clone(),
            part: fp.part,
            reports: reports.to_vec(),
        };
        let path = self.entry_path(fp);
        let parent = path.parent().expect("entry paths always have a parent");
        std::fs::create_dir_all(parent)?;
        let tmp = parent.join(format!(".tmp-{}-{}", std::process::id(), next_unique()));
        let payload = serde_json::to_string_pretty(&entry).expect("cache entry serializes");
        // The `cache.store` failpoint can fail the store outright or
        // simulate a torn write: half the payload lands under the final
        // name (as if the process died between write and fsync) and the
        // store still reports failure. The next lookup must quarantine
        // the torn entry and recompute — never serve or fail on it.
        match faults::hit(faults::points::CACHE_STORE) {
            Ok(faults::Injected::None) => {}
            Ok(faults::Injected::PartialWrite) => {
                let torn = &payload.as_bytes()[..payload.len() / 2];
                std::fs::write(&tmp, torn)?;
                let _ = std::fs::rename(&tmp, &path);
                return Err(io::Error::other(
                    "injected fault (torn write) at failpoint `cache.store`",
                ));
            }
            Err(e) => return Err(e),
        }
        std::fs::write(&tmp, payload)?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

/// Process-wide counter for collision-free temporary file names (several
/// worker threads may store entries into the same scenario directory).
fn next_unique() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Series;
    use rand::rngs::StdRng;

    struct Toy {
        id: &'static str,
        keys: Option<Vec<&'static str>>,
    }

    impl Scenario for Toy {
        fn id(&self) -> &str {
            self.id
        }
        fn title(&self) -> &str {
            "toy"
        }
        fn override_keys(&self) -> Option<Vec<&str>> {
            self.keys.clone()
        }
        fn run_part(
            &self,
            _part: usize,
            _params: &ScenarioParams,
            _rng: &mut StdRng,
        ) -> Vec<ExperimentReport> {
            vec![]
        }
    }

    fn toy(id: &'static str) -> Toy {
        Toy { id, keys: None }
    }

    fn temp_cache(tag: &str) -> (ResultCache, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "sim-cache-test-{tag}-{}-{}",
            std::process::id(),
            next_unique()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (ResultCache::open(&dir).unwrap(), dir)
    }

    fn sample_reports() -> Vec<ExperimentReport> {
        let mut r = ExperimentReport::new("r1", "title", "x", "y");
        r.push_series(Series::new("s", vec![0.0, 1.0], vec![0.125, 2.5]));
        r.push_note("a note");
        vec![r]
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive_to_every_input() {
        let params = ScenarioParams::with_seed(7);
        let base = PartFingerprint::compute(&toy("a"), 0, &params);
        assert_eq!(base, PartFingerprint::compute(&toy("a"), 0, &params));
        // Part index, scenario id, seed and scale all change the digest.
        assert_ne!(
            base.hex(),
            PartFingerprint::compute(&toy("a"), 1, &params).hex()
        );
        assert_ne!(
            base.hex(),
            PartFingerprint::compute(&toy("b"), 0, &params).hex()
        );
        assert_ne!(
            base.hex(),
            PartFingerprint::compute(&toy("a"), 0, &ScenarioParams::with_seed(8)).hex()
        );
        let mut full = params.clone();
        full.full_scale = true;
        assert_ne!(
            base.hex(),
            PartFingerprint::compute(&toy("a"), 0, &full).hex()
        );
        // ... and so does any override, for a scenario with unknown keys.
        let with_override = params.clone().with_override("n", "100");
        assert_ne!(
            base.hex(),
            PartFingerprint::compute(&toy("a"), 0, &with_override).hex()
        );
        assert_ne!(
            PartFingerprint::compute(&toy("a"), 0, &with_override).hex(),
            PartFingerprint::compute(&toy("a"), 0, &params.clone().with_override("n", "200")).hex()
        );
    }

    #[test]
    fn declared_override_keys_scope_the_fingerprint() {
        let declares_n = Toy {
            id: "a",
            keys: Some(vec!["n"]),
        };
        let params = ScenarioParams::with_seed(7);
        let base = PartFingerprint::compute(&declares_n, 0, &params);
        // An override the scenario does not consume leaves the key alone...
        let unrelated = params.clone().with_override("other", "1");
        assert_eq!(
            base.hex(),
            PartFingerprint::compute(&declares_n, 0, &unrelated).hex()
        );
        // ... while a consumed override changes it.
        let relevant = params.clone().with_override("n", "1");
        assert_ne!(
            base.hex(),
            PartFingerprint::compute(&declares_n, 0, &relevant).hex()
        );
    }

    #[test]
    fn store_then_lookup_roundtrips_reports_exactly() {
        let (cache, dir) = temp_cache("roundtrip");
        let fp = PartFingerprint::compute(&toy("fig-x"), 3, &ScenarioParams::with_seed(1));
        assert_eq!(cache.lookup(&fp), CacheLookup::Miss);
        assert!(!cache.contains(&fp));
        let reports = sample_reports();
        cache.store(&fp, &reports).unwrap();
        assert!(cache.contains(&fp));
        assert_eq!(cache.lookup(&fp), CacheLookup::Hit(reports));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_quarantined_and_degrade_to_misses() {
        let (cache, dir) = temp_cache("corrupt");
        let params = ScenarioParams::with_seed(1);
        let fp = PartFingerprint::compute(&toy("s"), 0, &params);
        // Corrupt JSON — e.g. a torn write that landed under the final
        // name. The entry is moved aside and the lookup is a miss, so
        // the runner recomputes instead of failing the whole run.
        std::fs::create_dir_all(cache.entry_path(&fp).parent().unwrap()).unwrap();
        std::fs::write(cache.entry_path(&fp), b"{ not json").unwrap();
        assert_eq!(cache.lookup(&fp), CacheLookup::Miss);
        assert!(
            !cache.entry_path(&fp).exists(),
            "the corrupt entry is renamed out of the way"
        );
        let quarantined: Vec<_> = std::fs::read_dir(cache.entry_path(&fp).parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.path()
                    .extension()
                    .is_some_and(|ext| ext.to_string_lossy().starts_with("corrupt-"))
            })
            .collect();
        assert_eq!(quarantined.len(), 1, "exactly one quarantined sibling");
        // A later store through the normal path repairs the slot.
        cache.store(&fp, &sample_reports()).unwrap();
        assert_eq!(cache.lookup(&fp), CacheLookup::Hit(sample_reports()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_entries_are_invalid_not_hits() {
        let (cache, dir) = temp_cache("mismatch");
        let params = ScenarioParams::with_seed(1);
        let fp = PartFingerprint::compute(&toy("s"), 0, &params);
        // An entry copied under the wrong key (here: another part's file
        // renamed onto this fingerprint) parses fine but must not be
        // served — and, unlike corruption, it is *not* quarantined: it
        // signals an addressing bug worth loud failure, not bit rot.
        let other = PartFingerprint::compute(&toy("s"), 1, &params);
        cache.store(&other, &sample_reports()).unwrap();
        std::fs::copy(cache.entry_path(&other), cache.entry_path(&fp)).unwrap();
        assert_eq!(cache.lookup(&fp), CacheLookup::Invalid);
        assert!(
            cache.entry_path(&fp).exists(),
            "left in place for forensics"
        );
        // Overwriting through store() repairs it.
        cache.store(&fp, &sample_reports()).unwrap();
        assert_eq!(cache.lookup(&fp), CacheLookup::Hit(sample_reports()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_unusable_locations() {
        let file = std::env::temp_dir().join(format!(
            "sim-cache-test-file-{}-{}",
            std::process::id(),
            next_unique()
        ));
        std::fs::write(&file, b"i am a file").unwrap();
        assert!(
            ResultCache::open(&file).is_err(),
            "a plain file cannot become a cache directory"
        );
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn entry_paths_are_namespaced_and_sanitized() {
        let fp = PartFingerprint::compute(&toy("fig/6 weird"), 2, &ScenarioParams::with_seed(1));
        let rel = fp.relative_path();
        let rendered = rel.to_string_lossy();
        assert!(rendered.starts_with("fig_6_weird/part0002-"));
        assert!(rendered.ends_with(".json"));
        assert_eq!(fp.hex().len(), 64, "full SHA-256 digest in the name");
    }

    #[test]
    fn cache_stats_roundtrip_the_service_line_protocol() {
        // The daemon ships per-job counters to clients in the final job
        // frame; they must survive the newline-delimited JSON framing.
        let stats = CacheStats {
            hits: 3,
            misses: 2,
            invalidated: 1,
            stored: 2,
            store_failures: 1,
        };
        let line = serde_json::to_string(&stats).unwrap();
        assert!(!line.contains('\n'), "one frame per line");
        let parsed: CacheStats = serde_json::from_str(&line).unwrap();
        assert_eq!(parsed, stats);
    }

    #[test]
    fn cache_stats_display_and_totals() {
        let stats = CacheStats {
            hits: 3,
            misses: 2,
            invalidated: 1,
            stored: 3,
            store_failures: 0,
        };
        assert_eq!(stats.total(), 6);
        assert!(!stats.all_hits());
        assert_eq!(stats.to_string(), "3 hit(s), 2 miss(es), 1 invalidated");
        let all = CacheStats {
            hits: 4,
            ..CacheStats::default()
        };
        assert!(all.all_hits());
        assert!(!CacheStats::default().all_hits());
    }
}
