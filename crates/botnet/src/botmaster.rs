//! The botmaster (C&C operator) side of the protocol.
//!
//! The botmaster owns `SK_CC`, learns each bot's `K_B` from its encrypted
//! key report, can therefore compute every bot's current `.onion` address
//! without any communication, signs commands, and issues rental tokens
//! (§IV-D, §IV-E).

use std::collections::BTreeMap;

use onion_crypto::error::CryptoError;
use onion_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use onionbots_core::rotation::AddressSchedule;
use rand::Rng;
use tor_sim::onion::OnionAddress;

use crate::bot::BotId;
use crate::messages::{Audience, CommandKind, SignedCommand};
use crate::rental::RentalToken;

/// The botmaster: key material plus the registry of bots that reported their
/// shared keys.
#[derive(Debug)]
pub struct Botmaster {
    keypair: RsaKeyPair,
    /// Ordered (detlint D001): a future "enumerate every bot" campaign
    /// scenario will iterate this registry, and that sweep must happen in
    /// id order for seed replay to hold.
    bots: BTreeMap<BotId, AddressSchedule>,
    next_sequence: u64,
}

impl Botmaster {
    /// Creates a botmaster with a fresh key pair of `modulus_bits` bits.
    pub fn new<R: Rng + ?Sized>(modulus_bits: usize, rng: &mut R) -> Self {
        Botmaster {
            keypair: RsaKeyPair::generate(modulus_bits, rng),
            bots: BTreeMap::new(),
            next_sequence: 1,
        }
    }

    /// The public key hard-coded into every bot sample.
    pub fn public_key(&self) -> &RsaPublicKey {
        self.keypair.public()
    }

    /// Number of bots that have reported their keys.
    pub fn known_bot_count(&self) -> usize {
        self.bots.len()
    }

    /// Processes an encrypted key report `{K_B}_{PK_CC}` from a bot.
    ///
    /// # Errors
    /// Returns the decryption error for malformed reports, or
    /// [`CryptoError::InvalidLength`] when the recovered key is not 32 bytes.
    pub fn register_key_report(&mut self, bot: BotId, report: &[u8]) -> Result<(), CryptoError> {
        let recovered = self.keypair.decrypt(report)?;
        if recovered.len() != 32 {
            return Err(CryptoError::InvalidLength {
                expected: "32-byte K_B".to_string(),
                actual: recovered.len(),
            });
        }
        let mut k_b = [0u8; 32];
        k_b.copy_from_slice(&recovered);
        self.bots
            .insert(bot, AddressSchedule::new(self.keypair.public(), k_b));
        Ok(())
    }

    /// The `.onion` address of a registered bot during `period` — the
    /// property that lets the C&C "access and control any bot, anytime"
    /// even after address rotation.
    pub fn address_of(&self, bot: BotId, period: u64) -> Option<OnionAddress> {
        self.bots.get(&bot).map(|s| s.address_for_period(period))
    }

    /// Signs a command as the botmaster (no rental token).
    pub fn issue(
        &mut self,
        command: CommandKind,
        audience: Audience,
        now_secs: u64,
    ) -> SignedCommand {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        SignedCommand::sign(&self.keypair, command, audience, sequence, now_secs, None)
    }

    /// Issues a rental token certifying `renter_key` until `expires_at_secs`
    /// for the whitelisted command names.
    pub fn issue_rental_token(
        &self,
        renter_key: &RsaPublicKey,
        expires_at_secs: u64,
        whitelisted_commands: Vec<String>,
    ) -> RentalToken {
        RentalToken::issue(
            &self.keypair,
            renter_key,
            expires_at_secs,
            whitelisted_commands,
        )
    }

    /// Reserves the next command sequence number for a renter-issued
    /// command, keeping the global replay-protection ordering intact.
    pub fn next_sequence_for_renter(&mut self) -> u64 {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        sequence
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bot::Bot;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn key_report_registration_and_address_prediction() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut master = Botmaster::new(768, &mut rng);
        let mut bot = Bot::infect(BotId(1), master.public_key(), &mut rng);
        bot.rally([]);
        let report = bot.key_report(master.public_key(), &mut rng).unwrap();
        master.register_key_report(BotId(1), &report).unwrap();
        assert_eq!(master.known_bot_count(), 1);
        // Without talking to the bot again, the master predicts its address
        // after rotation.
        bot.rotate_to(9);
        assert_eq!(master.address_of(BotId(1), 9), Some(bot.current_address()));
        assert_eq!(master.address_of(BotId(2), 9), None);
    }

    #[test]
    fn malformed_key_reports_are_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut master = Botmaster::new(512, &mut rng);
        assert!(master.register_key_report(BotId(1), &[0u8; 16]).is_err());
        // A correctly encrypted but wrongly sized payload is also rejected.
        let short = master.public_key().encrypt(b"too short", &mut rng).unwrap();
        assert!(matches!(
            master.register_key_report(BotId(1), &short),
            Err(CryptoError::InvalidLength { .. })
        ));
        assert_eq!(master.known_bot_count(), 0);
    }

    #[test]
    fn issued_commands_have_increasing_sequence_numbers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut master = Botmaster::new(512, &mut rng);
        let c1 = master.issue(CommandKind::Maintenance, Audience::Broadcast, 10);
        let c2 = master.issue(CommandKind::Maintenance, Audience::Broadcast, 11);
        assert!(c2.sequence > c1.sequence);
        assert!(c1.verify(master.public_key(), 10));
        assert!(c2.verify(master.public_key(), 11));
    }

    #[test]
    fn rental_tokens_bind_renter_and_whitelist() {
        let mut rng = StdRng::seed_from_u64(4);
        let master = Botmaster::new(512, &mut rng);
        let renter = RsaKeyPair::generate(512, &mut rng);
        let token = master.issue_rental_token(
            renter.public(),
            1_000,
            vec!["simulated-compute".to_string()],
        );
        assert!(token.verify(master.public_key(), 500));
        assert!(!token.verify(master.public_key(), 2_000));
    }
}
