//! A single simulated bot.
//!
//! A bot owns the shared key `K_B` it establishes with the botmaster at
//! infection time, derives its rotating `.onion` addresses from it, keeps a
//! small peer list, and verifies every command it acts on. All command
//! "execution" is an inert counter update.

use std::collections::BTreeSet;

use onion_crypto::error::CryptoError;
use onion_crypto::rsa::RsaPublicKey;
use onionbots_core::rotation::AddressSchedule;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tor_sim::onion::OnionAddress;

use crate::lifecycle::BotState;
use crate::messages::{CommandKind, SignedCommand};

/// Identifier of a bot inside the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BotId(pub u64);

impl std::fmt::Display for BotId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bot{}", self.0)
    }
}

/// Counters of (inert) command executions, used by experiments to check
/// which bots acted on which commands.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionLog {
    /// Maintenance / keep-alive commands processed.
    pub maintenance: u64,
    /// Address rotation commands processed.
    pub rotations: u64,
    /// Simulated DDoS tasks acknowledged (never executed).
    pub simulated_ddos: u64,
    /// Simulated spam tasks acknowledged (never executed).
    pub simulated_spam: u64,
    /// Abstract compute work units acknowledged.
    pub simulated_compute_units: u64,
    /// Peer replacement instructions applied.
    pub peer_replacements: u64,
    /// Commands rejected (bad signature, replay, expired token, ...).
    pub rejected: u64,
}

/// A simulated bot.
#[derive(Debug, Clone)]
pub struct Bot {
    id: BotId,
    state: BotState,
    k_b: [u8; 32],
    schedule: AddressSchedule,
    current_period: u64,
    peers: BTreeSet<OnionAddress>,
    log: ExecutionLog,
    last_sequence: Option<u64>,
}

impl Bot {
    /// Infects a new host: generates `K_B` and the address schedule bound to
    /// the botmaster's public key (which is hard-coded in the sample).
    pub fn infect<R: Rng + ?Sized>(id: BotId, botmaster_key: &RsaPublicKey, rng: &mut R) -> Self {
        let k_b: [u8; 32] = rng.gen();
        Bot {
            id,
            state: BotState::Infection,
            k_b,
            schedule: AddressSchedule::new(botmaster_key, k_b),
            current_period: 0,
            peers: BTreeSet::new(),
            log: ExecutionLog::default(),
            last_sequence: None,
        }
    }

    /// The bot's identifier.
    pub fn id(&self) -> BotId {
        self.id
    }

    /// Current life-cycle state.
    pub fn state(&self) -> BotState {
        self.state
    }

    /// The shared key `K_B` (test/experiment access; the botmaster learns it
    /// through [`Self::key_report`]).
    pub fn k_b(&self) -> [u8; 32] {
        self.k_b
    }

    /// Execution counters so far.
    pub fn log(&self) -> ExecutionLog {
        self.log
    }

    /// The bot's `.onion` address for the current period.
    pub fn current_address(&self) -> OnionAddress {
        self.schedule.address_for_period(self.current_period)
    }

    /// The period index the bot is currently using.
    pub fn current_period(&self) -> u64 {
        self.current_period
    }

    /// The bot's current peer list.
    pub fn peers(&self) -> Vec<OnionAddress> {
        self.peers.iter().copied().collect()
    }

    /// Encrypts `K_B` to the botmaster ({K_B}_{PK_CC}), the report sent
    /// during the rally stage.
    ///
    /// # Errors
    /// Propagates RSA encryption failures.
    pub fn key_report<R: Rng + ?Sized>(
        &self,
        botmaster_key: &RsaPublicKey,
        rng: &mut R,
    ) -> Result<Vec<u8>, CryptoError> {
        botmaster_key.encrypt(&self.k_b, rng)
    }

    /// Rally: joins the overlay with an initial peer list obtained from a
    /// bootstrap strategy, then settles into the waiting state.
    pub fn rally(&mut self, initial_peers: impl IntoIterator<Item = OnionAddress>) {
        self.peers.extend(initial_peers);
        if self.state == BotState::Infection {
            self.state = BotState::Rally;
        }
        if self.state == BotState::Rally {
            self.state = BotState::Waiting;
        }
    }

    /// Adds a peer address (accepting a peering request).
    pub fn add_peer(&mut self, peer: OnionAddress) {
        self.peers.insert(peer);
    }

    /// Removes (forgets) a peer address. Falls back to the rally state when
    /// the last peer disappears.
    pub fn remove_peer(&mut self, peer: OnionAddress) -> bool {
        let removed = self.peers.remove(&peer);
        if self.peers.is_empty() && self.state == BotState::Waiting {
            self.state = BotState::Rally;
        }
        removed
    }

    /// Rotates to a new period: the old address is forgotten and a new one
    /// becomes current. Returns `(old, new)` so callers can announce the
    /// change to peers and re-register the hidden service.
    pub fn rotate_to(&mut self, period: u64) -> (OnionAddress, OnionAddress) {
        let old = self.current_address();
        self.current_period = period;
        (old, self.current_address())
    }

    /// Verifies and (if applicable) acts on a command. Returns `true` when
    /// the bot acted on the command, `false` when it only relays it.
    ///
    /// Rejection reasons (bad signature, replayed sequence number, token
    /// problems) are counted in the execution log.
    pub fn handle_command(
        &mut self,
        command: &SignedCommand,
        botmaster_key: &RsaPublicKey,
        now_secs: u64,
    ) -> bool {
        if !command.verify(botmaster_key, now_secs) {
            self.log.rejected += 1;
            return false;
        }
        if let Some(last) = self.last_sequence {
            if command.sequence <= last {
                // Replay or out-of-order duplicate.
                self.log.rejected += 1;
                return false;
            }
        }
        if !command.applies_to(self.current_address()) {
            // Relay-only: remember the sequence so a later replay directed at
            // us is still rejected.
            self.last_sequence = Some(command.sequence);
            return false;
        }
        self.last_sequence = Some(command.sequence);
        self.state = BotState::Execution;
        match &command.command {
            CommandKind::Maintenance => self.log.maintenance += 1,
            CommandKind::RotateAddresses { period } => {
                self.rotate_to(*period);
                self.log.rotations += 1;
            }
            CommandKind::SimulatedDdos { .. } => self.log.simulated_ddos += 1,
            CommandKind::SimulatedSpam { .. } => self.log.simulated_spam += 1,
            CommandKind::SimulatedCompute { work_units } => {
                self.log.simulated_compute_units += work_units;
            }
            CommandKind::ReplacePeer { drop, adopt } => {
                self.peers.remove(drop);
                self.peers.insert(*adopt);
                self.log.peer_replacements += 1;
            }
        }
        self.state = BotState::Waiting;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Audience;
    use onion_crypto::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn master(seed: u64) -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        RsaKeyPair::generate(512, &mut rng)
    }

    #[test]
    fn infection_to_waiting_life_cycle() {
        let mut rng = StdRng::seed_from_u64(1);
        let cc = master(1);
        let mut bot = Bot::infect(BotId(1), cc.public(), &mut rng);
        assert_eq!(bot.state(), BotState::Infection);
        bot.rally([OnionAddress::from_identifier([9; 10])]);
        assert_eq!(bot.state(), BotState::Waiting);
        assert_eq!(bot.peers().len(), 1);
    }

    #[test]
    fn key_report_lets_the_botmaster_recover_k_b() {
        let mut rng = StdRng::seed_from_u64(2);
        let cc = master(2);
        let bot = Bot::infect(BotId(2), cc.public(), &mut rng);
        let report = bot.key_report(cc.public(), &mut rng).unwrap();
        assert_eq!(cc.decrypt(&report).unwrap(), bot.k_b().to_vec());
    }

    #[test]
    fn address_rotation_changes_the_address_deterministically() {
        let mut rng = StdRng::seed_from_u64(3);
        let cc = master(3);
        let mut bot = Bot::infect(BotId(3), cc.public(), &mut rng);
        let original = bot.current_address();
        let (old, new) = bot.rotate_to(5);
        assert_eq!(old, original);
        assert_ne!(new, original);
        assert_eq!(bot.current_period(), 5);
        // The botmaster can derive the same new address from K_B.
        let schedule = AddressSchedule::new(cc.public(), bot.k_b());
        assert_eq!(schedule.address_for_period(5), new);
    }

    #[test]
    fn valid_broadcast_commands_are_executed_once() {
        let mut rng = StdRng::seed_from_u64(4);
        let cc = master(4);
        let mut bot = Bot::infect(BotId(4), cc.public(), &mut rng);
        bot.rally([]);
        let cmd = SignedCommand::sign(
            &cc,
            CommandKind::SimulatedCompute { work_units: 7 },
            Audience::Broadcast,
            1,
            100,
            None,
        );
        assert!(bot.handle_command(&cmd, cc.public(), 100));
        assert_eq!(bot.log().simulated_compute_units, 7);
        // Replay of the same sequence number is rejected.
        assert!(!bot.handle_command(&cmd, cc.public(), 100));
        assert_eq!(bot.log().rejected, 1);
        assert_eq!(bot.log().simulated_compute_units, 7);
    }

    #[test]
    fn forged_commands_are_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let cc = master(5);
        let impostor = master(6);
        let mut bot = Bot::infect(BotId(5), cc.public(), &mut rng);
        let cmd = SignedCommand::sign(
            &impostor,
            CommandKind::Maintenance,
            Audience::Broadcast,
            1,
            10,
            None,
        );
        assert!(!bot.handle_command(&cmd, cc.public(), 10));
        assert_eq!(bot.log().rejected, 1);
        assert_eq!(bot.log().maintenance, 0);
    }

    #[test]
    fn directed_commands_are_relayed_but_not_executed_by_others() {
        let mut rng = StdRng::seed_from_u64(6);
        let cc = master(7);
        let mut bot = Bot::infect(BotId(6), cc.public(), &mut rng);
        let other_addr = OnionAddress::from_identifier([0xaa; 10]);
        let cmd = SignedCommand::sign(
            &cc,
            CommandKind::Maintenance,
            Audience::Directed(vec![other_addr]),
            1,
            10,
            None,
        );
        assert!(!bot.handle_command(&cmd, cc.public(), 10));
        assert_eq!(bot.log().maintenance, 0);
        assert_eq!(bot.log().rejected, 0, "relaying is not a rejection");
    }

    #[test]
    fn replace_peer_command_updates_the_peer_list() {
        let mut rng = StdRng::seed_from_u64(7);
        let cc = master(8);
        let mut bot = Bot::infect(BotId(7), cc.public(), &mut rng);
        let old_peer = OnionAddress::from_identifier([1; 10]);
        let new_peer = OnionAddress::from_identifier([2; 10]);
        bot.rally([old_peer]);
        let cmd = SignedCommand::sign(
            &cc,
            CommandKind::ReplacePeer {
                drop: old_peer,
                adopt: new_peer,
            },
            Audience::Directed(vec![bot.current_address()]),
            1,
            10,
            None,
        );
        assert!(bot.handle_command(&cmd, cc.public(), 10));
        assert_eq!(bot.peers(), vec![new_peer]);
    }

    #[test]
    fn losing_every_peer_returns_the_bot_to_rally() {
        let mut rng = StdRng::seed_from_u64(8);
        let cc = master(9);
        let mut bot = Bot::infect(BotId(8), cc.public(), &mut rng);
        let p = OnionAddress::from_identifier([3; 10]);
        bot.rally([p]);
        assert_eq!(bot.state(), BotState::Waiting);
        assert!(bot.remove_peer(p));
        assert_eq!(bot.state(), BotState::Rally);
    }
}
