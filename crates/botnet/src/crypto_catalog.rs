//! Table I of the paper: cryptographic use in existing botnet families.
//!
//! The paper contrasts the weak or absent cryptography of known botnets
//! (after discovery and reverse engineering, citing Rossow et al.'s "P2PWNED"
//! study) with the OnionBot design, which encrypts every link and signs every
//! command. The catalog is reproduced here so the `table1` harness binary can
//! regenerate the table and tests can assert its contents.

use serde::{Deserialize, Serialize};

/// Payload encryption used by a botnet family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CryptoUse {
    /// No encryption at all.
    None,
    /// Simple XOR obfuscation.
    Xor,
    /// Chained/rolling XOR obfuscation.
    ChainedXor,
    /// RC4 stream cipher.
    Rc4,
    /// Full transport encryption through Tor circuits plus per-link keys
    /// (the OnionBot design).
    TorAndPerLinkKeys,
}

/// Command signing used by a botnet family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SigningUse {
    /// Commands are not signed.
    None,
    /// RSA with the given modulus size in bits.
    Rsa(u32),
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BotnetFamily {
    /// Family name as used in the paper.
    pub name: String,
    /// Payload encryption.
    pub crypto: CryptoUse,
    /// Command signing.
    pub signing: SigningUse,
    /// Whether replayed commands are accepted.
    pub replay_vulnerable: bool,
}

/// The rows of Table I exactly as printed in the paper, plus the OnionBot
/// design row for comparison.
pub fn table_one() -> Vec<BotnetFamily> {
    vec![
        BotnetFamily {
            name: "Miner".to_string(),
            crypto: CryptoUse::None,
            signing: SigningUse::None,
            replay_vulnerable: true,
        },
        BotnetFamily {
            name: "Storm".to_string(),
            crypto: CryptoUse::Xor,
            signing: SigningUse::None,
            replay_vulnerable: true,
        },
        BotnetFamily {
            name: "ZeroAccess v1".to_string(),
            crypto: CryptoUse::Rc4,
            signing: SigningUse::Rsa(512),
            replay_vulnerable: true,
        },
        BotnetFamily {
            name: "Zeus".to_string(),
            crypto: CryptoUse::ChainedXor,
            signing: SigningUse::Rsa(2048),
            replay_vulnerable: true,
        },
    ]
}

/// The comparison row for the OnionBot design (not part of the paper's
/// table, used by the harness to contrast the designs).
pub fn onionbot_row() -> BotnetFamily {
    BotnetFamily {
        name: "OnionBot (this design)".to_string(),
        crypto: CryptoUse::TorAndPerLinkKeys,
        signing: SigningUse::Rsa(2048),
        replay_vulnerable: false,
    }
}

/// Renders the catalog as a fixed-width text table matching the paper's
/// column order (Botnet, Crypto, Signing, Replay).
pub fn render_table(rows: &[BotnetFamily]) -> String {
    fn crypto_label(c: CryptoUse) -> &'static str {
        match c {
            CryptoUse::None => "none",
            CryptoUse::Xor => "XOR",
            CryptoUse::ChainedXor => "chained XOR",
            CryptoUse::Rc4 => "RC4",
            CryptoUse::TorAndPerLinkKeys => "Tor + per-link keys",
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:<20} {:<10} {:<6}\n",
        "Botnet", "Crypto", "Signing", "Replay"
    ));
    for row in rows {
        let signing = match row.signing {
            SigningUse::None => "none".to_string(),
            SigningUse::Rsa(bits) => format!("RSA {bits}"),
        };
        out.push_str(&format!(
            "{:<24} {:<20} {:<10} {:<6}\n",
            row.name,
            crypto_label(row.crypto),
            signing,
            if row.replay_vulnerable { "yes" } else { "no" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_the_paper() {
        let rows = table_one();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].name, "Miner");
        assert_eq!(rows[0].crypto, CryptoUse::None);
        assert_eq!(rows[1].name, "Storm");
        assert_eq!(rows[1].crypto, CryptoUse::Xor);
        assert_eq!(rows[2].name, "ZeroAccess v1");
        assert_eq!(rows[2].signing, SigningUse::Rsa(512));
        assert_eq!(rows[3].name, "Zeus");
        assert_eq!(rows[3].crypto, CryptoUse::ChainedXor);
        assert_eq!(rows[3].signing, SigningUse::Rsa(2048));
        assert!(rows.iter().all(|r| r.replay_vulnerable));
    }

    #[test]
    fn onionbot_row_contrasts_with_legacy_families() {
        let row = onionbot_row();
        assert_eq!(row.crypto, CryptoUse::TorAndPerLinkKeys);
        assert!(!row.replay_vulnerable);
    }

    #[test]
    fn rendered_table_contains_every_family() {
        let mut rows = table_one();
        rows.push(onionbot_row());
        let rendered = render_table(&rows);
        for name in ["Miner", "Storm", "ZeroAccess v1", "Zeus", "OnionBot"] {
            assert!(rendered.contains(name), "missing {name}");
        }
        assert!(rendered.contains("RSA 2048"));
        assert_eq!(rendered.lines().count(), 6);
    }
}
