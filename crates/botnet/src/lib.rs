//! # botnet
//!
//! The bot life-cycle and C&C layer of the OnionBots (DSN 2015) defensive
//! research simulator (§IV of the paper).
//!
//! * [`lifecycle`] — infection / rally / waiting / execution states.
//! * [`bot`] — a single bot: `K_B`, rotating addresses, peer list, command
//!   verification, inert execution counters.
//! * [`botmaster`] — the C&C side: key reports, address prediction, command
//!   signing, rental-token issuance.
//! * [`messages`] — signed commands, broadcast/directed audiences, uniform
//!   cell framing.
//! * [`bootstrap`] — rally strategies (hardcoded lists, hotlists,
//!   out-of-band, random probing) and their exposure.
//! * [`rental`] — botnet-for-rent tokens (§IV-E).
//! * [`crypto_catalog`] — Table I of the paper.
//! * [`simulation`] — the end-to-end [`simulation::BotnetSimulation`] over
//!   the simulated Tor network.
//!
//! **Scope note.** Everything here is a single-process simulation for
//! defensive research, mirroring the paper's preemptive-analysis goal.
//! Commands are inert data; no code for infection, network attacks or
//! persistence exists in this crate.
//!
//! ```
//! use botnet::simulation::BotnetSimulation;
//! use botnet::messages::CommandKind;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut sim = BotnetSimulation::new(20, &mut rng);
//! sim.infect(10, &mut rng);
//! sim.rally(3, &mut rng);
//! let report = sim.broadcast_command(CommandKind::Maintenance, 2, &mut rng);
//! assert_eq!(report.bots_reached, 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bootstrap;
pub mod bot;
pub mod botmaster;
pub mod crypto_catalog;
pub mod lifecycle;
pub mod messages;
pub mod observer;
pub mod rental;
pub mod simulation;

pub use bot::{Bot, BotId};
pub use botmaster::Botmaster;
pub use simulation::BotnetSimulation;

#[cfg(test)]
mod rental_flow_tests {
    //! The full botnet-for-rent flow from §IV-E: Mallory (botmaster) signs
    //! Trudy's (renter) key into a token, Trudy signs commands, bots accept
    //! whitelisted commands and reject everything else.

    use crate::bot::{Bot, BotId};
    use crate::botmaster::Botmaster;
    use crate::messages::{Audience, CommandKind, SignedCommand};
    use onion_crypto::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn renter_can_issue_whitelisted_commands_only() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mallory = Botmaster::new(768, &mut rng);
        let trudy = RsaKeyPair::generate(512, &mut rng);
        let mut bot = Bot::infect(BotId(1), mallory.public_key(), &mut rng);
        bot.rally([]);

        let token = mallory.issue_rental_token(
            trudy.public(),
            10_000,
            vec!["simulated-compute".to_string()],
        );

        // Whitelisted command signed by Trudy: accepted.
        let allowed = SignedCommand::sign(
            &trudy,
            CommandKind::SimulatedCompute { work_units: 11 },
            Audience::Broadcast,
            mallory.next_sequence_for_renter(),
            100,
            Some(token.clone()),
        );
        assert!(bot.handle_command(&allowed, mallory.public_key(), 100));
        assert_eq!(bot.log().simulated_compute_units, 11);

        // Non-whitelisted command signed by Trudy: rejected.
        let forbidden = SignedCommand::sign(
            &trudy,
            CommandKind::SimulatedDdos {
                target: "example.org".to_string(),
            },
            Audience::Broadcast,
            mallory.next_sequence_for_renter(),
            101,
            Some(token.clone()),
        );
        assert!(!bot.handle_command(&forbidden, mallory.public_key(), 101));

        // Whitelisted command after token expiry: rejected.
        let expired = SignedCommand::sign(
            &trudy,
            CommandKind::SimulatedCompute { work_units: 1 },
            Audience::Broadcast,
            mallory.next_sequence_for_renter(),
            20_000,
            Some(token),
        );
        assert!(!bot.handle_command(&expired, mallory.public_key(), 20_000));
        assert_eq!(bot.log().simulated_compute_units, 11);
    }

    #[test]
    fn renter_cannot_forge_a_token_for_herself() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mallory = Botmaster::new(768, &mut rng);
        let trudy = RsaKeyPair::generate(512, &mut rng);
        let mut bot = Bot::infect(BotId(1), mallory.public_key(), &mut rng);
        bot.rally([]);

        // Trudy signs a token with her own key instead of Mallory's.
        let forged = crate::rental::RentalToken::issue(
            &trudy,
            trudy.public(),
            10_000,
            vec!["simulated-ddos".to_string()],
        );
        let cmd = SignedCommand::sign(
            &trudy,
            CommandKind::SimulatedDdos {
                target: "example.org".to_string(),
            },
            Audience::Broadcast,
            mallory.next_sequence_for_renter(),
            100,
            Some(forged),
        );
        assert!(!bot.handle_command(&cmd, mallory.public_key(), 100));
        assert_eq!(bot.log().simulated_ddos, 0);
    }
}
