//! The network observer's view (§V-A, "Mapping OnionBot").
//!
//! The paper argues that an ISP-level or Tor-level observer cannot map,
//! measure or classify an OnionBot because everything it sees is uniform:
//! fixed-size, encrypted cells with no plaintext source, destination or
//! message type. This module models that observer: it records only what
//! would actually be visible on the simulated wire (cell sizes and counts
//! per observation window) and offers the statistics a defender would try to
//! use, so tests and examples can check that those statistics carry no
//! signal about the underlying commands.

use serde::{Deserialize, Serialize};

/// One observed wire object (a uniform cell between two unknown endpoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedCell {
    /// Size in bytes (always the uniform cell length for OnionBot traffic).
    pub size: usize,
    /// Observation window index (e.g. second) the cell was seen in.
    pub window: u64,
}

/// A passive observer accumulating wire-level observations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireObserver {
    cells: Vec<ObservedCell>,
}

/// Summary statistics available to the observer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservationSummary {
    /// Total cells observed.
    pub total_cells: usize,
    /// Number of distinct cell sizes seen (1 for OnionBot traffic).
    pub distinct_sizes: usize,
    /// The single size if `distinct_sizes == 1`.
    pub uniform_size: Option<usize>,
    /// Shannon entropy (in bits) of the size distribution; 0.0 means the
    /// sizes carry no information at all.
    pub size_entropy_bits: f64,
    /// Cells per observation window (mean).
    pub mean_cells_per_window: f64,
}

impl WireObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        WireObserver::default()
    }

    /// Records a cell of `size` bytes during `window`.
    pub fn observe(&mut self, size: usize, window: u64) {
        self.cells.push(ObservedCell { size, window });
    }

    /// Records `count` identical cells in one window (convenience for bulk
    /// accounting from the Tor statistics).
    pub fn observe_many(&mut self, size: usize, window: u64, count: usize) {
        for _ in 0..count {
            self.observe(size, window);
        }
    }

    /// Number of observations so far.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Computes the summary statistics a defender could extract.
    pub fn summarize(&self) -> ObservationSummary {
        use std::collections::BTreeMap;
        // Ordered maps (detlint D001): the entropy fold below sums floats
        // over these counts, and float addition is not associative — with
        // hash order the entropy of a multi-size distribution could
        // differ between two identical runs. BTreeMap pins the fold order.
        let mut size_counts: BTreeMap<usize, usize> = BTreeMap::new();
        let mut windows: BTreeMap<u64, usize> = BTreeMap::new();
        for cell in &self.cells {
            *size_counts.entry(cell.size).or_default() += 1;
            *windows.entry(cell.window).or_default() += 1;
        }
        let total = self.cells.len();
        let entropy = if total == 0 {
            0.0
        } else {
            size_counts
                .values()
                .map(|&c| {
                    let p = c as f64 / total as f64;
                    -p * p.log2()
                })
                .sum()
        };
        ObservationSummary {
            total_cells: total,
            distinct_sizes: size_counts.len(),
            uniform_size: if size_counts.len() == 1 {
                size_counts.keys().next().copied()
            } else {
                None
            },
            size_entropy_bits: entropy,
            mean_cells_per_window: if windows.is_empty() {
                0.0
            } else {
                total as f64 / windows.len() as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{Audience, CommandKind};
    use crate::simulation::BotnetSimulation;
    use onion_crypto::elligator::UNIFORM_CELL_LEN;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_observer_summary_is_neutral() {
        let summary = WireObserver::new().summarize();
        assert_eq!(summary.total_cells, 0);
        assert_eq!(summary.distinct_sizes, 0);
        assert_eq!(summary.size_entropy_bits, 0.0);
    }

    #[test]
    fn uniform_traffic_has_zero_size_entropy() {
        let mut obs = WireObserver::new();
        obs.observe_many(UNIFORM_CELL_LEN, 0, 100);
        obs.observe_many(UNIFORM_CELL_LEN, 1, 50);
        let summary = obs.summarize();
        assert_eq!(summary.distinct_sizes, 1);
        assert_eq!(summary.uniform_size, Some(UNIFORM_CELL_LEN));
        assert_eq!(summary.size_entropy_bits, 0.0);
        assert!((summary.mean_cells_per_window - 75.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_size_traffic_is_distinguishable_by_contrast() {
        // A hypothetical botnet that does NOT pad its messages leaks
        // information through sizes: entropy is strictly positive.
        let mut obs = WireObserver::new();
        obs.observe_many(120, 0, 50);
        obs.observe_many(900, 0, 50);
        let summary = obs.summarize();
        assert_eq!(summary.distinct_sizes, 2);
        assert!(summary.size_entropy_bits > 0.9);
    }

    #[test]
    fn observer_of_a_real_simulation_sees_only_uniform_cells() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sim = BotnetSimulation::new(25, &mut rng);
        sim.infect(12, &mut rng);
        sim.rally(3, &mut rng);
        let mut observer = WireObserver::new();

        // Observe the wire while two very different commands propagate.
        let before = sim.tor().stats().messages_delivered;
        sim.broadcast_command(CommandKind::Maintenance, 2, &mut rng);
        let after_first = sim.tor().stats().messages_delivered;
        observer.observe_many(UNIFORM_CELL_LEN, 0, (after_first - before) as usize);

        let cmd = {
            let now = sim.clock_secs();
            sim.botmaster_mut().issue(
                CommandKind::SimulatedDdos {
                    target: "a-long-target-label.example.invalid".to_string(),
                },
                Audience::Broadcast,
                now,
            )
        };
        sim.propagate(&cmd, 2, &mut rng);
        let after_second = sim.tor().stats().messages_delivered;
        observer.observe_many(UNIFORM_CELL_LEN, 1, (after_second - after_first) as usize);

        let summary = observer.summarize();
        assert!(summary.total_cells > 0);
        assert_eq!(
            summary.distinct_sizes, 1,
            "both commands look identical on the wire"
        );
        assert_eq!(summary.size_entropy_bits, 0.0);
    }
}
