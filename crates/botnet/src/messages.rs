//! C&C messages: commands, signatures and wire framing.
//!
//! Two classes of messages exist (§IV-D): C&C → bots (broadcast or directed)
//! and bots → C&C (key reports, acknowledgements). Every message is signed,
//! serialized and wrapped in a fixed-size uniform cell so relaying bots can
//! route it without learning its source, destination or nature.
//!
//! All commands are **inert**: "executing" them in the simulator only
//! increments counters. No operational attack capability exists here.

use onion_crypto::elligator::UniformEncoder;
use onion_crypto::error::CryptoError;
use onion_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use rand::Rng;
use serde::{Deserialize, Serialize};
use tor_sim::onion::OnionAddress;

use crate::rental::RentalToken;

/// The kinds of (simulated, inert) commands a botmaster can issue.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommandKind {
    /// Maintenance no-op / keep-alive.
    Maintenance,
    /// Ask bots to rotate their addresses at the given period index.
    RotateAddresses {
        /// Period index to rotate to.
        period: u64,
    },
    /// Simulated denial-of-service task against a named target label.
    SimulatedDdos {
        /// Opaque target label (never contacted).
        target: String,
    },
    /// Simulated spam campaign with a template identifier.
    SimulatedSpam {
        /// Opaque campaign label.
        campaign: String,
    },
    /// Simulated compute task (e.g. mining) measured in abstract work units.
    SimulatedCompute {
        /// Abstract work units to account.
        work_units: u64,
    },
    /// Instruct a bot to replace one of its peers (maintenance message
    /// directed at an individual node).
    ReplacePeer {
        /// Address to drop.
        drop: OnionAddress,
        /// Address to adopt.
        adopt: OnionAddress,
    },
}

impl CommandKind {
    /// Stable name used in rental-token whitelists.
    pub fn name(&self) -> &'static str {
        match self {
            CommandKind::Maintenance => "maintenance",
            CommandKind::RotateAddresses { .. } => "rotate-addresses",
            CommandKind::SimulatedDdos { .. } => "simulated-ddos",
            CommandKind::SimulatedSpam { .. } => "simulated-spam",
            CommandKind::SimulatedCompute { .. } => "simulated-compute",
            CommandKind::ReplacePeer { .. } => "replace-peer",
        }
    }
}

/// Addressing of a command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Audience {
    /// Every bot should act on the command.
    Broadcast,
    /// Only the bots whose current addresses are listed should act; others
    /// relay without acting (and cannot tell the difference from outside the
    /// envelope).
    Directed(Vec<OnionAddress>),
}

/// A signed command envelope.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedCommand {
    /// The command payload.
    pub command: CommandKind,
    /// Who should act on it.
    pub audience: Audience,
    /// Monotonic sequence number (replay protection).
    pub sequence: u64,
    /// Issue time (seconds).
    pub issued_at_secs: u64,
    /// Rental token when the issuer is a renter rather than the botmaster.
    pub token: Option<RentalToken>,
    /// Signature over the canonical encoding, by the botmaster or renter.
    pub signature: Vec<u8>,
}

impl SignedCommand {
    fn signing_bytes(
        command: &CommandKind,
        audience: &Audience,
        sequence: u64,
        issued_at_secs: u64,
        token: &Option<RentalToken>,
    ) -> Vec<u8> {
        // serde_json is stable for this fixed structure and keeps the
        // canonical form human-auditable.
        let canonical = serde_json::json!({
            "command": command,
            "audience": audience,
            "sequence": sequence,
            "issued_at_secs": issued_at_secs,
            "token": token,
        });
        canonical.to_string().into_bytes()
    }

    /// Signs a command with the given key (botmaster, or renter when a token
    /// is attached).
    pub fn sign(
        signer: &RsaKeyPair,
        command: CommandKind,
        audience: Audience,
        sequence: u64,
        issued_at_secs: u64,
        token: Option<RentalToken>,
    ) -> Self {
        let body = Self::signing_bytes(&command, &audience, sequence, issued_at_secs, &token);
        let signature = signer.sign(&body);
        SignedCommand {
            command,
            audience,
            sequence,
            issued_at_secs,
            token,
            signature,
        }
    }

    /// Verifies the command as a bot would (§IV-E): directly signed commands
    /// must verify under the botmaster key; token-bearing commands must carry
    /// a valid token (signed by the botmaster, unexpired, whitelisting the
    /// command) and verify under the renter key embedded in the token.
    pub fn verify(&self, botmaster: &RsaPublicKey, now_secs: u64) -> bool {
        let body = Self::signing_bytes(
            &self.command,
            &self.audience,
            self.sequence,
            self.issued_at_secs,
            &self.token,
        );
        match &self.token {
            None => botmaster.verify(&body, &self.signature),
            Some(token) => {
                if !token.verify(botmaster, now_secs) {
                    return false;
                }
                if !token.permits(&self.command) {
                    return false;
                }
                let Ok(renter_key) = RsaPublicKey::decode(&token.renter_public_key) else {
                    return false;
                };
                renter_key.verify(&body, &self.signature)
            }
        }
    }

    /// Whether a bot with address `addr` should act on (not merely relay)
    /// this command.
    pub fn applies_to(&self, addr: OnionAddress) -> bool {
        match &self.audience {
            Audience::Broadcast => true,
            Audience::Directed(list) => list.contains(&addr),
        }
    }

    /// Serializes and wraps the command in a fixed-size uniform cell under a
    /// link key.
    ///
    /// # Errors
    /// Propagates encoding failures (oversized command).
    pub fn to_cell<R: Rng + ?Sized>(
        &self,
        encoder: &UniformEncoder,
        rng: &mut R,
    ) -> Result<Vec<u8>, CryptoError> {
        let bytes =
            serde_json::to_vec(self).map_err(|e| CryptoError::InvalidEncoding(e.to_string()))?;
        encoder.encode(&bytes, rng)
    }

    /// Decodes a command from a uniform cell.
    ///
    /// # Errors
    /// Fails when the cell cannot be decoded or does not contain a valid
    /// command structure.
    pub fn from_cell(encoder: &UniformEncoder, cell: &[u8]) -> Result<Self, CryptoError> {
        let bytes = encoder.decode(cell)?;
        serde_json::from_slice(&bytes).map_err(|e| CryptoError::InvalidEncoding(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(seed: u64) -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        RsaKeyPair::generate(512, &mut rng)
    }

    #[test]
    fn botmaster_signed_broadcast_verifies() {
        let master = keypair(1);
        let cmd = SignedCommand::sign(
            &master,
            CommandKind::Maintenance,
            Audience::Broadcast,
            1,
            100,
            None,
        );
        assert!(cmd.verify(master.public(), 100));
        assert!(cmd.applies_to(OnionAddress::from_identifier([1; 10])));
    }

    #[test]
    fn tampered_commands_fail_verification() {
        let master = keypair(2);
        let mut cmd = SignedCommand::sign(
            &master,
            CommandKind::SimulatedDdos {
                target: "example.com".to_string(),
            },
            Audience::Broadcast,
            2,
            100,
            None,
        );
        cmd.command = CommandKind::SimulatedDdos {
            target: "other.example".to_string(),
        };
        assert!(!cmd.verify(master.public(), 100));
    }

    #[test]
    fn commands_from_unrelated_keys_are_rejected() {
        let master = keypair(3);
        let impostor = keypair(4);
        let cmd = SignedCommand::sign(
            &impostor,
            CommandKind::Maintenance,
            Audience::Broadcast,
            1,
            50,
            None,
        );
        assert!(!cmd.verify(master.public(), 50));
    }

    #[test]
    fn directed_commands_only_apply_to_listed_addresses() {
        let master = keypair(5);
        let a = OnionAddress::from_identifier([1; 10]);
        let b = OnionAddress::from_identifier([2; 10]);
        let cmd = SignedCommand::sign(
            &master,
            CommandKind::ReplacePeer { drop: a, adopt: b },
            Audience::Directed(vec![a]),
            7,
            10,
            None,
        );
        assert!(cmd.applies_to(a));
        assert!(!cmd.applies_to(b));
    }

    #[test]
    fn uniform_cell_roundtrip_and_size_uniformity() {
        let master = keypair(6);
        let mut rng = StdRng::seed_from_u64(7);
        let encoder = UniformEncoder::new([9u8; 32]);
        let small = SignedCommand::sign(
            &master,
            CommandKind::Maintenance,
            Audience::Broadcast,
            1,
            5,
            None,
        );
        let large = SignedCommand::sign(
            &master,
            CommandKind::SimulatedSpam {
                campaign: "c".repeat(80),
            },
            Audience::Broadcast,
            2,
            5,
            None,
        );
        let cell_small = small.to_cell(&encoder, &mut rng).unwrap();
        let cell_large = large.to_cell(&encoder, &mut rng).unwrap();
        assert_eq!(
            cell_small.len(),
            cell_large.len(),
            "cells are indistinguishable by size"
        );
        assert_eq!(
            SignedCommand::from_cell(&encoder, &cell_small).unwrap(),
            small
        );
        assert_eq!(
            SignedCommand::from_cell(&encoder, &cell_large).unwrap(),
            large
        );
    }

    #[test]
    fn command_names_are_stable() {
        assert_eq!(CommandKind::Maintenance.name(), "maintenance");
        assert_eq!(
            CommandKind::SimulatedCompute { work_units: 5 }.name(),
            "simulated-compute"
        );
    }
}
