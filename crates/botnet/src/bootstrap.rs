//! Bootstrap (rally) strategies (§IV-B).
//!
//! The paper analyses four ways a newly infected bot can find existing
//! members — hardcoded peer lists, hotlists (webcaches), random probing and
//! out-of-band channels — and concludes that OnionBots would combine
//! hardcoded peer lists with hotlists (random probing of the 32^16 onion
//! address space is infeasible). The strategies are modelled here so that
//! experiments can compare exposure (how many addresses a defender learns
//! from one captured bot).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tor_sim::onion::OnionAddress;

/// The size of the v2 onion address space (32^16); random probing is
/// intractable, which is why the strategy is modelled but always fails.
pub const ONION_ADDRESS_SPACE_LOG2: u32 = 80;

/// A bootstrap strategy with its configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BootstrapStrategy {
    /// A peer list embedded in the sample. `inclusion_probability` is the
    /// per-entry probability `p` with which an infecting bot shares each of
    /// its own peers with the new victim.
    HardcodedPeerList {
        /// Addresses embedded in the sample.
        peers: Vec<OnionAddress>,
        /// Probability that each known peer was included.
        inclusion_probability: f64,
    },
    /// A list of hotlist (webcache) services to query; each returns a subset
    /// of currently known members.
    Hotlist {
        /// Addresses of hotlist services.
        caches: Vec<OnionAddress>,
        /// Peers returned per query.
        peers_per_query: usize,
    },
    /// Peer list delivered through another infrastructure (DHT, social
    /// network post, ...). Modelled as an opaque channel holding addresses.
    OutOfBand {
        /// Addresses retrieved from the out-of-band channel.
        peers: Vec<OnionAddress>,
        /// Label of the channel (e.g. "bittorrent-dht", "social-media").
        channel: String,
    },
    /// Random probing of the onion address space — kept for completeness;
    /// always yields nothing in any realistic budget.
    RandomProbing {
        /// Number of addresses the bot is willing to probe.
        probe_budget: u64,
    },
}

impl BootstrapStrategy {
    /// The peers a new bot obtains from this strategy, given the set of
    /// currently live members (used by hotlists) and an RNG.
    pub fn initial_peers<R: Rng + ?Sized>(
        &self,
        live_members: &[OnionAddress],
        rng: &mut R,
    ) -> Vec<OnionAddress> {
        match self {
            BootstrapStrategy::HardcodedPeerList {
                peers,
                inclusion_probability,
            } => peers
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(inclusion_probability.clamp(0.0, 1.0)))
                .collect(),
            BootstrapStrategy::Hotlist {
                caches,
                peers_per_query,
            } => {
                if caches.is_empty() {
                    return Vec::new();
                }
                live_members
                    .choose_multiple(rng, (*peers_per_query).min(live_members.len()))
                    .copied()
                    .collect()
            }
            BootstrapStrategy::OutOfBand { peers, .. } => peers.clone(),
            BootstrapStrategy::RandomProbing { probe_budget } => {
                // Probability of hitting any live member is
                // |members| / 2^80 per probe — effectively zero. We model the
                // expected number of hits and round down.
                let hit_probability =
                    live_members.len() as f64 / 2f64.powi(ONION_ADDRESS_SPACE_LOG2 as i32);
                let expected_hits = hit_probability * *probe_budget as f64;
                if expected_hits >= 1.0 {
                    live_members.choose(rng).into_iter().copied().collect()
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// How many member addresses an adversary learns by fully reverse
    /// engineering one bot bootstrapped with this strategy (the "exposure"
    /// the paper argues stays small).
    pub fn exposure(&self) -> usize {
        match self {
            BootstrapStrategy::HardcodedPeerList { peers, .. } => peers.len(),
            BootstrapStrategy::Hotlist { caches, .. } => caches.len(),
            BootstrapStrategy::OutOfBand { peers, .. } => peers.len(),
            BootstrapStrategy::RandomProbing { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn addresses(n: usize) -> Vec<OnionAddress> {
        (0..n)
            .map(|i| {
                let mut id = [0u8; 10];
                id[0] = (i % 256) as u8;
                id[1] = (i / 256) as u8;
                OnionAddress::from_identifier(id)
            })
            .collect()
    }

    #[test]
    fn hardcoded_list_includes_each_peer_with_probability_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let peers = addresses(1000);
        let strategy = BootstrapStrategy::HardcodedPeerList {
            peers: peers.clone(),
            inclusion_probability: 0.3,
        };
        let selected = strategy.initial_peers(&peers, &mut rng);
        assert!(
            (200..400).contains(&selected.len()),
            "got {}",
            selected.len()
        );
        for p in &selected {
            assert!(peers.contains(p));
        }
    }

    #[test]
    fn hotlist_returns_requested_number_of_live_members() {
        let mut rng = StdRng::seed_from_u64(2);
        let members = addresses(50);
        let strategy = BootstrapStrategy::Hotlist {
            caches: addresses(3),
            peers_per_query: 5,
        };
        let selected = strategy.initial_peers(&members, &mut rng);
        assert_eq!(selected.len(), 5);
        // Hotlist with no caches yields nothing.
        let empty = BootstrapStrategy::Hotlist {
            caches: Vec::new(),
            peers_per_query: 5,
        };
        assert!(empty.initial_peers(&members, &mut rng).is_empty());
    }

    #[test]
    fn out_of_band_returns_the_delivered_list() {
        let mut rng = StdRng::seed_from_u64(3);
        let delivered = addresses(4);
        let strategy = BootstrapStrategy::OutOfBand {
            peers: delivered.clone(),
            channel: "bittorrent-dht".to_string(),
        };
        assert_eq!(strategy.initial_peers(&addresses(100), &mut rng), delivered);
    }

    #[test]
    fn random_probing_is_hopeless_at_any_realistic_budget() {
        let mut rng = StdRng::seed_from_u64(4);
        let members = addresses(100_000);
        let strategy = BootstrapStrategy::RandomProbing {
            probe_budget: 1_000_000_000,
        };
        assert!(strategy.initial_peers(&members, &mut rng).is_empty());
        assert_eq!(strategy.exposure(), 0);
    }

    #[test]
    fn exposure_reflects_what_a_captured_bot_reveals() {
        assert_eq!(
            BootstrapStrategy::HardcodedPeerList {
                peers: addresses(7),
                inclusion_probability: 0.5
            }
            .exposure(),
            7
        );
        assert_eq!(
            BootstrapStrategy::Hotlist {
                caches: addresses(2),
                peers_per_query: 10
            }
            .exposure(),
            2
        );
    }
}
