//! Bot life-cycle states (§IV-A).
//!
//! "OnionBot retains the life cycle of a typical peer-to-peer bot", but every
//! stage has Tor-specific behaviour: infection creates a `.onion` identity
//! and key material, rally bootstraps into the self-healing overlay, waiting
//! rotates addresses while listening for commands, execution runs
//! authenticated commands. In this simulator "execution" only increments
//! counters — commands are inert data.

use serde::{Deserialize, Serialize};

/// The four life-cycle stages of a bot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BotState {
    /// Freshly compromised host: generates its key material and `.onion`
    /// identity.
    Infection,
    /// Looking for existing members of the overlay (bootstrapping).
    Rally,
    /// Connected and idle, rotating addresses and relaying traffic.
    Waiting,
    /// Executing an authenticated command from the botmaster.
    Execution,
}

impl BotState {
    /// Whether the transition `self -> next` is allowed by the life cycle.
    ///
    /// Infection → Rally → Waiting ⇄ Execution; a bot can also fall back to
    /// Rally from Waiting when it loses all of its peers.
    pub fn can_transition_to(self, next: BotState) -> bool {
        use BotState::{Execution, Infection, Rally, Waiting};
        matches!(
            (self, next),
            (Infection, Rally)
                | (Rally, Waiting)
                | (Waiting, Execution)
                | (Execution, Waiting)
                | (Waiting, Rally)
        )
    }
}

impl std::fmt::Display for BotState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            BotState::Infection => "infection",
            BotState::Rally => "rally",
            BotState::Waiting => "waiting",
            BotState::Execution => "execution",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use BotState::{Execution, Infection, Rally, Waiting};

    #[test]
    fn normal_life_cycle_is_permitted() {
        assert!(Infection.can_transition_to(Rally));
        assert!(Rally.can_transition_to(Waiting));
        assert!(Waiting.can_transition_to(Execution));
        assert!(Execution.can_transition_to(Waiting));
    }

    #[test]
    fn losing_all_peers_sends_a_bot_back_to_rally() {
        assert!(Waiting.can_transition_to(Rally));
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        assert!(!Infection.can_transition_to(Waiting));
        assert!(!Infection.can_transition_to(Execution));
        assert!(!Rally.can_transition_to(Execution));
        assert!(!Execution.can_transition_to(Infection));
        assert!(!Waiting.can_transition_to(Infection));
        assert!(!Waiting.can_transition_to(Waiting));
    }

    #[test]
    fn display_names_are_lowercase() {
        for s in [Infection, Rally, Waiting, Execution] {
            assert_eq!(s.to_string(), s.to_string().to_lowercase());
        }
    }
}
