//! Botnet-for-rent tokens (§IV-E).
//!
//! "Trudy sends her public key PK_T to Mallory, to be signed by the private
//! key of Mallory SK_M. The signed message (T_T) acts as a token containing
//! PK_T, an expiration time, and a list of whitelisted commands." Bots verify
//! a renter's command by checking the token signature (chain of trust to the
//! botmaster), the expiration timestamp, and the whitelist.

use onion_crypto::rsa::{EncodedPublicKey, RsaKeyPair, RsaPublicKey};
use serde::{Deserialize, Serialize};

use crate::messages::CommandKind;

/// A rental token: the botmaster's certification of a renter key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RentalToken {
    /// The renter's public key.
    pub renter_public_key: EncodedPublicKey,
    /// Expiration time (seconds); commands verified after this time fail.
    pub expires_at_secs: u64,
    /// Names of the commands the renter may issue (see
    /// [`CommandKind::name`]).
    pub whitelisted_commands: Vec<String>,
    /// Botmaster signature over the token body.
    pub signature: Vec<u8>,
}

impl RentalToken {
    fn signing_bytes(
        renter_public_key: &EncodedPublicKey,
        expires_at_secs: u64,
        whitelisted_commands: &[String],
    ) -> Vec<u8> {
        let canonical = serde_json::json!({
            "renter": renter_public_key,
            "expires_at_secs": expires_at_secs,
            "whitelist": whitelisted_commands,
        });
        canonical.to_string().into_bytes()
    }

    /// Issues a token: the botmaster signs the renter's key, an expiration
    /// time and a command whitelist.
    pub fn issue(
        botmaster: &RsaKeyPair,
        renter_public_key: &RsaPublicKey,
        expires_at_secs: u64,
        whitelisted_commands: Vec<String>,
    ) -> Self {
        let renter_public_key = renter_public_key.encode();
        let body = Self::signing_bytes(&renter_public_key, expires_at_secs, &whitelisted_commands);
        let signature = botmaster.sign(&body);
        RentalToken {
            renter_public_key,
            expires_at_secs,
            whitelisted_commands,
            signature,
        }
    }

    /// Verifies the token: signed by the botmaster and not expired.
    pub fn verify(&self, botmaster: &RsaPublicKey, now_secs: u64) -> bool {
        if now_secs > self.expires_at_secs {
            return false;
        }
        let body = Self::signing_bytes(
            &self.renter_public_key,
            self.expires_at_secs,
            &self.whitelisted_commands,
        );
        botmaster.verify(&body, &self.signature)
    }

    /// Whether the token whitelists the given command kind.
    pub fn permits(&self, command: &CommandKind) -> bool {
        self.whitelisted_commands
            .iter()
            .any(|name| name == command.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(seed: u64) -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        RsaKeyPair::generate(512, &mut rng)
    }

    #[test]
    fn issued_tokens_verify_until_expiry() {
        let master = keypair(1);
        let renter = keypair(2);
        let token = RentalToken::issue(
            &master,
            renter.public(),
            1_000,
            vec!["simulated-compute".to_string()],
        );
        assert!(token.verify(master.public(), 999));
        assert!(token.verify(master.public(), 1_000));
        assert!(
            !token.verify(master.public(), 1_001),
            "expired tokens are rejected"
        );
    }

    #[test]
    fn tokens_from_other_masters_are_rejected() {
        let master = keypair(3);
        let other = keypair(4);
        let renter = keypair(5);
        let token = RentalToken::issue(&other, renter.public(), 500, vec![]);
        assert!(!token.verify(master.public(), 100));
    }

    #[test]
    fn tampering_with_the_whitelist_breaks_the_token() {
        let master = keypair(6);
        let renter = keypair(7);
        let mut token = RentalToken::issue(
            &master,
            renter.public(),
            500,
            vec!["maintenance".to_string()],
        );
        token
            .whitelisted_commands
            .push("simulated-ddos".to_string());
        assert!(!token.verify(master.public(), 100));
    }

    #[test]
    fn whitelist_controls_permitted_commands() {
        let master = keypair(8);
        let renter = keypair(9);
        let token = RentalToken::issue(
            &master,
            renter.public(),
            500,
            vec!["simulated-compute".to_string(), "maintenance".to_string()],
        );
        assert!(token.permits(&CommandKind::SimulatedCompute { work_units: 1 }));
        assert!(token.permits(&CommandKind::Maintenance));
        assert!(!token.permits(&CommandKind::SimulatedDdos {
            target: "x".to_string()
        }));
    }
}
