//! End-to-end botnet simulation over the simulated Tor network.
//!
//! [`BotnetSimulation`] wires the pieces together: bots register hidden
//! services in [`tor_sim::TorNetwork`], report their keys to the
//! [`Botmaster`], peer with each other to form the overlay, and propagate
//! signed commands by gossip — every hop delivered through Tor by onion
//! address and wrapped in a fixed-size uniform cell under a per-link key.
//!
//! Experiments use it to measure command coverage before and after
//! takedowns, and the mitigation crate reuses its bot population for SOAP.

#[allow(clippy::disallowed_types)]
// detlint: allow(D001) reason="imported only for the membership-only `reached` set in propagate()"
use std::collections::HashSet;
use std::collections::{BTreeMap, VecDeque};

use onion_crypto::elligator::UniformEncoder;
use onion_crypto::kdf::derive_link_key;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tor_sim::network::TorNetwork;
use tor_sim::onion::OnionAddress;

use crate::bot::{Bot, BotId};
use crate::botmaster::Botmaster;
use crate::messages::{Audience, CommandKind, SignedCommand};

/// Outcome of propagating one command through the botnet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropagationReport {
    /// Bots that received the command (acted or relayed).
    pub bots_reached: usize,
    /// Bots that acted on the command.
    pub bots_executed: usize,
    /// Live bots at propagation time.
    pub population: usize,
    /// Gossip rounds needed.
    pub rounds: usize,
    /// Point-to-point Tor deliveries attempted.
    pub messages_sent: usize,
    /// Deliveries that failed (descriptor missing or service down).
    pub messages_failed: usize,
}

impl PropagationReport {
    /// Fraction of the live population reached.
    pub fn coverage(&self) -> f64 {
        if self.population == 0 {
            return 0.0;
        }
        self.bots_reached as f64 / self.population as f64
    }
}

/// The complete simulated botnet: Tor substrate, botmaster and bot
/// population.
#[derive(Debug)]
pub struct BotnetSimulation {
    tor: TorNetwork,
    botmaster: Botmaster,
    /// Ordered (detlint D001): `publish_all_descriptors` and `rotate_all`
    /// iterate the population, so bot order must be id order, not hash
    /// order, for seed replay to hold.
    bots: BTreeMap<BotId, Bot>,
    /// Ordered (detlint D001): point lookups today, but rebuilt during
    /// rotation and one `keys()` sweep away from leaking into gossip.
    address_index: BTreeMap<OnionAddress, BotId>,
    link_secret: Vec<u8>,
    clock_secs: u64,
}

impl BotnetSimulation {
    /// Creates a simulation with `relay_count` Tor relays and a fresh
    /// botmaster.
    pub fn new<R: Rng + ?Sized>(relay_count: usize, rng: &mut R) -> Self {
        let botmaster = Botmaster::new(768, rng);
        let link_secret = botmaster.public_key().to_bytes();
        BotnetSimulation {
            tor: TorNetwork::new(relay_count, rng),
            botmaster,
            bots: BTreeMap::new(),
            address_index: BTreeMap::new(),
            link_secret,
            clock_secs: 0,
        }
    }

    /// Read access to the Tor network (statistics, consensus manipulation).
    pub fn tor(&self) -> &TorNetwork {
        &self.tor
    }

    /// Read access to the botmaster.
    pub fn botmaster(&self) -> &Botmaster {
        &self.botmaster
    }

    /// Mutable access to the botmaster (issuing commands / tokens).
    pub fn botmaster_mut(&mut self) -> &mut Botmaster {
        &mut self.botmaster
    }

    /// Number of live bots.
    pub fn bot_count(&self) -> usize {
        self.bots.len()
    }

    /// The live bots' identifiers, in ascending order.
    pub fn bot_ids(&self) -> Vec<BotId> {
        self.bots.keys().copied().collect()
    }

    /// Current onion address of a bot.
    pub fn address_of(&self, bot: BotId) -> Option<OnionAddress> {
        self.bots.get(&bot).map(Bot::current_address)
    }

    /// A bot's execution log.
    pub fn log_of(&self, bot: BotId) -> Option<crate::bot::ExecutionLog> {
        self.bots.get(&bot).map(Bot::log)
    }

    /// A bot's peer list.
    pub fn peers_of(&self, bot: BotId) -> Option<Vec<OnionAddress>> {
        self.bots.get(&bot).map(Bot::peers)
    }

    /// Current simulation clock in seconds.
    pub fn clock_secs(&self) -> u64 {
        self.clock_secs
    }

    /// Advances the clock (and the Tor consensus).
    pub fn advance_time(&mut self, secs: u64) {
        self.clock_secs += secs;
        self.tor.advance_time(secs);
    }

    /// Infects `count` new bots: each generates its identity, registers its
    /// hidden service, and reports `K_B` to the botmaster.
    pub fn infect<R: Rng + ?Sized>(&mut self, count: usize, rng: &mut R) -> Vec<BotId> {
        let mut new_ids = Vec::with_capacity(count);
        let start = self.bots.len() as u64;
        for i in 0..count {
            let id = BotId(start + i as u64);
            let bot = Bot::infect(id, self.botmaster.public_key(), rng);
            let addr = bot.current_address();
            self.tor.register_hidden_service(addr, None);
            self.tor
                .announce_service(addr)
                .expect("freshly registered services can announce");
            let report = bot
                .key_report(self.botmaster.public_key(), rng)
                .expect("32-byte key always fits under a 768-bit modulus");
            self.botmaster
                .register_key_report(id, &report)
                .expect("self-produced reports decrypt");
            self.address_index.insert(addr, id);
            self.bots.insert(id, bot);
            new_ids.push(id);
        }
        new_ids
    }

    /// Rally: every bot peers with `k` random other bots (mutual edges),
    /// forming the initial overlay.
    pub fn rally<R: Rng + ?Sized>(&mut self, k: usize, rng: &mut R) {
        let ids = self.bot_ids();
        let addresses: BTreeMap<BotId, OnionAddress> = ids
            .iter()
            .map(|&id| (id, self.bots[&id].current_address()))
            .collect();
        for &id in &ids {
            let mut others: Vec<BotId> = ids.iter().copied().filter(|&o| o != id).collect();
            others.shuffle(rng);
            let chosen: Vec<BotId> = others.into_iter().take(k).collect();
            let peer_addrs: Vec<OnionAddress> = chosen.iter().map(|o| addresses[o]).collect();
            if let Some(bot) = self.bots.get_mut(&id) {
                bot.rally(peer_addrs);
            }
            let my_addr = addresses[&id];
            for other in chosen {
                if let Some(other_bot) = self.bots.get_mut(&other) {
                    other_bot.add_peer(my_addr);
                }
            }
        }
    }

    /// Takes a bot down (defender cleanup): its hidden service is
    /// deregistered and it stops processing messages. Peers are *not*
    /// notified — they discover the loss when deliveries fail.
    pub fn take_down(&mut self, bot: BotId) -> bool {
        if let Some(b) = self.bots.remove(&bot) {
            let addr = b.current_address();
            self.tor.deregister_hidden_service(addr);
            self.address_index.remove(&addr);
            true
        } else {
            false
        }
    }

    fn encoder_for(&self, a: OnionAddress, b: OnionAddress) -> UniformEncoder {
        let key = derive_link_key(&self.link_secret, &a.identifier(), &b.identifier());
        UniformEncoder::new(key)
    }

    /// Issues a command as the botmaster and propagates it by gossip from
    /// `seeds` randomly chosen bots.
    pub fn broadcast_command<R: Rng + ?Sized>(
        &mut self,
        command: CommandKind,
        seeds: usize,
        rng: &mut R,
    ) -> PropagationReport {
        let signed = self
            .botmaster
            .issue(command, Audience::Broadcast, self.clock_secs);
        self.propagate(&signed, seeds, rng)
    }

    /// Propagates an already-signed command (used for renter-issued
    /// commands) by gossip from `seeds` random entry bots.
    pub fn propagate<R: Rng + ?Sized>(
        &mut self,
        command: &SignedCommand,
        seeds: usize,
        rng: &mut R,
    ) -> PropagationReport {
        let mut report = PropagationReport {
            population: self.bots.len(),
            ..PropagationReport::default()
        };
        if self.bots.is_empty() {
            return report;
        }
        let botmaster_key = self.botmaster.public_key().clone();
        let mut seed_ids = self.bot_ids();
        seed_ids.shuffle(rng);
        seed_ids.truncate(seeds.max(1));

        #[allow(clippy::disallowed_types)]
        // detlint: allow(D001) reason="membership-only: insert/contains/len; iteration never happens, so hash order cannot leak into the RNG stream or the report"
        let mut reached: HashSet<BotId> = HashSet::new();
        let mut queue: VecDeque<(BotId, usize)> = VecDeque::new();

        // The botmaster delivers the command to the seed bots through Tor
        // (it knows their addresses from the key reports).
        for id in seed_ids {
            let addr = self.bots[&id].current_address();
            let encoder = self.encoder_for(addr, addr);
            let cell = command
                .to_cell(&encoder, rng)
                .expect("commands fit in one uniform cell");
            report.messages_sent += 1;
            if self.tor.send_to_onion(addr, None, cell).is_ok() {
                if reached.insert(id) {
                    queue.push_back((id, 0));
                }
            } else {
                report.messages_failed += 1;
            }
        }

        let mut max_round = 0usize;
        while let Some((id, round)) = queue.pop_front() {
            max_round = max_round.max(round);
            // The bot drains its Tor mailbox, decodes, verifies and acts.
            let addr = match self.bots.get(&id) {
                Some(b) => b.current_address(),
                None => continue,
            };
            let _delivered = self.tor.drain_mailbox(addr);
            let acted = match self.bots.get_mut(&id) {
                Some(bot) => bot.handle_command(command, &botmaster_key, self.clock_secs),
                None => false,
            };
            if acted {
                report.bots_executed += 1;
            }
            // Forward to every peer that has not been reached yet.
            let peers = self.bots.get(&id).map(Bot::peers).unwrap_or_default();
            for peer_addr in peers {
                let Some(&peer_id) = self.address_index.get(&peer_addr) else {
                    // Peer was taken down; delivery would fail.
                    report.messages_sent += 1;
                    report.messages_failed += 1;
                    continue;
                };
                if reached.contains(&peer_id) {
                    continue;
                }
                let encoder = self.encoder_for(addr, peer_addr);
                let cell = command
                    .to_cell(&encoder, rng)
                    .expect("commands fit in one uniform cell");
                report.messages_sent += 1;
                match self.tor.send_to_onion(peer_addr, None, cell) {
                    Ok(()) => {
                        reached.insert(peer_id);
                        queue.push_back((peer_id, round + 1));
                    }
                    Err(_) => report.messages_failed += 1,
                }
            }
        }

        report.bots_reached = reached.len();
        report.rounds = max_round;
        report
    }

    /// Exports the current peer topology as a graph snapshot: one graph node
    /// per live bot, one edge per (mutual or one-sided) peer relation.
    /// Mitigation experiments (SOAP) operate on this snapshot, and the
    /// returned map translates graph nodes back to bot identifiers.
    pub fn overlay_snapshot(&self) -> (onion_graph::Graph, BTreeMap<onion_graph::NodeId, BotId>) {
        let mut graph = onion_graph::Graph::new();
        let mut by_bot: BTreeMap<BotId, onion_graph::NodeId> = BTreeMap::new();
        let mut by_node: BTreeMap<onion_graph::NodeId, BotId> = BTreeMap::new();
        for id in self.bot_ids() {
            let node = graph.add_node();
            by_bot.insert(id, node);
            by_node.insert(node, id);
        }
        for id in self.bot_ids() {
            let Some(bot) = self.bots.get(&id) else {
                continue;
            };
            for peer_addr in bot.peers() {
                if let Some(peer_id) = self.address_index.get(&peer_addr) {
                    if let (Some(&a), Some(&b)) = (by_bot.get(&id), by_bot.get(peer_id)) {
                        graph.add_edge(a, b);
                    }
                }
            }
        }
        (graph, by_node)
    }

    /// Re-announces descriptors for every live bot (needed after address
    /// rotation or the daily descriptor-id rollover). Returns the number of
    /// bots announced.
    pub fn publish_all_descriptors(&mut self) -> usize {
        let mut published = 0usize;
        let addrs: Vec<OnionAddress> = self.bots.values().map(Bot::current_address).collect();
        for addr in addrs {
            self.tor.register_hidden_service(addr, None);
            if self.tor.announce_service(addr).is_ok() {
                published += 1;
            }
        }
        published
    }

    /// Rotates every bot to a new period: addresses change, old ones are
    /// forgotten, new services are registered and announced, and the address
    /// index is rebuilt. Models the network-wide "forgetting" step.
    pub fn rotate_all(&mut self, period: u64) {
        let ids = self.bot_ids();
        let mut renames: Vec<(OnionAddress, OnionAddress, BotId)> = Vec::with_capacity(ids.len());
        for &id in &ids {
            if let Some(bot) = self.bots.get_mut(&id) {
                let (old, new) = bot.rotate_to(period);
                renames.push((old, new, id));
            }
        }
        for (old, new, id) in &renames {
            self.tor.deregister_hidden_service(*old);
            self.address_index.remove(old);
            self.tor.register_hidden_service(*new, None);
            let _ = self.tor.announce_service(*new);
            self.address_index.insert(*new, *id);
        }
        // Peers learn the new addresses through AddressAnnounce maintenance
        // messages; the simulation applies the renames directly.
        let rename_map: BTreeMap<OnionAddress, OnionAddress> =
            renames.iter().map(|(old, new, _)| (*old, *new)).collect();
        for bot in self.bots.values_mut() {
            let old_peers = bot.peers();
            for old in old_peers {
                if let Some(new) = rename_map.get(&old) {
                    bot.remove_peer(old);
                    bot.add_peer(*new);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_botnet(seed: u64, bots: usize, k: usize) -> (BotnetSimulation, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = BotnetSimulation::new(30, &mut rng);
        sim.infect(bots, &mut rng);
        sim.rally(k, &mut rng);
        (sim, rng)
    }

    #[test]
    fn infection_registers_bots_with_master_and_tor() {
        let (sim, _) = small_botnet(1, 12, 3);
        assert_eq!(sim.bot_count(), 12);
        assert_eq!(sim.botmaster().known_bot_count(), 12);
        assert_eq!(sim.tor().registered_service_count(), 12);
        for id in sim.bot_ids() {
            assert!(sim.peers_of(id).unwrap().len() >= 3);
        }
    }

    #[test]
    fn broadcast_reaches_every_bot() {
        let (mut sim, mut rng) = small_botnet(2, 15, 3);
        let report = sim.broadcast_command(CommandKind::Maintenance, 2, &mut rng);
        assert_eq!(report.bots_reached, 15);
        assert_eq!(report.bots_executed, 15);
        assert!((report.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(report.messages_failed, 0);
        for id in sim.bot_ids() {
            assert_eq!(sim.log_of(id).unwrap().maintenance, 1);
        }
    }

    #[test]
    fn takedowns_reduce_coverage_but_do_not_break_verification() {
        let (mut sim, mut rng) = small_botnet(3, 20, 3);
        for id in sim.bot_ids().into_iter().take(8) {
            assert!(sim.take_down(id));
        }
        assert_eq!(sim.bot_count(), 12);
        let report = sim.broadcast_command(CommandKind::Maintenance, 2, &mut rng);
        assert!(report.bots_reached <= 12);
        assert!(
            report.messages_failed > 0,
            "deliveries to removed peers fail"
        );
    }

    #[test]
    fn sequence_numbers_prevent_replaying_old_commands() {
        let (mut sim, mut rng) = small_botnet(4, 8, 3);
        let first =
            sim.broadcast_command(CommandKind::SimulatedCompute { work_units: 3 }, 1, &mut rng);
        assert_eq!(first.bots_executed, 8);
        // Replay the same signed command object: every bot rejects it.
        let replay = sim
            .botmaster_mut()
            .issue(CommandKind::Maintenance, Audience::Broadcast, 0);
        let _ = sim.propagate(&replay, 1, &mut rng);
        let second = sim.propagate(&replay, 1, &mut rng);
        assert_eq!(
            second.bots_executed, 0,
            "replayed sequence numbers are rejected"
        );
    }

    #[test]
    fn directed_commands_execute_only_on_target_bots() {
        let (mut sim, mut rng) = small_botnet(5, 10, 3);
        let target = sim.bot_ids()[0];
        let target_addr = sim.address_of(target).unwrap();
        let cmd = {
            let now = sim.clock_secs();
            sim.botmaster_mut().issue(
                CommandKind::Maintenance,
                Audience::Directed(vec![target_addr]),
                now,
            )
        };
        let report = sim.propagate(&cmd, 2, &mut rng);
        assert_eq!(report.bots_executed, 1);
        assert!(report.bots_reached > 1, "non-targets still relay");
        assert_eq!(sim.log_of(target).unwrap().maintenance, 1);
    }

    #[test]
    fn overlay_snapshot_reflects_peer_relations() {
        let (sim, _) = small_botnet(7, 10, 3);
        let (graph, by_node) = sim.overlay_snapshot();
        assert_eq!(graph.node_count(), 10);
        assert_eq!(by_node.len(), 10);
        // Every bot has at least its k rally peers reflected as edges.
        for node in graph.nodes() {
            assert!(
                graph.degree(node).unwrap() >= 3,
                "bot {:?} under-connected",
                by_node[&node]
            );
        }
        graph.check_invariants().unwrap();
    }

    #[test]
    fn overlay_snapshot_drops_taken_down_bots() {
        let (mut sim, _) = small_botnet(8, 10, 3);
        let victim = sim.bot_ids()[0];
        sim.take_down(victim);
        let (graph, by_node) = sim.overlay_snapshot();
        assert_eq!(graph.node_count(), 9);
        assert!(by_node.values().all(|&b| b != victim));
    }

    #[test]
    fn empty_botnet_propagation_is_a_noop() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut sim = BotnetSimulation::new(10, &mut rng);
        let report = sim.broadcast_command(CommandKind::Maintenance, 3, &mut rng);
        assert_eq!(report.bots_reached, 0);
        assert_eq!(report.coverage(), 0.0);
    }
}
