//! # onion-graph
//!
//! Graph substrate for the OnionBots (DSN 2015) reproduction: the undirected
//! [`graph::Graph`] structure the overlay simulations mutate, the k-regular
//! [`generators`] the paper's evaluation starts from, the centrality and
//! diameter [`metrics`] it reports, and the connected-component analysis
//! ([`components`]) behind the partitioning experiments. Measurement-phase
//! traversals freeze the slab into a read-only [`csr::CsrSnapshot`] and fan
//! BFS sources across the deterministic multi-source kernel
//! ([`metrics::parallel_bfs_from_sources`]) under the [`budget`]-governed
//! thread budget.
//!
//! ```
//! use onion_graph::generators::random_regular;
//! use onion_graph::metrics::average_degree_centrality;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let (graph, _ids) = random_regular(100, 10, &mut rng);
//! let centrality = average_degree_centrality(&graph);
//! assert!((centrality - 10.0 / 99.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod components;
pub mod csr;
pub mod generators;
pub mod graph;
pub mod metrics;

pub use csr::CsrSnapshot;
pub use graph::{Graph, NodeId};

#[cfg(test)]
mod property_tests {
    //! Property-based tests of the core graph invariants.

    use crate::components::{component_count, largest_component_size};
    use crate::csr::CsrSnapshot;
    use crate::generators::random_regular;
    use crate::graph::Graph;
    use crate::metrics::{
        average_degree_centrality, bfs_distances, diameter, parallel_bfs_from_sources, BfsStats,
    };
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Applies a random churn trace (node adds, edge adds/removes, node
    /// removals — i.e. tombstones) to a small seed graph.
    fn churned_graph(ops: &[(usize, usize, u8)]) -> Graph {
        let (mut g, mut ids) = Graph::with_nodes(8);
        for &(a, b, op) in ops {
            match op {
                0 => ids.push(g.add_node()),
                1 | 2 => {
                    g.add_edge(ids[a % ids.len()], ids[b % ids.len()]);
                }
                3 => {
                    g.remove_edge(ids[a % ids.len()], ids[b % ids.len()]);
                }
                _ => {
                    g.remove_node(ids[a % ids.len()]);
                }
            }
        }
        g
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Randomly interleaved edge insertions/removals never violate the
        /// graph's structural invariants.
        #[test]
        fn random_mutations_preserve_invariants(ops in prop::collection::vec((0usize..20, 0usize..20, prop::bool::ANY), 1..200)) {
            let (mut g, ids) = Graph::with_nodes(20);
            for (a, b, add) in ops {
                if add {
                    g.add_edge(ids[a], ids[b]);
                } else {
                    g.remove_edge(ids[a], ids[b]);
                }
                prop_assert!(g.check_invariants().is_ok());
            }
        }

        /// Deleting nodes never increases the number of edges and keeps
        /// invariants intact.
        #[test]
        fn node_deletions_preserve_invariants(seed in 0u64..1000, deletions in 1usize..30) {
            let mut rng = StdRng::seed_from_u64(seed);
            let (mut g, ids) = random_regular(40, 4, &mut rng);
            let mut prev_edges = g.edge_count();
            for id in ids.iter().take(deletions) {
                g.remove_node(*id);
                prop_assert!(g.edge_count() <= prev_edges);
                prev_edges = g.edge_count();
                prop_assert!(g.check_invariants().is_ok());
            }
        }

        /// BFS distances satisfy the triangle property along edges: adjacent
        /// nodes' distances from any source differ by at most 1.
        #[test]
        fn bfs_distance_is_lipschitz_along_edges(seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, ids) = random_regular(30, 4, &mut rng);
            let dist = bfs_distances(&g, ids[0]);
            for (a, b) in g.edges() {
                if let (Some(da), Some(db)) = (dist.get(a), dist.get(b)) {
                    prop_assert!(da.abs_diff(db) <= 1);
                }
            }
        }

        /// Slab-core invariants under arbitrary interleaved mutations:
        /// the degree sum is exactly twice the edge count, neighbor lists
        /// stay strictly sorted (no self loops, no parallel edges), and
        /// deleted ids are never handed out again.
        #[test]
        fn slab_invariants_under_churn(ops in prop::collection::vec((0usize..24, 0usize..24, 0u8..5), 1..250)) {
            let (mut g, mut ids) = Graph::with_nodes(8);
            let mut deleted: Vec<crate::graph::NodeId> = Vec::new();
            for (a, b, op) in ops {
                match op {
                    0 => {
                        let id = g.add_node();
                        prop_assert!(!ids.contains(&id), "fresh id must be new");
                        prop_assert!(!deleted.contains(&id), "deleted ids are never reused");
                        ids.push(id);
                    }
                    1 | 2 => { g.add_edge(ids[a % ids.len()], ids[b % ids.len()]); }
                    3 => { g.remove_edge(ids[a % ids.len()], ids[b % ids.len()]); }
                    _ => {
                        let victim = ids[a % ids.len()];
                        if g.remove_node(victim).is_some() {
                            deleted.push(victim);
                        }
                    }
                }
                // check_invariants covers symmetry, sortedness (hence no
                // parallel edges), self loops and the half-edge count.
                prop_assert!(g.check_invariants().is_ok());
                let degree_sum: usize = g.nodes().iter().map(|&n| g.degree(n).unwrap()).sum();
                prop_assert_eq!(degree_sum, 2 * g.edge_count());
                for &n in &g.nodes() {
                    let list = g.neighbors(n).unwrap();
                    prop_assert!(list.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
                }
            }
        }

        /// A `CsrSnapshot` round-trips the slab graph under random churn:
        /// live nodes, neighbor slices (order included) and the
        /// tombstone/isolated distinction all survive the freeze.
        #[test]
        fn csr_snapshot_roundtrips_the_slab_under_churn(ops in prop::collection::vec((0usize..32, 0usize..32, 0u8..5), 1..250)) {
            let g = churned_graph(&ops);
            let csr = CsrSnapshot::build(&g);
            prop_assert_eq!(csr.id_bound(), g.id_bound());
            prop_assert_eq!(csr.node_count(), g.node_count());
            prop_assert_eq!(csr.edge_count(), g.edge_count());
            prop_assert_eq!(csr.live_nodes(), g.nodes());
            for i in 0..g.id_bound() {
                let node = crate::graph::NodeId(i);
                prop_assert_eq!(csr.contains(node), g.contains(node));
                match g.neighbors(node) {
                    Some(neighbors) => prop_assert_eq!(csr.neighbors(node), neighbors),
                    None => prop_assert_eq!(csr.neighbors(node), &[] as &[crate::graph::NodeId]),
                }
            }
        }

        /// The multi-source kernel is byte-identical to sequential
        /// per-source `bfs_distances` at every thread count, on churned
        /// graphs whose id space contains tombstones.
        #[test]
        fn parallel_kernel_equals_sequential_bfs_at_any_thread_count(ops in prop::collection::vec((0usize..32, 0usize..32, 0u8..5), 1..120)) {
            let g = churned_graph(&ops);
            // Sweep every id ever allocated: live sources and tombstoned
            // sources must both behave identically at any thread count.
            let sources: Vec<crate::graph::NodeId> =
                (0..g.id_bound()).map(crate::graph::NodeId).collect();
            let csr = CsrSnapshot::build(&g);
            let reference: Vec<BfsStats> = sources
                .iter()
                .map(|&s| {
                    let map = bfs_distances(&g, s);
                    BfsStats {
                        eccentricity: map.max().unwrap_or(0),
                        total_distance: map.total() as u64,
                        reached: map.reached_count(),
                    }
                })
                .collect();
            for threads in [1usize, 2, 8] {
                let kernel = parallel_bfs_from_sources(&csr, &sources, threads);
                prop_assert_eq!(&kernel, &reference, "threads={}", threads);
            }
        }

        /// Bulk edge insertion (unsorted batch, one deferred sort per
        /// touched list) is equivalent to sequential `add_edge` over the
        /// same batch — same resulting graph, same number of edges added —
        /// for arbitrary batches full of duplicates, self loops and
        /// references to tombstoned nodes, against arbitrary churned base
        /// graphs. The partitioned variant must agree at every thread
        /// count and under degenerate shard bounds.
        #[test]
        fn bulk_insertion_equals_sequential_insertion_under_churn(
            ops in prop::collection::vec((0usize..24, 0usize..24, 0u8..5), 0..120),
            batch in prop::collection::vec((0usize..40, 0usize..40), 0..150),
            cuts in prop::collection::vec(0usize..40, 0..6),
        ) {
            let base = churned_graph(&ops);
            let bound = base.id_bound().max(1);
            let edges: Vec<(crate::graph::NodeId, crate::graph::NodeId)> = batch
                .iter()
                .map(|&(a, b)| (crate::graph::NodeId(a % bound), crate::graph::NodeId(b % bound)))
                .collect();

            let mut sequential = base.clone();
            let mut seq_added = 0usize;
            for &(a, b) in &edges {
                if sequential.add_edge(a, b) {
                    seq_added += 1;
                }
            }

            let mut bulk = base.clone();
            prop_assert_eq!(bulk.add_edges_bulk(&edges), seq_added);
            prop_assert_eq!(&bulk, &sequential);
            prop_assert!(bulk.check_invariants().is_ok());

            for threads in [1usize, 3, 8] {
                let mut partitioned = base.clone();
                prop_assert_eq!(
                    partitioned.add_edges_bulk_partitioned(&edges, &cuts, threads),
                    seq_added,
                    "threads={}", threads
                );
                prop_assert_eq!(&partitioned, &sequential, "threads={}", threads);
            }
        }

        /// Degree centrality of a k-regular graph is exactly k/(n-1) and the
        /// diameter of a connected instance is sane.
        #[test]
        fn regular_graph_metrics_are_consistent(seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 40usize;
            let k = 6usize;
            let (g, _) = random_regular(n, k, &mut rng);
            prop_assert!((average_degree_centrality(&g) - k as f64 / (n - 1) as f64).abs() < 1e-12);
            if component_count(&g) == 1 {
                let d = diameter(&g).unwrap();
                prop_assert!(d >= 2);
                prop_assert!(d < n);
            }
            prop_assert!(largest_component_size(&g) <= n);
        }
    }
}
