//! Graph metrics used in the paper's evaluation (§V-B).
//!
//! * **Closeness centrality** `C(u) = (n - 1) / Σ_v d(u, v)` — "an indication
//!   of how fast messages can propagate in the network".
//! * **Degree centrality** — the fraction of nodes a node is connected to,
//!   "an indication of immediate chance of receiving whatever is flowing
//!   through the network".
//! * **Diameter** — the longest shortest path, "a lower bound on worst case
//!   delay".
//!
//! Exact metrics run an all-pairs BFS (`O(n·(n+m))`), which is fine up to a
//! few thousand nodes. For the paper's 15000-node runs the `sampled_*`
//! variants estimate the same quantities from a random subset of BFS sources;
//! the figure harness uses them with a few hundred sources, which keeps the
//! curve shapes intact.

use std::collections::{HashMap, VecDeque};

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{Graph, NodeId};

/// Breadth-first search distances from `source` to every reachable node
/// (including `source` itself at distance 0).
pub fn bfs_distances(graph: &Graph, source: NodeId) -> HashMap<NodeId, usize> {
    let mut dist = HashMap::new();
    if !graph.contains(source) {
        return dist;
    }
    dist.insert(source, 0usize);
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let d = dist[&u];
        if let Some(neighbors) = graph.neighbors(u) {
            for &v in neighbors {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(d + 1);
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

/// Closeness centrality of a single node, normalized by `n - 1` over the
/// whole graph (matching the paper's formula). Unreachable nodes contribute
/// nothing: the sum only ranges over the node's connected component, scaled
/// by the fraction of the graph that is reachable (the standard
/// Wasserman–Faust correction), so values remain comparable when the graph
/// partitions.
pub fn closeness_centrality(graph: &Graph, node: NodeId) -> f64 {
    let n = graph.node_count();
    if n <= 1 || !graph.contains(node) {
        return 0.0;
    }
    let dist = bfs_distances(graph, node);
    let reachable = dist.len() - 1; // excluding the node itself
    if reachable == 0 {
        return 0.0;
    }
    let total: usize = dist.values().sum();
    // (reachable / (n-1)) * (reachable / total): closeness within the
    // component scaled by component coverage.
    (reachable as f64 / (n - 1) as f64) * (reachable as f64 / total as f64)
}

/// Average closeness centrality over all nodes (exact, all-pairs BFS).
pub fn average_closeness_centrality(graph: &Graph) -> f64 {
    let nodes = graph.nodes();
    if nodes.is_empty() {
        return 0.0;
    }
    let sum: f64 = nodes.iter().map(|&u| closeness_centrality(graph, u)).sum();
    sum / nodes.len() as f64
}

/// Average closeness centrality estimated from `samples` random BFS sources.
pub fn sampled_average_closeness_centrality<R: Rng + ?Sized>(
    graph: &Graph,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let mut nodes = graph.nodes();
    if nodes.is_empty() {
        return 0.0;
    }
    nodes.shuffle(rng);
    nodes.truncate(samples.max(1).min(nodes.len()));
    let sum: f64 = nodes.iter().map(|&u| closeness_centrality(graph, u)).sum();
    sum / nodes.len() as f64
}

/// Degree centrality of a node: `deg(u) / (n - 1)`.
pub fn degree_centrality(graph: &Graph, node: NodeId) -> f64 {
    let n = graph.node_count();
    if n <= 1 {
        return 0.0;
    }
    graph.degree(node).unwrap_or(0) as f64 / (n - 1) as f64
}

/// Average degree centrality over all nodes.
pub fn average_degree_centrality(graph: &Graph) -> f64 {
    let nodes = graph.nodes();
    if nodes.is_empty() {
        return 0.0;
    }
    let sum: f64 = nodes.iter().map(|&u| degree_centrality(graph, u)).sum();
    sum / nodes.len() as f64
}

/// Eccentricity of a node: the greatest BFS distance to any reachable node.
/// Returns `None` for nodes absent from the graph.
pub fn eccentricity(graph: &Graph, node: NodeId) -> Option<usize> {
    if !graph.contains(node) {
        return None;
    }
    Some(
        bfs_distances(graph, node)
            .values()
            .copied()
            .max()
            .unwrap_or(0),
    )
}

/// Exact diameter of the largest connected component (all-pairs BFS).
///
/// Returns `None` for an empty graph. When the graph is partitioned the
/// diameter of the *largest* component (by node count, ties broken by
/// smallest node id) is reported, mirroring how the paper plots a finite
/// diameter for DDSR while a shattered normal graph's diameter "is
/// infinite". A long thin minority component therefore cannot inflate the
/// reported value.
pub fn diameter(graph: &Graph) -> Option<usize> {
    let components = crate::components::connected_components(graph);
    let largest = components.first()?;
    let mut best = 0usize;
    for &u in largest {
        if let Some(ecc) = eccentricity(graph, u) {
            best = best.max(ecc);
        }
    }
    Some(best)
}

/// Diameter lower bound estimated from `samples` random BFS sources.
///
/// Sources are drawn from the whole graph, so on a partitioned graph this
/// estimates the largest eccentricity over all components — use
/// [`diameter`] when the largest-component semantics matter exactly.
pub fn sampled_diameter<R: Rng + ?Sized>(
    graph: &Graph,
    samples: usize,
    rng: &mut R,
) -> Option<usize> {
    let mut nodes = graph.nodes();
    if nodes.is_empty() {
        return None;
    }
    nodes.shuffle(rng);
    nodes.truncate(samples.max(1).min(nodes.len()));
    let mut best = 0usize;
    for &u in &nodes {
        if let Some(ecc) = eccentricity(graph, u) {
            best = best.max(ecc);
        }
    }
    Some(best)
}

/// Average shortest path length within connected pairs (exact).
/// Returns `None` when there are no connected pairs.
pub fn average_path_length(graph: &Graph) -> Option<f64> {
    let nodes = graph.nodes();
    let mut total = 0usize;
    let mut pairs = 0usize;
    for &u in &nodes {
        let dist = bfs_distances(graph, u);
        for (&v, &d) in &dist {
            if v != u {
                total += d;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        None
    } else {
        Some(total as f64 / pairs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_regular, ring_lattice};
    use crate::graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a path graph a-b-c-d and returns (graph, ids).
    fn path_graph(n: usize) -> (Graph, Vec<NodeId>) {
        let (mut g, ids) = Graph::with_nodes(n);
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        (g, ids)
    }

    #[test]
    fn bfs_distances_on_path() {
        let (g, ids) = path_graph(5);
        let dist = bfs_distances(&g, ids[0]);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dist[id], i);
        }
    }

    #[test]
    fn bfs_from_missing_node_is_empty() {
        let (mut g, ids) = path_graph(3);
        g.remove_node(ids[0]);
        assert!(bfs_distances(&g, ids[0]).is_empty());
    }

    #[test]
    fn closeness_on_star_graph() {
        // Star with center c and 4 leaves: C(center) = 1.0, C(leaf) = 4/7.
        let (mut g, ids) = Graph::with_nodes(5);
        for &leaf in &ids[1..] {
            g.add_edge(ids[0], leaf);
        }
        assert!((closeness_centrality(&g, ids[0]) - 1.0).abs() < 1e-12);
        assert!((closeness_centrality(&g, ids[1]) - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn closeness_of_isolated_node_is_zero() {
        let (mut g, ids) = path_graph(3);
        let isolated = g.add_node();
        assert_eq!(closeness_centrality(&g, isolated), 0.0);
        // Other nodes lose closeness because of the unreachable node.
        assert!(closeness_centrality(&g, ids[1]) < 1.0);
    }

    #[test]
    fn degree_centrality_on_complete_graph() {
        let (mut g, ids) = Graph::with_nodes(6);
        for i in 0..6 {
            for j in i + 1..6 {
                g.add_edge(ids[i], ids[j]);
            }
        }
        for &u in &ids {
            assert!((degree_centrality(&g, u) - 1.0).abs() < 1e-12);
        }
        assert!((average_degree_centrality(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_centrality_in_k_regular_graph_is_k_over_n_minus_1() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, _) = random_regular(100, 10, &mut rng);
        let expected = 10.0 / 99.0;
        assert!((average_degree_centrality(&g) - expected).abs() < 1e-12);
    }

    #[test]
    fn diameter_of_path_and_ring() {
        let (g, _) = path_graph(6);
        assert_eq!(diameter(&g), Some(5));
        let (ring, _) = ring_lattice(10, 2);
        assert_eq!(diameter(&ring), Some(5));
    }

    #[test]
    fn diameter_of_empty_and_singleton() {
        assert_eq!(diameter(&Graph::new()), None);
        let (g, _) = Graph::with_nodes(1);
        assert_eq!(diameter(&g), Some(0));
    }

    #[test]
    fn diameter_of_partitioned_graph_is_the_largest_components() {
        // Regression: the diameter used to be the max eccentricity over
        // *all* components, so a long thin minority component (the 4-node
        // path, diameter 3) overrode the largest component (the 5-node
        // star, diameter 2).
        let (mut g, ids) = Graph::with_nodes(9);
        for &leaf in &ids[1..5] {
            g.add_edge(ids[0], leaf);
        }
        for w in ids[5..9].windows(2) {
            g.add_edge(w[0], w[1]);
        }
        assert_eq!(
            diameter(&g),
            Some(2),
            "the 5-node star is the largest component"
        );
    }

    #[test]
    fn sampled_metrics_match_exact_when_fully_sampled() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, _) = random_regular(60, 4, &mut rng);
        let exact = average_closeness_centrality(&g);
        let sampled = sampled_average_closeness_centrality(&g, 60, &mut rng);
        assert!((exact - sampled).abs() < 1e-9);
        assert_eq!(diameter(&g), sampled_diameter(&g, 60, &mut rng));
    }

    #[test]
    fn sampled_metrics_are_reasonable_estimates() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, _) = random_regular(300, 8, &mut rng);
        let exact = average_closeness_centrality(&g);
        let sampled = sampled_average_closeness_centrality(&g, 60, &mut rng);
        assert!(
            (exact - sampled).abs() < 0.05,
            "exact {exact}, sampled {sampled}"
        );
    }

    #[test]
    fn average_path_length_on_path_graph() {
        let (g, _) = path_graph(3);
        // Distances: (0-1)=1, (0-2)=2, (1-2)=1 → mean = 4/3.
        let apl = average_path_length(&g).unwrap();
        assert!((apl - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(average_path_length(&Graph::new()), None);
    }

    #[test]
    fn eccentricity_matches_diameter_extremes() {
        let (g, ids) = path_graph(4);
        assert_eq!(eccentricity(&g, ids[0]), Some(3));
        assert_eq!(eccentricity(&g, ids[1]), Some(2));
        let (mut g2, ids2) = path_graph(2);
        g2.remove_node(ids2[0]);
        assert_eq!(eccentricity(&g2, ids2[0]), None);
    }
}
